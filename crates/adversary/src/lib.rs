//! Adversarial link processes for the dual graph radio network model.
//!
//! The dual graph model delegates the behaviour of the unreliable `G' \ G`
//! edges to an adversarial *link process*. This crate implements, for each of
//! the three capability classes studied by Ghaffari, Lynch and Newport
//! (PODC 2013), both the **specific adversaries used in the paper's
//! lower-bound proofs** and a set of **natural environmental adversaries**
//! used by the upper-bound experiments:
//!
//! | Class | Adversary | Role |
//! |---|---|---|
//! | oblivious | [`oblivious::IidLinks`] | each dynamic edge present i.i.d. with probability `p` each round |
//! | oblivious | [`oblivious::GilbertElliottLinks`] | bursty per-edge on/off Markov chains (the β-factor burstiness the paper cites as motivation) |
//! | oblivious | [`oblivious::ScheduleLinks`] | arbitrary precomputed schedule |
//! | oblivious | [`oblivious::DecayAwareOblivious`] | the schedule-aware attack on fixed-order Decay that motivates Permuted Decay (Section 4.1) |
//! | oblivious | [`oblivious::BraceletOblivious`] | the isolated-broadcast-function attacker of Theorem 4.3 |
//! | online adaptive | [`online::DenseSparseOnline`] | the expectation-threshold attacker of Theorem 3.1 |
//! | online adaptive | [`online::GreedyCollisionOnline`] | frontier collision attacker |
//! | offline adaptive | [`offline::OmniscientOffline`] | sees round actions and blocks every blockable delivery (Figure 1 row 1) |
//!
//! The built-in degenerate adversaries `StaticLinks::none()` /
//! `StaticLinks::all()` live in [`dradio_sim`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod oblivious;
pub mod offline;
pub mod online;

#[cfg(test)]
pub(crate) mod test_support;

pub use oblivious::{
    BraceletOblivious, DecayAwareOblivious, GilbertElliottLinks, IidLinks, ScheduleLinks,
};
pub use offline::OmniscientOffline;
pub use online::{DenseSparseOnline, GreedyCollisionOnline};
