//! The oblivious attacker of Theorem 4.3 (local broadcast lower bound in the
//! bracelet network).
//!
//! The key idea of the proof is that in the bracelet network the heads of the
//! `A` bands and of the `B` bands behave *independently* for the first
//! `√(n/2)` rounds (information needs that long to travel down a band and
//! back). An oblivious adversary can therefore predict their broadcast
//! behaviour before the execution begins: it builds, for every band, an
//! *isolated broadcast function* — a simulation of just that band fed with
//! fresh random bits — and uses the predicted number of broadcasting heads to
//! label each round **dense** or **sparse**. Lemma 4.5 shows these labels are
//! accurate for the real execution with high probability, regardless of the
//! actual coins used. The attacker then:
//!
//! * activates **all** head-to-head `G'` edges in predicted-dense rounds
//!   (every head collides with the many other broadcasting heads), and
//! * activates **none** in predicted-sparse rounds (heads can only talk down
//!   their own band, so no cross-side progress is made),
//!
//! which starves the receivers at the clasp of any delivery for
//! `Ω(√n / log n)` rounds.

use dradio_graphs::topology::Bracelet;
use dradio_graphs::{Edge, NodeId};
use dradio_sim::{
    Action, AdversaryClass, AdversarySetup, AdversaryView, Feedback, LinkDecision, LinkProcess,
    ProcessContext, Round,
};
use rand::RngCore;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration of [`BraceletOblivious`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BraceletConfig {
    /// Constant `c` in the dense threshold `c · ln n` on the predicted number
    /// of broadcasting heads.
    pub density_factor: f64,
    /// Behaviour after the `√(n/2)`-round prediction horizon: `true`
    /// activates every dynamic edge (keep colliding), `false` activates none.
    pub after_horizon_all: bool,
}

impl Default for BraceletConfig {
    fn default() -> Self {
        BraceletConfig {
            density_factor: 1.0,
            after_horizon_all: true,
        }
    }
}

/// The isolated-broadcast-function attacker for the bracelet network.
#[derive(Debug, Clone)]
pub struct BraceletOblivious {
    bands: Vec<Vec<NodeId>>,
    config: BraceletConfig,
    /// Per-round label computed at `on_start`: `true` means dense.
    dense_rounds: Vec<bool>,
    dynamic_edges: Vec<Edge>,
    horizon: usize,
}

impl BraceletOblivious {
    /// Creates the attacker for the given bracelet network.
    pub fn new(bracelet: &Bracelet) -> Self {
        Self::with_config(bracelet, BraceletConfig::default())
    }

    /// Creates the attacker with an explicit configuration.
    pub fn with_config(bracelet: &Bracelet, config: BraceletConfig) -> Self {
        let bands: Vec<Vec<NodeId>> = bracelet
            .bands_a()
            .iter()
            .chain(bracelet.bands_b().iter())
            .cloned()
            .collect();
        BraceletOblivious {
            bands,
            config,
            dense_rounds: Vec::new(),
            dynamic_edges: Vec::new(),
            horizon: bracelet.band_length(),
        }
    }

    /// The per-round dense/sparse labels predicted at the start of the
    /// execution (empty before `on_start`).
    pub fn predicted_dense(&self) -> &[bool] {
        &self.dense_rounds
    }

    /// Simulates one band in isolation for `horizon` rounds and returns the
    /// head's predicted broadcast indicator per round.
    fn isolated_broadcast_function(
        band: &[NodeId],
        setup: &AdversarySetup<'_>,
        horizon: usize,
        rng: &mut dyn RngCore,
    ) -> Vec<bool> {
        let n = setup.dual.len();
        let max_degree = setup.dual.max_degree();
        let mut processes: Vec<_> = band
            .iter()
            .map(|&u| {
                let role = setup.assignment.role(u);
                (setup.factory)(&ProcessContext::new(u, n, max_degree, role))
            })
            .collect();
        // Fresh support sequences: independent random streams for the
        // prediction, exactly as in Lemma 4.4/4.5.
        let mut rngs: Vec<ChaCha8Rng> = band
            .iter()
            .map(|_| ChaCha8Rng::seed_from_u64(rng.next_u64()))
            .collect();
        for (p, r) in processes.iter_mut().zip(rngs.iter_mut()) {
            p.on_start(r);
        }

        let mut head_broadcasts = Vec::with_capacity(horizon);
        for round_index in 0..horizon {
            let round = Round::new(round_index);
            let actions: Vec<Action> = processes
                .iter_mut()
                .zip(rngs.iter_mut())
                .map(|(p, r)| p.on_round(round, r))
                .collect();
            head_broadcasts.push(actions[0].is_transmit());
            // Reception along the band path (positions i-1 and i+1 are the
            // only neighbors considered in the isolated execution).
            for i in 0..band.len() {
                if actions[i].is_transmit() {
                    processes[i].on_feedback(round, &Feedback::Transmitted, &mut rngs[i]);
                    continue;
                }
                let mut heard = None;
                let mut count = 0;
                if i > 0 && actions[i - 1].is_transmit() {
                    count += 1;
                    heard = actions[i - 1].message();
                }
                if i + 1 < band.len() && actions[i + 1].is_transmit() {
                    count += 1;
                    heard = actions[i + 1].message();
                }
                let feedback = if count == 1 {
                    // lint: allow(D4) -- `heard` is set whenever count reaches 1
                    Feedback::Received(heard.expect("count == 1").clone())
                } else {
                    Feedback::Silence
                };
                processes[i].on_feedback(round, &feedback, &mut rngs[i]);
            }
        }
        head_broadcasts
    }
}

impl LinkProcess for BraceletOblivious {
    fn class(&self) -> AdversaryClass {
        AdversaryClass::Oblivious
    }

    fn on_start(&mut self, setup: &AdversarySetup<'_>, rng: &mut dyn RngCore) {
        self.dynamic_edges = setup.dual.dynamic_edges();
        let horizon = self.horizon.min(setup.horizon);
        // Evaluate every band's isolated broadcast function on fresh support
        // sequences.
        let predictions: Vec<Vec<bool>> = self
            .bands
            .iter()
            .map(|band| Self::isolated_broadcast_function(band, setup, horizon, rng))
            .collect();
        let threshold = self.config.density_factor * (setup.dual.len().max(2) as f64).ln();
        self.dense_rounds = (0..horizon)
            .map(|r| {
                let predicted: usize = predictions.iter().filter(|p| p[r]).count();
                predicted as f64 > threshold
            })
            .collect();
    }

    fn decide(&mut self, view: &AdversaryView<'_>, _rng: &mut dyn RngCore) -> LinkDecision {
        let r = view.round().index();
        let dense = match self.dense_rounds.get(r) {
            Some(&label) => label,
            None => self.config.after_horizon_all,
        };
        if dense {
            LinkDecision::from_edges(self.dynamic_edges.clone())
        } else {
            LinkDecision::none()
        }
    }

    fn reset(&mut self) -> bool {
        // `dynamic_edges` and the dense-round labels are recomputed by
        // `on_start` (from the adversary stream of the next execution's
        // seed); the band structure and config are immutable.
        true
    }

    fn name(&self) -> &'static str {
        "bracelet-oblivious"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{setup_ctx, talker_factory};
    use dradio_graphs::topology;
    use dradio_sim::{Assignment, SimConfig, Simulator, StopCondition};

    fn setup_for(bracelet: &Bracelet) -> (BraceletOblivious, dradio_graphs::DualGraph) {
        (BraceletOblivious::new(bracelet), bracelet.dual().clone())
    }

    #[test]
    fn predictions_cover_the_band_horizon() {
        let bracelet = topology::bracelet(4).unwrap();
        let (mut attacker, dual) = setup_for(&bracelet);
        let (dual_clone, factory, assignment) = setup_ctx(&dual);
        let setup = AdversarySetup {
            dual: &dual_clone,
            factory: &factory,
            assignment: &assignment,
            horizon: 100,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        attacker.on_start(&setup, &mut rng);
        assert_eq!(attacker.predicted_dense().len(), 4);
    }

    #[test]
    fn dense_rounds_activate_all_dynamic_edges() {
        let bracelet = topology::bracelet(3).unwrap();
        let (mut attacker, dual) = setup_for(&bracelet);
        // Talkers with probability 1 make every predicted round dense.
        let broadcasters: Vec<NodeId> = NodeId::all(dual.len()).collect();
        let factory = talker_factory(1.0);
        let assignment = Assignment::local(dual.len(), &broadcasters);
        let shared = std::sync::Arc::new(dual.clone());
        let setup = AdversarySetup {
            dual: &shared,
            factory: &factory,
            assignment: &assignment,
            horizon: 50,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        attacker.on_start(&setup, &mut rng);
        assert!(attacker.predicted_dense().iter().all(|&d| d));
        let decision = attacker.decide(
            &AdversaryView::new(Round::new(0), dual.len(), None, None, None),
            &mut rng,
        );
        assert_eq!(decision.len(), dual.dynamic_edges().len());
    }

    #[test]
    fn silent_algorithm_gives_sparse_rounds() {
        let bracelet = topology::bracelet(3).unwrap();
        let (mut attacker, dual) = setup_for(&bracelet);
        // Probability-0 talkers never broadcast: all rounds sparse.
        let factory = talker_factory(0.0);
        let assignment = Assignment::relays(dual.len());
        let shared = std::sync::Arc::new(dual.clone());
        let setup = AdversarySetup {
            dual: &shared,
            factory: &factory,
            assignment: &assignment,
            horizon: 50,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        attacker.on_start(&setup, &mut rng);
        assert!(attacker.predicted_dense().iter().all(|&d| !d));
        let decision = attacker.decide(
            &AdversaryView::new(Round::new(1), dual.len(), None, None, None),
            &mut rng,
        );
        assert!(decision.is_empty());
    }

    #[test]
    fn after_horizon_behaviour_is_configurable() {
        let bracelet = topology::bracelet(2).unwrap();
        let dual = bracelet.dual().clone();
        let mut all = BraceletOblivious::with_config(
            &bracelet,
            BraceletConfig {
                density_factor: 1.0,
                after_horizon_all: true,
            },
        );
        let mut none = BraceletOblivious::with_config(
            &bracelet,
            BraceletConfig {
                density_factor: 1.0,
                after_horizon_all: false,
            },
        );
        let (dual_clone, factory, assignment) = setup_ctx(&dual);
        let setup = AdversarySetup {
            dual: &dual_clone,
            factory: &factory,
            assignment: &assignment,
            horizon: 100,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        all.on_start(&setup, &mut rng);
        none.on_start(&setup, &mut rng);
        let view = AdversaryView::new(Round::new(999), dual.len(), None, None, None);
        assert_eq!(
            all.decide(&view, &mut rng).len(),
            dual.dynamic_edges().len()
        );
        assert!(none.decide(&view, &mut rng).is_empty());
    }

    #[test]
    fn runs_inside_the_simulator() {
        let bracelet = topology::bracelet(3).unwrap();
        let dual = bracelet.dual().clone();
        let n = dual.len();
        let heads: Vec<NodeId> = bracelet.heads_a().into_iter().collect();
        let outcome = Simulator::new(
            dual,
            talker_factory(0.4),
            Assignment::local(n, &heads),
            Box::new(BraceletOblivious::new(&bracelet)),
            SimConfig::default().with_seed(4).with_max_rounds(20),
        )
        .unwrap()
        .run(StopCondition::max_rounds());
        assert_eq!(outcome.rounds_executed, 20);
    }
}
