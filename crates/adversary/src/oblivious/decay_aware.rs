//! The schedule-aware oblivious attack on fixed-order Decay.
//!
//! Section 4.1 of the paper observes that the classic Decay subroutine "can
//! be attacked by an oblivious adversary because the fixed schedule of
//! broadcast probabilities allows it to calculate in advance the expected
//! broadcast behaviour, and choose dynamic link behaviour accordingly". This
//! link process implements that attack.
//!
//! It knows (from the algorithm description) that in round `r` every message
//! holder transmits with probability `2^{-level(r)}` where
//! `level(r) = (r mod L) + 1` is the *fixed* decay schedule. For every
//! potential receiver `u` it therefore chooses how many of `u`'s grey-zone
//! (dynamic) broadcaster links to activate so that the expected number of
//! transmitting neighbors of `u` is pushed far away from 1:
//!
//! * if enough broadcasters are reachable it activates enough of them that
//!   the expected count is ≥ `overload` (default 4), making a collision
//!   overwhelmingly likely;
//! * otherwise it activates none, leaving only the reliable neighbors, whose
//!   expected count at this level is far below 1 — the rare lone transmission
//!   is the only leak.
//!
//! Against *Permuted* Decay the same adversary misjudges which level each
//! round uses (the permutation bits are generated after it committed), so
//! the mismatch fails and Lemma 4.2 applies. Experiment E8 measures exactly
//! this gap.

use dradio_graphs::{DualGraph, Edge, NodeId};
use dradio_sim::process::log2_ceil;
use dradio_sim::{AdversaryClass, AdversarySetup, AdversaryView, LinkDecision, LinkProcess, Role};
use rand::RngCore;

/// The schedule-aware oblivious attacker on fixed-order Decay.
#[derive(Debug, Clone)]
pub struct DecayAwareOblivious {
    /// Number of decay levels the victim algorithm cycles through.
    levels: usize,
    /// Target expected number of transmitting neighbors when overloading.
    overload: f64,
    /// Nodes the attacker assumes may transmit (its model of the informed
    /// set); `None` means it is derived from the role assignment at
    /// `on_start`.
    assumed_transmitters: Option<Vec<NodeId>>,
    /// Per-receiver lists of (dynamic edge to a broadcaster).
    grey_broadcaster_edges: Vec<Vec<Edge>>,
    /// Per-receiver count of reliable broadcaster neighbors.
    reliable_broadcasters: Vec<usize>,
}

impl DecayAwareOblivious {
    /// Creates the attacker assuming the victim cycles through `levels` decay
    /// probabilities (use `⌈log₂ n⌉` for the global algorithms and
    /// `⌈log₂ Δ⌉ + 1` for the local ones).
    pub fn new(levels: usize) -> Self {
        DecayAwareOblivious {
            levels: levels.max(1),
            overload: 4.0,
            assumed_transmitters: None,
            grey_broadcaster_edges: Vec::new(),
            reliable_broadcasters: Vec::new(),
        }
    }

    /// Creates the attacker sized for a network of `n` nodes (matching the
    /// global broadcast algorithms' `⌈log₂ n⌉` levels).
    pub fn for_network(n: usize) -> Self {
        DecayAwareOblivious::new(log2_ceil(n).max(1))
    }

    /// Sets the expected-transmitter target used when overloading a receiver
    /// (default 4).
    pub fn with_overload(mut self, overload: f64) -> Self {
        self.overload = overload.max(1.0);
        self
    }

    /// Fixes the attacker's model of *which nodes may transmit*.
    ///
    /// An oblivious adversary knows the topology and the algorithm, so it may
    /// reason about which nodes can plausibly hold the message: for a global
    /// broadcast on the dual clique, for example, the source's side of the
    /// clique informs itself almost immediately while the far side stays
    /// silent until the bridge carries the message across. Feeding that
    /// prediction in sharpens the attack considerably (and is exactly the
    /// kind of reasoning the paper's Section 4.1 attack sketch performs).
    pub fn assuming_transmitters(mut self, nodes: Vec<NodeId>) -> Self {
        self.assumed_transmitters = Some(nodes);
        self
    }

    /// The fixed decay probability the attacker assumes for round `r`.
    pub fn assumed_probability(&self, round: usize) -> f64 {
        0.5f64.powi(((round % self.levels) + 1).min(1024) as i32)
    }

    fn index_broadcasters(&mut self, dual: &DualGraph, broadcasters: &[bool]) {
        let n = dual.len();
        self.grey_broadcaster_edges = vec![Vec::new(); n];
        self.reliable_broadcasters = vec![0; n];
        for u in NodeId::all(n) {
            self.reliable_broadcasters[u.index()] = dual
                .g_neighbors(u)
                .iter()
                .filter(|v| broadcasters[v.index()])
                .count();
            for &v in dual.g_prime_neighbors(u) {
                if broadcasters[v.index()] && !dual.g().has_edge(u, v) {
                    self.grey_broadcaster_edges[u.index()].push(Edge::new(u, v));
                }
            }
        }
    }
}

impl LinkProcess for DecayAwareOblivious {
    fn class(&self) -> AdversaryClass {
        AdversaryClass::Oblivious
    }

    fn on_start(&mut self, setup: &AdversarySetup<'_>, _rng: &mut dyn RngCore) {
        // The oblivious adversary knows the algorithm and the problem roles.
        // For a *local* broadcast problem the potential transmitters are the
        // broadcaster set; for a *global* broadcast (flooding) problem every
        // node may eventually hold and relay the message, so every node is a
        // potential transmitter.
        let n = setup.dual.len();
        let broadcasters = match &self.assumed_transmitters {
            Some(nodes) => {
                let mut flags = vec![false; n];
                for u in nodes {
                    if u.index() < n {
                        flags[u.index()] = true;
                    }
                }
                flags
            }
            None => {
                let is_global = setup
                    .assignment
                    .iter()
                    .any(|(_, role)| role == Role::Source);
                let explicit: Vec<bool> = setup
                    .assignment
                    .iter()
                    .map(|(_, role)| role == Role::Broadcaster)
                    .collect();
                if is_global || !explicit.contains(&true) {
                    vec![true; n]
                } else {
                    explicit
                }
            }
        };
        self.index_broadcasters(setup.dual, &broadcasters);
    }

    fn decide(&mut self, view: &AdversaryView<'_>, _rng: &mut dyn RngCore) -> LinkDecision {
        let p = self.assumed_probability(view.round().index());
        let mut active = Vec::new();
        for u in 0..self.grey_broadcaster_edges.len() {
            let reliable = self.reliable_broadcasters[u] as f64;
            let grey = &self.grey_broadcaster_edges[u];
            if grey.is_empty() {
                continue;
            }
            if reliable == 0.0 {
                // A receiver with no reliable transmitter neighbor can only
                // ever hear through grey links the attacker controls;
                // activating none starves it completely, which is strictly
                // better for the attacker than any overloading gamble.
                continue;
            }
            if reliable * p >= self.overload {
                // The reliable neighbors alone already overload the receiver.
                continue;
            }
            // Either saturate the neighborhood (expected transmitters well
            // above 1, so a collision is near-certain) or leave it untouched
            // (the reliable neighbors alone have expectation far below 1, so
            // the only leak is the rare lone transmission). Anything in
            // between would bring the expectation closer to 1 and *help* the
            // algorithm.
            if (reliable + grey.len() as f64) * p >= self.overload {
                active.extend_from_slice(grey);
            }
        }
        active.sort_unstable();
        active.dedup();
        LinkDecision::from_edges(active)
    }

    fn reset(&mut self) -> bool {
        // Both per-receiver indexes are rebuilt by `on_start`; the attack
        // parameters are immutable.
        true
    }

    fn name(&self) -> &'static str {
        "decay-aware"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::setup_ctx;
    use dradio_graphs::topology;
    use dradio_sim::{AdversarySetup, Round};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn assumed_probability_follows_fixed_schedule() {
        let a = DecayAwareOblivious::new(4);
        assert!((a.assumed_probability(0) - 0.5).abs() < 1e-12);
        assert!((a.assumed_probability(3) - 1.0 / 16.0).abs() < 1e-12);
        assert!((a.assumed_probability(4) - 0.5).abs() < 1e-12);
        assert_eq!(DecayAwareOblivious::for_network(256).levels, 8);
    }

    #[test]
    fn overload_is_clamped() {
        let a = DecayAwareOblivious::new(4).with_overload(0.1);
        assert!(a.overload >= 1.0);
    }

    #[test]
    fn activates_more_links_in_high_probability_rounds() {
        // Grid-geometric network: grey-zone diagonal links exist. In a round
        // with probability 1/2 the attacker needs ~8 transmitters per
        // receiver (overload 4), so it activates many grey links; in a deep
        // level round it activates none.
        let dual = topology::grid_geometric(6, 6, 1.0, 1.4).unwrap();
        let (dual_clone, factory, assignment) = setup_ctx(&dual);
        let mut attacker = DecayAwareOblivious::for_network(dual.len());
        let setup = AdversarySetup {
            dual: &dual_clone,
            factory: &factory,
            assignment: &assignment,
            horizon: 100,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        attacker.on_start(&setup, &mut rng);

        let levels = attacker.levels;
        let high = attacker.decide(
            &AdversaryView::new(Round::new(0), dual.len(), None, None, None),
            &mut rng,
        );
        let deep = attacker.decide(
            &AdversaryView::new(Round::new(levels - 1), dual.len(), None, None, None),
            &mut rng,
        );
        assert!(high.len() >= deep.len());
    }

    #[test]
    fn activated_edges_are_genuine_dynamic_edges() {
        let dual = topology::grid_geometric(5, 5, 1.0, 1.4).unwrap();
        let (dual_clone, factory, assignment) = setup_ctx(&dual);
        let mut attacker = DecayAwareOblivious::for_network(dual.len());
        let setup = AdversarySetup {
            dual: &dual_clone,
            factory: &factory,
            assignment: &assignment,
            horizon: 100,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        attacker.on_start(&setup, &mut rng);
        for r in 0..10 {
            let decision = attacker.decide(
                &AdversaryView::new(Round::new(r), dual.len(), None, None, None),
                &mut rng,
            );
            for e in decision.edges() {
                let (u, v) = e.endpoints();
                assert!(dual.g_prime().has_edge(u, v));
                assert!(!dual.g().has_edge(u, v));
            }
        }
    }

    #[test]
    fn no_grey_links_means_no_decisions() {
        // A static network has no dynamic edges at all.
        let dual = topology::clique(8);
        let (dual_clone, factory, assignment) = setup_ctx(&dual);
        let mut attacker = DecayAwareOblivious::for_network(8);
        let setup = AdversarySetup {
            dual: &dual_clone,
            factory: &factory,
            assignment: &assignment,
            horizon: 10,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        attacker.on_start(&setup, &mut rng);
        for r in 0..5 {
            assert!(attacker
                .decide(
                    &AdversaryView::new(Round::new(r), 8, None, None, None),
                    &mut rng
                )
                .is_empty());
        }
    }
}
