//! Oblivious link processes: all decisions are a function of the round
//! number, the network, and the algorithm description — never of the ongoing
//! execution.

mod bracelet;
mod decay_aware;
mod random;
mod schedule;

pub use bracelet::{BraceletConfig, BraceletOblivious};
pub use decay_aware::DecayAwareOblivious;
pub use random::{GilbertElliottLinks, IidLinks};
pub use schedule::ScheduleLinks;
