//! Random environmental link processes.
//!
//! The paper argues (Section 1) that simple independent-loss models do a poor
//! job of capturing real networks, but they remain the natural "benign
//! environment" baseline for upper-bound experiments. [`IidLinks`] flips an
//! independent coin per dynamic edge per round; [`GilbertElliottLinks`] runs
//! a two-state (good/bad) Markov chain per edge, reproducing the bursty link
//! behaviour measured by the β-factor study the paper cites.
//!
//! Both are *oblivious*: the per-round coin flips are driven by the adversary
//! RNG stream, fixed independently of the execution, and could equivalently
//! have been tabulated before round 0.

use dradio_graphs::Edge;
use dradio_sim::sampling::bernoulli;
use dradio_sim::{AdversaryClass, AdversarySetup, AdversaryView, LinkDecision, LinkProcess};
use rand::RngCore;

/// Each dynamic edge is present in each round independently with probability
/// `p`.
///
/// # Example
///
/// ```
/// use dradio_adversary::IidLinks;
/// let links = IidLinks::new(0.5);
/// assert!((links.probability() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct IidLinks {
    p: f64,
    dynamic: Vec<Edge>,
}

impl IidLinks {
    /// Creates the process with per-round edge presence probability `p`
    /// (clamped to `[0, 1]`).
    pub fn new(p: f64) -> Self {
        IidLinks {
            p: p.clamp(0.0, 1.0),
            dynamic: Vec::new(),
        }
    }

    /// The per-round presence probability.
    pub fn probability(&self) -> f64 {
        self.p
    }
}

impl LinkProcess for IidLinks {
    fn class(&self) -> AdversaryClass {
        AdversaryClass::Oblivious
    }

    fn on_start(&mut self, setup: &AdversarySetup<'_>, _rng: &mut dyn RngCore) {
        self.dynamic = setup.dual.dynamic_edges();
    }

    fn decide(&mut self, _view: &AdversaryView<'_>, rng: &mut dyn RngCore) -> LinkDecision {
        let edges = self
            .dynamic
            .iter()
            .copied()
            .filter(|_| bernoulli(rng, self.p))
            .collect();
        LinkDecision::from_edges(edges)
    }

    fn reset(&mut self) -> bool {
        // `dynamic` is rewritten by `on_start`; there is no other state.
        true
    }

    fn name(&self) -> &'static str {
        "iid-links"
    }
}

/// Per-edge Gilbert–Elliott (bursty) link process: each dynamic edge follows
/// its own two-state Markov chain; the edge is present while the chain is in
/// the *good* state.
#[derive(Debug, Clone)]
pub struct GilbertElliottLinks {
    /// Probability of moving good → bad between rounds.
    p_fail: f64,
    /// Probability of moving bad → good between rounds.
    p_recover: f64,
    /// Probability of starting in the good state.
    p_start_good: f64,
    dynamic: Vec<Edge>,
    good: Vec<bool>,
    started: bool,
}

impl GilbertElliottLinks {
    /// Creates the process. `p_fail` is the per-round probability a good edge
    /// turns bad, `p_recover` the probability a bad edge recovers; both are
    /// clamped to `[0, 1]`.
    pub fn new(p_fail: f64, p_recover: f64) -> Self {
        GilbertElliottLinks {
            p_fail: p_fail.clamp(0.0, 1.0),
            p_recover: p_recover.clamp(0.0, 1.0),
            p_start_good: 0.5,
            dynamic: Vec::new(),
            good: Vec::new(),
            started: false,
        }
    }

    /// Sets the probability an edge starts in the good state (default 0.5).
    pub fn with_start_probability(mut self, p: f64) -> Self {
        self.p_start_good = p.clamp(0.0, 1.0);
        self
    }

    /// The long-run fraction of time an edge spends in the good state,
    /// `p_recover / (p_fail + p_recover)`.
    pub fn stationary_availability(&self) -> f64 {
        if self.p_fail + self.p_recover == 0.0 {
            self.p_start_good
        } else {
            self.p_recover / (self.p_fail + self.p_recover)
        }
    }
}

impl LinkProcess for GilbertElliottLinks {
    fn class(&self) -> AdversaryClass {
        AdversaryClass::Oblivious
    }

    fn on_start(&mut self, setup: &AdversarySetup<'_>, rng: &mut dyn RngCore) {
        self.dynamic = setup.dual.dynamic_edges();
        self.good = self
            .dynamic
            .iter()
            .map(|_| bernoulli(rng, self.p_start_good))
            .collect();
        self.started = true;
    }

    fn decide(&mut self, _view: &AdversaryView<'_>, rng: &mut dyn RngCore) -> LinkDecision {
        let mut active = Vec::new();
        for (i, edge) in self.dynamic.iter().enumerate() {
            if self.good[i] {
                active.push(*edge);
                if bernoulli(rng, self.p_fail) {
                    self.good[i] = false;
                }
            } else if bernoulli(rng, self.p_recover) {
                self.good[i] = true;
            }
        }
        LinkDecision::from_edges(active)
    }

    fn reset(&mut self) -> bool {
        // `dynamic`, `good`, and `started` are all rewritten by `on_start`.
        true
    }

    fn name(&self) -> &'static str {
        "gilbert-elliott"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{run_with_beacon, setup_ctx};
    use dradio_graphs::topology;
    use dradio_sim::Round;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn iid_extremes_match_static_links() {
        let dual = topology::dual_clique(8).unwrap();
        let total = dual.dynamic_edges().len();

        let outcome = run_with_beacon(&dual, Box::new(IidLinks::new(0.0)), 10, 1);
        assert!(outcome
            .history
            .records()
            .iter()
            .all(|r| r.active_dynamic_edges.is_empty()));

        let outcome = run_with_beacon(&dual, Box::new(IidLinks::new(1.0)), 10, 1);
        assert!(outcome
            .history
            .records()
            .iter()
            .all(|r| r.active_dynamic_edges.len() == total));
    }

    #[test]
    fn iid_density_matches_probability() {
        let dual = topology::dual_clique(12).unwrap();
        let total = dual.dynamic_edges().len();
        let rounds = 200;
        let outcome = run_with_beacon(&dual, Box::new(IidLinks::new(0.3)), rounds, 2);
        let active: usize = outcome
            .history
            .records()
            .iter()
            .map(|r| r.active_dynamic_edges.len())
            .sum();
        let rate = active as f64 / (total * rounds) as f64;
        assert!((rate - 0.3).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn iid_clamps_probability() {
        assert_eq!(IidLinks::new(7.0).probability(), 1.0);
        assert_eq!(IidLinks::new(-7.0).probability(), 0.0);
    }

    #[test]
    fn gilbert_elliott_stationary_availability() {
        let ge = GilbertElliottLinks::new(0.1, 0.3);
        assert!((ge.stationary_availability() - 0.75).abs() < 1e-12);
        let frozen = GilbertElliottLinks::new(0.0, 0.0).with_start_probability(1.0);
        assert_eq!(frozen.stationary_availability(), 1.0);
    }

    #[test]
    fn gilbert_elliott_produces_bursts() {
        // With slow transitions, consecutive rounds should frequently keep
        // the same edge state (that is the burstiness).
        let dual = topology::dual_clique(8).unwrap();
        let outcome = run_with_beacon(
            &dual,
            Box::new(GilbertElliottLinks::new(0.02, 0.02)),
            300,
            3,
        );
        let records = outcome.history.records();
        let mut same = 0usize;
        let mut compared = 0usize;
        for pair in records.windows(2) {
            let a: std::collections::BTreeSet<_> = pair[0].active_dynamic_edges.iter().collect();
            let b: std::collections::BTreeSet<_> = pair[1].active_dynamic_edges.iter().collect();
            compared += 1;
            if a == b {
                same += 1;
            }
        }
        // With ~15 dynamic edges and a 2% flip probability per edge, roughly
        // three quarters of consecutive rounds keep the exact same active
        // set; require a majority to guard the burstiness property.
        assert!(
            same * 2 > compared,
            "bursts expected: {same}/{compared} identical transitions"
        );
    }

    #[test]
    fn gilbert_elliott_empirical_availability_tracks_stationary_value() {
        let dual = topology::dual_clique(10).unwrap();
        let total = dual.dynamic_edges().len();
        let ge = GilbertElliottLinks::new(0.2, 0.2);
        let expected = ge.stationary_availability();
        let rounds = 400;
        let outcome = run_with_beacon(&dual, Box::new(ge), rounds, 4);
        let active: usize = outcome
            .history
            .records()
            .iter()
            .map(|r| r.active_dynamic_edges.len())
            .sum();
        let rate = active as f64 / (total * rounds) as f64;
        assert!((rate - expected).abs() < 0.08, "rate {rate} vs {expected}");
    }

    #[test]
    fn both_declare_oblivious_class() {
        assert_eq!(IidLinks::new(0.5).class(), AdversaryClass::Oblivious);
        assert_eq!(
            GilbertElliottLinks::new(0.1, 0.1).class(),
            AdversaryClass::Oblivious
        );
        assert_eq!(IidLinks::new(0.5).name(), "iid-links");
        assert_eq!(GilbertElliottLinks::new(0.1, 0.1).name(), "gilbert-elliott");
    }

    #[test]
    fn decisions_only_use_the_adversary_stream() {
        // Two runs with the same seed produce identical link behaviour even
        // though the view is inspected; sanity for obliviousness.
        let dual = topology::dual_clique(8).unwrap();
        let a = run_with_beacon(&dual, Box::new(IidLinks::new(0.4)), 30, 9);
        let b = run_with_beacon(&dual, Box::new(IidLinks::new(0.4)), 30, 9);
        assert_eq!(a.history, b.history);
        // Direct decide() calls also ignore the view contents.
        let (setup_dual, factory, assignment) = setup_ctx(&dual);
        let mut links = IidLinks::new(0.4);
        let setup = dradio_sim::AdversarySetup {
            dual: &setup_dual,
            factory: &factory,
            assignment: &assignment,
            horizon: 10,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        links.on_start(&setup, &mut rng);
        let view = AdversaryView::new(Round::ZERO, setup_dual.len(), None, None, None);
        let _ = links.decide(&view, &mut rng);
    }
}
