//! Precomputed-schedule link process.

use dradio_graphs::Edge;
use dradio_sim::{AdversaryClass, AdversaryView, LinkDecision, LinkProcess};
use rand::RngCore;

/// Replays an explicit per-round schedule of active dynamic edges.
///
/// The schedule cycles once exhausted (an empty schedule behaves like
/// `StaticLinks::none()`). Because the schedule is fixed up front this is the
/// purest form of oblivious adversary, and the form in which any other
/// oblivious adversary could in principle be tabulated.
///
/// # Example
///
/// ```
/// use dradio_adversary::ScheduleLinks;
/// use dradio_graphs::{Edge, NodeId};
/// let schedule = vec![
///     vec![Edge::new(NodeId::new(0), NodeId::new(2))], // round 0
///     vec![],                                          // round 1
/// ];
/// let links = ScheduleLinks::new(schedule);
/// assert_eq!(links.period(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ScheduleLinks {
    schedule: Vec<Vec<Edge>>,
}

impl ScheduleLinks {
    /// Creates the process from an explicit schedule (entry `r` lists the
    /// dynamic edges active in round `r`, modulo the schedule length).
    pub fn new(schedule: Vec<Vec<Edge>>) -> Self {
        ScheduleLinks { schedule }
    }

    /// The cycle length of the schedule.
    pub fn period(&self) -> usize {
        self.schedule.len()
    }
}

impl LinkProcess for ScheduleLinks {
    fn class(&self) -> AdversaryClass {
        AdversaryClass::Oblivious
    }

    fn decide(&mut self, view: &AdversaryView<'_>, _rng: &mut dyn RngCore) -> LinkDecision {
        if self.schedule.is_empty() {
            return LinkDecision::none();
        }
        let idx = view.round().index() % self.schedule.len();
        LinkDecision::from_edges(self.schedule[idx].clone())
    }

    fn reset(&mut self) -> bool {
        // The schedule is immutable; there is no per-execution state.
        true
    }

    fn name(&self) -> &'static str {
        "schedule"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::run_with_beacon;
    use dradio_graphs::{topology, NodeId};

    #[test]
    fn empty_schedule_activates_nothing() {
        let dual = topology::dual_clique(6).unwrap();
        let outcome = run_with_beacon(&dual, Box::new(ScheduleLinks::new(vec![])), 5, 0);
        assert!(outcome
            .history
            .records()
            .iter()
            .all(|r| r.active_dynamic_edges.is_empty()));
    }

    #[test]
    fn schedule_is_replayed_cyclically() {
        let dual = topology::dual_clique(6).unwrap();
        let e = dual.dynamic_edges()[0];
        let links = ScheduleLinks::new(vec![vec![e], vec![]]);
        assert_eq!(links.period(), 2);
        let outcome = run_with_beacon(&dual, Box::new(links), 6, 1);
        for (r, record) in outcome.history.records().iter().enumerate() {
            if r % 2 == 0 {
                assert_eq!(record.active_dynamic_edges, vec![e]);
            } else {
                assert!(record.active_dynamic_edges.is_empty());
            }
        }
    }

    #[test]
    fn invalid_edges_in_schedule_are_filtered_by_engine() {
        let dual = topology::dual_clique(6).unwrap();
        // (0,1) is a reliable clique edge, not a dynamic edge.
        let bogus = Edge::new(NodeId::new(0), NodeId::new(1));
        let outcome = run_with_beacon(&dual, Box::new(ScheduleLinks::new(vec![vec![bogus]])), 4, 2);
        assert!(outcome
            .history
            .records()
            .iter()
            .all(|r| r.active_dynamic_edges.is_empty()));
        assert_eq!(outcome.metrics.rejected_link_edges, 4);
    }
}
