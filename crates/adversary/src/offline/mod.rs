//! Offline adaptive link processes: they additionally see the current round's
//! actions (the nodes' resolved coin flips) before fixing the links.

mod omniscient;

pub use omniscient::OmniscientOffline;
