//! The omniscient offline adaptive blocker.
//!
//! An offline adaptive link process sees the actual transmit decisions of the
//! current round before fixing the links — the strongest of the three classes
//! and the one assumed by the earlier dual graph papers the paper builds on
//! (Figure 1 row 1, where both broadcast problems require `Ω(n)` rounds even
//! in constant-diameter graphs).
//!
//! The attacker implemented here blocks every delivery it *can* block: for
//! every listening node that is about to hear exactly one reliable neighbor,
//! it activates a dynamic edge from some other transmitter to that node,
//! turning the delivery into a collision. A delivery can only slip through
//! when there is no second transmitter anywhere within `G'` range — on the
//! dual clique network that means progress requires the globally lone
//! transmitter to be a bridge endpoint, which is exactly the `Ω(n)` dynamic
//! the lower bound formalizes.
//!
//! Optionally the attacker protects only a subset of nodes (e.g. the far side
//! of the dual clique), letting the algorithm proceed normally elsewhere —
//! useful for experiments that want to isolate the cross-cut delay.

use std::sync::Arc;

use dradio_graphs::{DualGraph, Edge, NodeId};
use dradio_sim::{AdversaryClass, AdversarySetup, AdversaryView, LinkDecision, LinkProcess};
use rand::RngCore;

/// The omniscient offline adaptive blocker.
#[derive(Debug, Clone, Default)]
pub struct OmniscientOffline {
    /// If non-empty, only these nodes are protected from receiving.
    protect: Vec<NodeId>,
    dual: Option<Arc<DualGraph>>,
}

impl OmniscientOffline {
    /// Creates the attacker protecting every node (blocking every blockable
    /// delivery anywhere in the network).
    pub fn new() -> Self {
        OmniscientOffline {
            protect: Vec::new(),
            dual: None,
        }
    }

    /// Creates the attacker protecting only the listed nodes.
    pub fn protecting(nodes: Vec<NodeId>) -> Self {
        OmniscientOffline {
            protect: nodes,
            dual: None,
        }
    }

    fn is_protected(&self, u: NodeId) -> bool {
        self.protect.is_empty() || self.protect.contains(&u)
    }
}

impl LinkProcess for OmniscientOffline {
    fn class(&self) -> AdversaryClass {
        AdversaryClass::OfflineAdaptive
    }

    fn on_start(&mut self, setup: &AdversarySetup<'_>, _rng: &mut dyn RngCore) {
        self.dual = Some(setup.dual.clone());
    }

    fn decide(&mut self, view: &AdversaryView<'_>, _rng: &mut dyn RngCore) -> LinkDecision {
        let (Some(dual), Some(actions)) = (self.dual.as_ref(), view.actions()) else {
            return LinkDecision::none();
        };
        let transmitters: Vec<NodeId> = actions
            .iter()
            .enumerate()
            .filter(|(_, a)| a.is_transmit())
            .map(|(i, _)| NodeId::new(i))
            .collect();
        if transmitters.is_empty() {
            return LinkDecision::none();
        }
        let mut active: Vec<Edge> = Vec::new();
        for u in NodeId::all(dual.len()) {
            if actions[u.index()].is_transmit() || !self.is_protected(u) {
                continue;
            }
            let reliable_transmitting: usize = dual
                .g_neighbors(u)
                .iter()
                .filter(|v| actions[v.index()].is_transmit())
                .count();
            if reliable_transmitting != 1 {
                // Either already silent or already a collision: nothing to do.
                continue;
            }
            // Find a second transmitter reachable over a dynamic edge.
            if let Some(&blocker) = transmitters
                .iter()
                .find(|&&t| dual.g_prime().has_edge(u, t) && !dual.g().has_edge(u, t))
            {
                active.push(Edge::new(u, blocker));
            }
        }
        active.sort_unstable();
        active.dedup();
        LinkDecision::from_edges(active)
    }

    fn reset(&mut self) -> bool {
        // The cached handle is re-captured by `on_start` (an Arc bump, not
        // a graph copy); dropping it restores the just-constructed state.
        self.dual = None;
        true
    }

    fn name(&self) -> &'static str {
        "omniscient-offline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{run_with_beacon, setup_ctx, talker_factory, DATA};
    use dradio_graphs::topology;
    use dradio_sim::{Action, Assignment, Message, Round, SimConfig, Simulator, StopCondition};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn blocks_a_lone_reliable_delivery_when_a_second_transmitter_exists() {
        // Dual clique n = 4: A = {0,1}, B = {2,3}, bridge (0,2).
        // Node 1 transmits (reliable neighbor of 0); node 3 transmits too.
        // Node 0 would hear node 1; the attacker links 0-3 to collide.
        let dual = topology::dual_clique(4).unwrap();
        let (dual_clone, factory, assignment) = setup_ctx(&dual);
        let mut a = OmniscientOffline::new();
        let setup = AdversarySetup {
            dual: &dual_clone,
            factory: &factory,
            assignment: &assignment,
            horizon: 5,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        a.on_start(&setup, &mut rng);

        let msg = Message::plain(NodeId::new(1), DATA, 0);
        let actions = vec![
            Action::Listen,
            Action::Transmit(msg.clone()),
            Action::Listen,
            Action::Transmit(msg),
        ];
        let view = AdversaryView::new(Round::ZERO, 4, None, None, Some(&actions));
        let decision = a.decide(&view, &mut rng);
        // Node 0 gets a blocking edge to node 3; node 2's reliable neighbors
        // in A... node 2's G-neighbors are {3, 0-bridge}; 3 transmits so
        // reliable count = 1 → blocked via an edge to node 1.
        assert!(decision
            .edges()
            .contains(&Edge::new(NodeId::new(0), NodeId::new(3))));
        assert!(!decision.is_empty());
    }

    #[test]
    fn cannot_block_a_globally_lone_transmitter() {
        let dual = topology::dual_clique(4).unwrap();
        let (dual_clone, factory, assignment) = setup_ctx(&dual);
        let mut a = OmniscientOffline::new();
        let setup = AdversarySetup {
            dual: &dual_clone,
            factory: &factory,
            assignment: &assignment,
            horizon: 5,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        a.on_start(&setup, &mut rng);
        let msg = Message::plain(NodeId::new(1), DATA, 0);
        let actions = vec![
            Action::Listen,
            Action::Transmit(msg),
            Action::Listen,
            Action::Listen,
        ];
        let view = AdversaryView::new(Round::ZERO, 4, None, None, Some(&actions));
        assert!(a.decide(&view, &mut rng).is_empty());
    }

    #[test]
    fn protecting_a_subset_leaves_other_nodes_alone() {
        let dual = topology::dual_clique(8).unwrap();
        let (dual_clone, factory, assignment) = setup_ctx(&dual);
        // Protect only side B (nodes 4..8).
        let protected: Vec<NodeId> = (4..8).map(NodeId::new).collect();
        let mut a = OmniscientOffline::protecting(protected.clone());
        let setup = AdversarySetup {
            dual: &dual_clone,
            factory: &factory,
            assignment: &assignment,
            horizon: 5,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        a.on_start(&setup, &mut rng);
        let msg = Message::plain(NodeId::new(1), DATA, 0);
        // Nodes 1 and 2 (side A) transmit.
        let mut actions = vec![Action::Listen; 8];
        actions[1] = Action::Transmit(msg.clone());
        actions[2] = Action::Transmit(msg);
        let view = AdversaryView::new(Round::ZERO, 8, None, None, Some(&actions));
        let decision = a.decide(&view, &mut rng);
        // Every activated edge must touch a protected node.
        for e in decision.edges() {
            let (u, v) = e.endpoints();
            assert!(protected.contains(&u) || protected.contains(&v));
        }
    }

    #[test]
    fn starves_the_far_clique_under_a_randomized_flooder() {
        // With many side-A broadcasters transmitting randomly, the attacker
        // keeps side B uninformed for a long horizon (the Omega(n) dynamic).
        let n = 24;
        let dual = topology::dual_clique(n).unwrap();
        let broadcasters: Vec<NodeId> = (0..n / 2).map(NodeId::new).collect();
        let outcome = Simulator::new(
            dual,
            talker_factory(0.3),
            Assignment::local(n, &broadcasters),
            Box::new(OmniscientOffline::new()),
            SimConfig::default().with_seed(7).with_max_rounds(60),
        )
        .unwrap()
        .run(StopCondition::max_rounds());
        // Nodes of side B other than the bridge endpoint stay uninformed: the
        // attacker blocks every delivery that has an alternative transmitter.
        let starved = ((n / 2 + 1)..n)
            .filter(|&b| !outcome.history.received_any(NodeId::new(b)))
            .count();
        assert!(
            starved >= n / 2 - 2,
            "most of side B should be starved, {starved} were"
        );
    }

    #[test]
    fn without_action_visibility_it_does_nothing() {
        let dual = topology::dual_clique(6).unwrap();
        let outcome = run_with_beacon(&dual, Box::new(OmniscientOffline::new()), 5, 3);
        // It still runs (class OfflineAdaptive gives it actions inside the
        // engine), so the only check here is that the direct call without
        // actions is a no-op.
        assert!(outcome.rounds_executed == 5);
        let mut a = OmniscientOffline::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let view = AdversaryView::new(Round::ZERO, 6, None, None, None);
        assert!(a.decide(&view, &mut rng).is_empty());
        assert_eq!(a.class(), AdversaryClass::OfflineAdaptive);
    }
}
