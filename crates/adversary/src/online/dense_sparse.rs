//! The online adaptive attacker of Theorem 3.1.
//!
//! The attacker computes, at the start of each round, the expected number of
//! transmitters `E[|X| | S]` from the processes' current state (information an
//! online adaptive link process is entitled to — it knows the algorithm and
//! the execution history, just not the round's coins). It labels the round
//! **dense** when the expectation exceeds `c · log₂ n` and **sparse**
//! otherwise, then:
//!
//! * dense round → activate **every** dynamic edge. With many expected
//!   transmitters the topology is (close to) complete and everyone collides;
//!   the only way the algorithm makes progress is the low-probability event
//!   that exactly one node transmits.
//! * sparse round → activate **no** dynamic edge. The few transmitters can
//!   only reach their reliable neighbors, so no progress is made across the
//!   dynamic-only cuts (e.g. between the two cliques of the dual clique
//!   network) unless a bridge endpoint happens to transmit.
//!
//! On the dual clique network this forces `Ω(n / log n)` rounds for both
//! global and local broadcast (Figure 1 row 2), which experiment E5 measures.

use dradio_graphs::Edge;
use dradio_sim::process::log2_ceil;
use dradio_sim::{AdversaryClass, AdversarySetup, AdversaryView, LinkDecision, LinkProcess};
use rand::RngCore;

/// The expectation-threshold online adaptive attacker.
#[derive(Debug, Clone)]
pub struct DenseSparseOnline {
    density_factor: f64,
    threshold: f64,
    dynamic_edges: Vec<Edge>,
    dense_rounds_seen: usize,
    sparse_rounds_seen: usize,
}

impl DenseSparseOnline {
    /// Creates the attacker with dense threshold `density_factor · log₂ n`
    /// (the factor defaults to 1; the paper's proof uses a sufficiently large
    /// constant `c`).
    pub fn new(density_factor: f64) -> Self {
        DenseSparseOnline {
            density_factor: density_factor.max(0.1),
            threshold: 0.0,
            dynamic_edges: Vec::new(),
            dense_rounds_seen: 0,
            sparse_rounds_seen: 0,
        }
    }

    /// The dense/sparse threshold computed at `on_start` (0 before that).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of rounds labelled dense so far.
    pub fn dense_rounds_seen(&self) -> usize {
        self.dense_rounds_seen
    }

    /// Number of rounds labelled sparse so far.
    pub fn sparse_rounds_seen(&self) -> usize {
        self.sparse_rounds_seen
    }
}

impl Default for DenseSparseOnline {
    fn default() -> Self {
        DenseSparseOnline::new(1.0)
    }
}

impl LinkProcess for DenseSparseOnline {
    fn class(&self) -> AdversaryClass {
        AdversaryClass::OnlineAdaptive
    }

    fn on_start(&mut self, setup: &AdversarySetup<'_>, _rng: &mut dyn RngCore) {
        self.dynamic_edges = setup.dual.dynamic_edges();
        self.threshold = self.density_factor * log2_ceil(setup.dual.len().max(2)).max(1) as f64;
    }

    fn decide(&mut self, view: &AdversaryView<'_>, _rng: &mut dyn RngCore) -> LinkDecision {
        let expected = view.expected_transmitters().unwrap_or(0.0);
        if expected > self.threshold {
            self.dense_rounds_seen += 1;
            LinkDecision::from_edges(self.dynamic_edges.clone())
        } else {
            self.sparse_rounds_seen += 1;
            LinkDecision::none()
        }
    }

    fn reset(&mut self) -> bool {
        // The threshold and edge list are rewritten by `on_start`; only the
        // diagnostic round counters accumulate across decisions.
        self.dense_rounds_seen = 0;
        self.sparse_rounds_seen = 0;
        true
    }

    fn name(&self) -> &'static str {
        "dense-sparse-online"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{setup_ctx, talker_factory};
    use dradio_graphs::{topology, NodeId};
    use dradio_sim::{Assignment, Round, SimConfig, Simulator, StopCondition};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn threshold_scales_with_network_size() {
        let mut a = DenseSparseOnline::new(2.0);
        let dual = topology::dual_clique(256).unwrap();
        let (dual_clone, factory, assignment) = setup_ctx(&dual);
        let setup = AdversarySetup {
            dual: &dual_clone,
            factory: &factory,
            assignment: &assignment,
            horizon: 1,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        a.on_start(&setup, &mut rng);
        assert!((a.threshold() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn dense_and_sparse_rounds_choose_opposite_extremes() {
        let dual = topology::dual_clique(16).unwrap();
        let (dual_clone, factory, assignment) = setup_ctx(&dual);
        let mut a = DenseSparseOnline::default();
        let setup = AdversarySetup {
            dual: &dual_clone,
            factory: &factory,
            assignment: &assignment,
            horizon: 10,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        a.on_start(&setup, &mut rng);

        let high = vec![0.9; 16];
        let low = vec![0.01; 16];
        let history = dradio_sim::History::new(16);
        let dense_view = AdversaryView::new(Round::ZERO, 16, Some(&history), Some(&high), None);
        let sparse_view = AdversaryView::new(Round::ZERO, 16, Some(&history), Some(&low), None);
        assert_eq!(
            a.decide(&dense_view, &mut rng).len(),
            dual.dynamic_edges().len()
        );
        assert!(a.decide(&sparse_view, &mut rng).is_empty());
        assert_eq!(a.dense_rounds_seen(), 1);
        assert_eq!(a.sparse_rounds_seen(), 1);
    }

    #[test]
    fn missing_probabilities_default_to_sparse() {
        let dual = topology::dual_clique(8).unwrap();
        let (dual_clone, factory, assignment) = setup_ctx(&dual);
        let mut a = DenseSparseOnline::default();
        let setup = AdversarySetup {
            dual: &dual_clone,
            factory: &factory,
            assignment: &assignment,
            horizon: 10,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        a.on_start(&setup, &mut rng);
        let view = AdversaryView::new(Round::ZERO, 8, None, None, None);
        assert!(a.decide(&view, &mut rng).is_empty());
    }

    #[test]
    fn slows_down_broadcast_across_the_dual_clique() {
        // All nodes of side A broadcast aggressively (expected count far above
        // the threshold): the attacker keeps every round dense, so side B
        // never hears anything (every transmission collides at B's nodes).
        let n = 32;
        let dual = topology::dual_clique(n).unwrap();
        let broadcasters: Vec<NodeId> = (0..n / 2).map(NodeId::new).collect();
        let outcome = Simulator::new(
            dual,
            talker_factory(0.5),
            Assignment::local(n, &broadcasters),
            Box::new(DenseSparseOnline::default()),
            SimConfig::default().with_seed(3).with_max_rounds(200),
        )
        .unwrap()
        .run(StopCondition::max_rounds());
        // No node of side B (other than the bridge endpoint, reachable over
        // the reliable bridge) ever receives anything.
        for b in (n / 2 + 1)..n {
            assert!(
                !outcome.history.received_any(NodeId::new(b)),
                "node {b} should be starved"
            );
        }
    }

    #[test]
    fn declares_online_adaptive_class() {
        let a = DenseSparseOnline::default();
        assert_eq!(a.class(), AdversaryClass::OnlineAdaptive);
        assert_eq!(a.name(), "dense-sparse-online");
    }
}
