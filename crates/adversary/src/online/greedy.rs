//! A greedy frontier-collision online adaptive attacker.
//!
//! Unlike the dense/sparse attacker of Theorem 3.1 — which is tailored to
//! topologies whose dynamic edges form a complete cut — this adversary works
//! on arbitrary dual graphs. For every node that has not yet received a
//! message it estimates the expected number of its *reliable* neighbors that
//! will transmit this round (from the per-node transmit probabilities the
//! online adaptive class is entitled to). If that expectation sits in the
//! "danger zone" around 1, where a delivery is likely, it activates dynamic
//! edges from additional likely transmitters towards the node to push the
//! expectation up and provoke a collision instead.

use std::sync::Arc;

use dradio_graphs::{DualGraph, Edge, NodeId};
use dradio_sim::{AdversaryClass, AdversarySetup, AdversaryView, LinkDecision, LinkProcess};
use rand::RngCore;

/// Greedy collision-provoking online adaptive attacker.
#[derive(Debug, Clone)]
pub struct GreedyCollisionOnline {
    /// A receiver whose expected reliable-transmitter count lies in
    /// `[danger_low, danger_high]` is attacked.
    danger_low: f64,
    /// Upper end of the danger zone.
    danger_high: f64,
    /// Expected-transmitter level the attacker tries to reach when attacking.
    target: f64,
    dual: Option<Arc<DualGraph>>,
}

impl GreedyCollisionOnline {
    /// Creates the attacker with default danger zone `[0.2, 1.8]` and overload
    /// target 3.
    pub fn new() -> Self {
        GreedyCollisionOnline {
            danger_low: 0.2,
            danger_high: 1.8,
            target: 3.0,
            dual: None,
        }
    }

    /// Sets the danger zone bounds.
    pub fn with_danger_zone(mut self, low: f64, high: f64) -> Self {
        self.danger_low = low;
        self.danger_high = high.max(low);
        self
    }

    /// Sets the overload target.
    pub fn with_target(mut self, target: f64) -> Self {
        self.target = target.max(1.0);
        self
    }
}

impl Default for GreedyCollisionOnline {
    fn default() -> Self {
        GreedyCollisionOnline::new()
    }
}

impl LinkProcess for GreedyCollisionOnline {
    fn class(&self) -> AdversaryClass {
        AdversaryClass::OnlineAdaptive
    }

    fn on_start(&mut self, setup: &AdversarySetup<'_>, _rng: &mut dyn RngCore) {
        self.dual = Some(setup.dual.clone());
    }

    fn decide(&mut self, view: &AdversaryView<'_>, _rng: &mut dyn RngCore) -> LinkDecision {
        let (Some(dual), Some(probs)) = (self.dual.as_ref(), view.transmit_probabilities()) else {
            return LinkDecision::none();
        };
        let history = view.history();
        let mut active: Vec<Edge> = Vec::new();
        for u in NodeId::all(dual.len()) {
            // Nodes that already received something are no longer interesting
            // frontier targets.
            if let Some(h) = history {
                if h.received_any(u) {
                    continue;
                }
            }
            let reliable_expectation: f64 =
                dual.g_neighbors(u).iter().map(|v| probs[v.index()]).sum();
            if reliable_expectation < self.danger_low || reliable_expectation > self.danger_high {
                continue;
            }
            // Add the likeliest grey-zone transmitters until the expectation
            // clears the target.
            let mut candidates: Vec<(f64, NodeId)> = dual
                .g_prime_neighbors(u)
                .iter()
                .filter(|v| !dual.g().has_edge(u, **v))
                .map(|&v| (probs[v.index()], v))
                .filter(|(p, _)| *p > 0.0)
                .collect();
            candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            let mut expectation = reliable_expectation;
            for (p, v) in candidates {
                if expectation >= self.target {
                    break;
                }
                expectation += p;
                active.push(Edge::new(u, v));
            }
        }
        active.sort_unstable();
        active.dedup();
        LinkDecision::from_edges(active)
    }

    fn reset(&mut self) -> bool {
        // The cached handle is re-captured by `on_start` (an Arc bump, not
        // a graph copy); dropping it restores the just-constructed state.
        self.dual = None;
        true
    }

    fn name(&self) -> &'static str {
        "greedy-collision-online"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{setup_ctx, talker_factory};
    use dradio_graphs::topology;
    use dradio_sim::{Assignment, History, Round, SimConfig, Simulator, StopCondition};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn started(dual: &DualGraph) -> (GreedyCollisionOnline, ChaCha8Rng) {
        let (dual_clone, factory, assignment) = setup_ctx(dual);
        let mut a = GreedyCollisionOnline::new();
        let setup = AdversarySetup {
            dual: &dual_clone,
            factory: &factory,
            assignment: &assignment,
            horizon: 10,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        a.on_start(&setup, &mut rng);
        (a, rng)
    }

    #[test]
    fn attacks_receivers_in_the_danger_zone() {
        // Grid-geometric graph: node interior receivers have grey-zone
        // (diagonal) neighbors available to the attacker.
        let dual = topology::grid_geometric(4, 4, 1.0, 1.45).unwrap();
        let (mut a, mut rng) = started(&dual);
        let history = History::new(dual.len());
        // Everyone transmits with probability 0.5: reliable expectations land
        // in the danger zone and grey candidates exist.
        let probs = vec![0.5; dual.len()];
        let view = AdversaryView::new(Round::ZERO, dual.len(), Some(&history), Some(&probs), None);
        let decision = a.decide(&view, &mut rng);
        assert!(
            !decision.is_empty(),
            "expected the attacker to inject grey links"
        );
        for e in decision.edges() {
            let (u, v) = e.endpoints();
            assert!(!dual.g().has_edge(u, v));
            assert!(dual.g_prime().has_edge(u, v));
        }
    }

    #[test]
    fn quiet_rounds_are_left_alone() {
        let dual = topology::grid_geometric(4, 4, 1.0, 1.45).unwrap();
        let (mut a, mut rng) = started(&dual);
        let history = History::new(dual.len());
        let probs = vec![0.0; dual.len()];
        let view = AdversaryView::new(Round::ZERO, dual.len(), Some(&history), Some(&probs), None);
        assert!(a.decide(&view, &mut rng).is_empty());
    }

    #[test]
    fn missing_information_means_no_action() {
        let dual = topology::grid_geometric(3, 3, 1.0, 1.45).unwrap();
        let (mut a, mut rng) = started(&dual);
        let view = AdversaryView::new(Round::ZERO, dual.len(), None, None, None);
        assert!(a.decide(&view, &mut rng).is_empty());
    }

    #[test]
    fn delays_local_broadcast_relative_to_benign_links() {
        // On a grey-zone-rich geometric grid with all nodes broadcasting at a
        // moderate rate, the greedy attacker should cause at least as many
        // collisions as the benign no-dynamic-links baseline.
        let dual = topology::grid_geometric(5, 5, 1.0, 1.45).unwrap();
        let n = dual.len();
        let broadcasters: Vec<NodeId> = NodeId::all(n).collect();
        let run = |link: Box<dyn dradio_sim::LinkProcess>| {
            Simulator::new(
                dual.clone(),
                talker_factory(0.4),
                Assignment::local(n, &broadcasters),
                link,
                SimConfig::default().with_seed(5).with_max_rounds(60),
            )
            .unwrap()
            .run(StopCondition::max_rounds())
        };
        let attacked = run(Box::<GreedyCollisionOnline>::default());
        let benign = run(Box::new(dradio_sim::StaticLinks::none()));
        assert!(attacked.metrics.collisions >= benign.metrics.collisions);
    }

    #[test]
    fn builder_methods_clamp_values() {
        let a = GreedyCollisionOnline::new()
            .with_danger_zone(1.0, 0.5)
            .with_target(0.0);
        assert!(a.danger_high >= a.danger_low);
        assert!(a.target >= 1.0);
        assert_eq!(a.class(), AdversaryClass::OnlineAdaptive);
    }
}
