//! Online adaptive link processes: they may use the execution history through
//! the previous round and the algorithm's expected behaviour, but not the
//! current round's coin flips.

mod dense_sparse;
mod greedy;

pub use dense_sparse::DenseSparseOnline;
pub use greedy::GreedyCollisionOnline;
