//! Shared fixtures for adversary unit tests.

use std::sync::Arc;

use dradio_graphs::{DualGraph, NodeId};
use dradio_sim::sampling::bernoulli;
use dradio_sim::{
    Action, Assignment, ExecutionOutcome, LinkProcess, Message, MessageKind, Process,
    ProcessContext, ProcessFactory, Role, Round, SimConfig, Simulator, StopCondition,
};
use rand::RngCore;

pub const DATA: MessageKind = MessageKind::new(1);

/// A process that transmits a payload with fixed probability every round
/// (broadcasters and sources only).
pub struct Talker {
    p: f64,
    msg: Option<Message>,
}

impl Process for Talker {
    fn on_round(&mut self, _round: Round, rng: &mut dyn RngCore) -> Action {
        match &self.msg {
            Some(m) if bernoulli(rng, self.p) => Action::Transmit(m.clone()),
            _ => Action::Listen,
        }
    }
    fn transmit_probability(&self, _round: Round) -> f64 {
        if self.msg.is_some() {
            self.p
        } else {
            0.0
        }
    }
    fn name(&self) -> &'static str {
        "talker"
    }
}

/// Factory for [`Talker`] processes with probability `p`.
pub fn talker_factory(p: f64) -> ProcessFactory {
    Arc::new(move |ctx: &ProcessContext| {
        let msg =
            (ctx.role != Role::Relay).then(|| Message::plain(ctx.id, DATA, ctx.id.index() as u64));
        Box::new(Talker { p, msg }) as Box<dyn Process>
    })
}

/// Returns a shared handle to the network plus a simple factory/assignment
/// pair, for tests that need to call `on_start` directly (the
/// `AdversarySetup` borrows the `Arc`, as the engine's does).
pub fn setup_ctx(dual: &DualGraph) -> (Arc<DualGraph>, ProcessFactory, Assignment) {
    let n = dual.len();
    let broadcasters: Vec<NodeId> = NodeId::all(n).collect();
    (
        Arc::new(dual.clone()),
        talker_factory(0.3),
        Assignment::local(n, &broadcasters),
    )
}

/// Runs `rounds` rounds of a talker workload (every node a broadcaster with
/// probability 0.3) under the given link process and returns the outcome.
pub fn run_with_beacon(
    dual: &DualGraph,
    link: Box<dyn LinkProcess>,
    rounds: usize,
    seed: u64,
) -> ExecutionOutcome {
    let n = dual.len();
    let broadcasters: Vec<NodeId> = NodeId::all(n).collect();
    Simulator::new(
        dual.clone(),
        talker_factory(0.3),
        Assignment::local(n, &broadcasters),
        link,
        SimConfig::default().with_seed(seed).with_max_rounds(rounds),
    )
    // lint: allow(D4) -- test-support harness; inputs are fixed known-good specs
    .expect("valid simulation")
    .run(StopCondition::max_rounds())
}
