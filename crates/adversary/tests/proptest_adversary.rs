//! Property-based tests for the adversary crate: every link process only ever
//! proposes genuine dynamic edges, respects its declared capability class,
//! and behaves deterministically per seed.

use std::sync::Arc;

use dradio_adversary::{
    BraceletOblivious, DecayAwareOblivious, DenseSparseOnline, GilbertElliottLinks,
    GreedyCollisionOnline, IidLinks, OmniscientOffline, ScheduleLinks,
};
use dradio_graphs::{topology, DualGraph, NodeId};
use dradio_sim::sampling::bernoulli;
use dradio_sim::{
    Action, AdversaryClass, Assignment, LinkProcess, Message, MessageKind, Process, ProcessContext,
    ProcessFactory, RecordMode, Role, Round, SimConfig, Simulator, StopCondition,
};
use proptest::prelude::*;
use rand::RngCore;

const DATA: MessageKind = MessageKind::new(1);

struct Talker {
    p: f64,
    msg: Option<Message>,
}

impl Process for Talker {
    fn on_round(&mut self, _round: Round, rng: &mut dyn RngCore) -> Action {
        match &self.msg {
            Some(m) if bernoulli(rng, self.p) => Action::Transmit(m.clone()),
            _ => Action::Listen,
        }
    }
    fn transmit_probability(&self, _round: Round) -> f64 {
        if self.msg.is_some() {
            self.p
        } else {
            0.0
        }
    }
}

fn talker_factory(p: f64) -> ProcessFactory {
    Arc::new(move |ctx: &ProcessContext| {
        let msg = (ctx.role != Role::Relay).then(|| Message::plain(ctx.id, DATA, 0));
        Box::new(Talker { p, msg }) as Box<dyn Process>
    })
}

/// Builds one of the supported adversaries by index (bracelet gets its own
/// test because it needs the bracelet metadata).
fn make_adversary(index: usize, n: usize) -> Box<dyn LinkProcess> {
    match index % 7 {
        0 => Box::new(IidLinks::new(0.4)),
        1 => Box::new(GilbertElliottLinks::new(0.1, 0.2)),
        2 => Box::new(ScheduleLinks::new(vec![vec![], vec![]])),
        3 => Box::new(DecayAwareOblivious::for_network(n)),
        4 => Box::new(DenseSparseOnline::default()),
        5 => Box::new(GreedyCollisionOnline::new()),
        _ => Box::new(OmniscientOffline::new()),
    }
}

fn arb_dual() -> impl Strategy<Value = DualGraph> {
    prop_oneof![
        (4usize..24).prop_map(|half| topology::dual_clique(2 * half.max(2)).unwrap()),
        (2usize..5).prop_map(|k| topology::bracelet(k).unwrap().into_dual()),
        (3usize..6, 3usize..6)
            .prop_map(|(c, r)| topology::grid_geometric(c, r, 1.0, 1.45).unwrap()),
    ]
}

fn run(
    dual: &DualGraph,
    adversary: Box<dyn LinkProcess>,
    seed: u64,
    rounds: usize,
) -> dradio_sim::ExecutionOutcome {
    run_mode(dual, adversary, seed, rounds, RecordMode::Full)
}

fn run_mode(
    dual: &DualGraph,
    adversary: Box<dyn LinkProcess>,
    seed: u64,
    rounds: usize,
    mode: RecordMode,
) -> dradio_sim::ExecutionOutcome {
    let n = dual.len();
    let broadcasters: Vec<NodeId> = NodeId::all(n).filter(|u| u.index() % 2 == 0).collect();
    Simulator::new(
        dual.clone(),
        talker_factory(0.4),
        Assignment::local(n, &broadcasters),
        adversary,
        SimConfig::default()
            .with_seed(seed)
            .with_max_rounds(rounds)
            .with_record_mode(mode),
    )
    .expect("valid simulation")
    .run(StopCondition::max_rounds())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every adversary only ever activates genuine dynamic edges (the engine
    /// would filter others, so we assert the rejected counter stays zero) and
    /// executions are deterministic per seed.
    #[test]
    fn adversaries_activate_only_dynamic_edges(
        dual in arb_dual(),
        adversary_index in 0usize..7,
        seed in 0u64..200,
    ) {
        let a = run(&dual, make_adversary(adversary_index, dual.len()), seed, 15);
        prop_assert_eq!(a.metrics.rejected_link_edges, 0, "adversary {} proposed invalid edges", adversary_index);
        for record in a.history.records() {
            for edge in &record.active_dynamic_edges {
                let (u, v) = edge.endpoints();
                prop_assert!(dual.g_prime().has_edge(u, v));
                prop_assert!(!dual.g().has_edge(u, v));
            }
        }
        let b = run(&dual, make_adversary(adversary_index, dual.len()), seed, 15);
        prop_assert_eq!(a.history, b.history);
    }

    /// The declared capability classes are what the experiments assume.
    #[test]
    fn declared_classes_are_stable(n in 4usize..64) {
        prop_assert_eq!(IidLinks::new(0.3).class(), AdversaryClass::Oblivious);
        prop_assert_eq!(GilbertElliottLinks::new(0.1, 0.1).class(), AdversaryClass::Oblivious);
        prop_assert_eq!(ScheduleLinks::new(vec![]).class(), AdversaryClass::Oblivious);
        prop_assert_eq!(DecayAwareOblivious::for_network(n).class(), AdversaryClass::Oblivious);
        prop_assert_eq!(DenseSparseOnline::default().class(), AdversaryClass::OnlineAdaptive);
        prop_assert_eq!(GreedyCollisionOnline::new().class(), AdversaryClass::OnlineAdaptive);
        prop_assert_eq!(OmniscientOffline::new().class(), AdversaryClass::OfflineAdaptive);
    }

    /// Audit of the engine's history-free fast path: every adversary that
    /// declares itself oblivious runs without promotion under
    /// `RecordMode::None` (no history retained), every adaptive one is
    /// promoted to full recording — and the measured metrics are identical
    /// in both modes either way.
    #[test]
    fn oblivious_adversaries_engage_the_fast_path(
        dual in arb_dual(),
        adversary_index in 0usize..7,
        seed in 0u64..100,
    ) {
        let class = make_adversary(adversary_index, dual.len()).class();
        let full = run_mode(&dual, make_adversary(adversary_index, dual.len()), seed, 12, RecordMode::Full);
        let fast = run_mode(&dual, make_adversary(adversary_index, dual.len()), seed, 12, RecordMode::None);
        prop_assert_eq!(full.metrics, fast.metrics, "recording must not change behaviour");
        prop_assert_eq!(full.rounds_executed, fast.rounds_executed);
        if class == AdversaryClass::Oblivious {
            prop_assert_eq!(fast.record_mode, RecordMode::None, "fast path must engage");
            prop_assert!(fast.history.is_empty());
        } else {
            prop_assert_eq!(fast.record_mode, RecordMode::Full, "adaptive classes need history");
            prop_assert_eq!(&fast.history, &full.history);
        }
    }

    /// The bracelet attacker (oblivious, but constructed from topology
    /// metadata) also stays on the fast path.
    #[test]
    fn bracelet_attacker_engages_the_fast_path(k in 2usize..5, seed in 0u64..50) {
        let bracelet = topology::bracelet(k).unwrap();
        let dual = bracelet.dual().clone();
        let full = run_mode(&dual, Box::new(BraceletOblivious::new(&bracelet)), seed, 10, RecordMode::Full);
        let fast = run_mode(&dual, Box::new(BraceletOblivious::new(&bracelet)), seed, 10, RecordMode::None);
        prop_assert_eq!(full.metrics, fast.metrics);
        prop_assert_eq!(fast.record_mode, RecordMode::None);
        prop_assert!(fast.history.is_empty());
    }

    /// The bracelet attacker produces valid decisions on bracelets of any
    /// band length and its predictions cover exactly the band-length horizon.
    #[test]
    fn bracelet_attacker_is_well_formed(k in 2usize..6, seed in 0u64..100) {
        let bracelet = topology::bracelet(k).unwrap();
        let dual = bracelet.dual().clone();
        let outcome = run(&dual, Box::new(BraceletOblivious::new(&bracelet)), seed, 12);
        prop_assert_eq!(outcome.metrics.rejected_link_edges, 0);
        // In every recorded round the attacker either activated nothing or
        // every dynamic edge (it is an all-or-nothing strategy).
        let total = dual.dynamic_edges().len();
        for record in outcome.history.records() {
            let active = record.active_dynamic_edges.len();
            prop_assert!(active == 0 || active == total, "unexpected partial activation {active}/{total}");
        }
    }

    /// The omniscient blocker never blocks an unblockable delivery: when it
    /// activates edges, each added edge connects a listener to a transmitter.
    #[test]
    fn omniscient_blocker_edges_touch_a_transmitter(
        half in 3usize..16,
        seed in 0u64..100,
    ) {
        let dual = topology::dual_clique(2 * half).unwrap();
        let outcome = run(&dual, Box::new(OmniscientOffline::new()), seed, 12);
        for record in outcome.history.records() {
            for edge in &record.active_dynamic_edges {
                let (u, v) = edge.endpoints();
                let u_transmits = record.transmitters.contains(&u);
                let v_transmits = record.transmitters.contains(&v);
                prop_assert!(u_transmits || v_transmits, "blocking edge touches no transmitter");
                prop_assert!(!(u_transmits && v_transmits), "blocking edge between two transmitters is useless");
            }
        }
    }

    /// Dense/sparse decisions are all-or-nothing and consistent with the
    /// expected-transmitter threshold.
    #[test]
    fn dense_sparse_is_all_or_nothing(half in 3usize..20, seed in 0u64..100) {
        let dual = topology::dual_clique(2 * half).unwrap();
        let total = dual.dynamic_edges().len();
        let outcome = run(&dual, Box::new(DenseSparseOnline::default()), seed, 15);
        for record in outcome.history.records() {
            let active = record.active_dynamic_edges.len();
            prop_assert!(active == 0 || active == total);
        }
    }
}

/// A focused determinism check for the stateful Gilbert–Elliott chain: the
/// same seed replays the same burst pattern even across separate simulator
/// instances (regression guard for adversary RNG stream separation).
#[test]
fn gilbert_elliott_bursts_replay_identically() {
    let dual = topology::dual_clique(12).unwrap();
    let pattern = |seed: u64| {
        let outcome = run(
            &dual,
            Box::new(GilbertElliottLinks::new(0.2, 0.3)),
            seed,
            40,
        );
        outcome
            .history
            .records()
            .iter()
            .map(|r| r.active_dynamic_edges.len())
            .collect::<Vec<_>>()
    };
    assert_eq!(pattern(5), pattern(5));
    assert_ne!(
        pattern(5),
        pattern(6),
        "different seeds should give different burst patterns"
    );
}
