//! Rendering contention-over-time curves as result tables.
//!
//! A [`ContentionCurve`] holds per-round collision statistics streamed over
//! a cell's trials (see the scenario crate). Curves can span thousands of
//! rounds, so the tables bucket them: the round axis is split into at most
//! `buckets` equal windows and each cell shows the mean collisions per round
//! within its window. Multiple curves (e.g. one per algorithm) render side
//! by side over a shared round axis, which is how the contention experiments
//! (E2, E8) compare schedules.

use dradio_scenario::ContentionCurve;

use crate::table::Table;

/// The default bucket count for curve tables: compact enough for a terminal,
/// fine enough that the early contention spike and the tail both show.
pub const DEFAULT_BUCKETS: usize = 16;

/// Splits `rounds` into at most `buckets` near-equal windows, returned as
/// `start..end` ranges in order. Every round is covered exactly once; with
/// fewer rounds than buckets each round gets its own window.
pub fn bucket_ranges(rounds: usize, buckets: usize) -> Vec<std::ops::Range<usize>> {
    if rounds == 0 || buckets == 0 {
        return Vec::new();
    }
    let buckets = buckets.min(rounds);
    (0..buckets)
        .map(|b| (b * rounds / buckets)..((b + 1) * rounds / buckets))
        .collect()
}

/// Renders labelled contention curves as one table over a shared round axis.
///
/// The axis spans the longest curve; shorter curves read as zero past their
/// end (their trials had all finished — no contention). Returns an empty
/// table (headers only) when every curve is empty.
pub fn contention_table(
    title: impl Into<String>,
    curves: &[(String, &ContentionCurve)],
    buckets: usize,
) -> Table {
    let mut headers = vec!["rounds".to_string()];
    headers.extend(curves.iter().map(|(label, _)| label.clone()));
    let mut table = Table::new(title, headers);
    let rounds = curves.iter().map(|(_, c)| c.len()).max().unwrap_or(0);
    for range in bucket_ranges(rounds, buckets) {
        let mut row = vec![if range.len() <= 1 {
            format!("{}", range.start + 1)
        } else {
            format!("{}–{}", range.start + 1, range.end)
        }];
        for (_, curve) in curves {
            row.push(format!("{:.2}", curve.mean_over(range.clone())));
        }
        table.push_row(row);
    }
    table.with_caption(format!(
        "mean collisions per round (averaged within each round window, over \
         all trials; {} trials per curve)",
        curves
            .iter()
            .map(|(_, c)| c.trials().to_string())
            .collect::<Vec<_>>()
            .join("/"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(trials: &[&[usize]]) -> ContentionCurve {
        let mut c = ContentionCurve::new();
        for t in trials {
            c.push_trial(t);
        }
        c
    }

    #[test]
    fn bucket_ranges_cover_every_round_once() {
        for (rounds, buckets) in [(10usize, 4usize), (3, 8), (100, 16), (7, 7), (1, 1)] {
            let ranges = bucket_ranges(rounds, buckets);
            assert!(ranges.len() <= buckets);
            let covered: Vec<usize> = ranges.iter().flat_map(|r| r.clone()).collect();
            assert_eq!(
                covered,
                (0..rounds).collect::<Vec<_>>(),
                "{rounds}/{buckets}"
            );
        }
        assert!(bucket_ranges(0, 4).is_empty());
        assert!(bucket_ranges(4, 0).is_empty());
    }

    #[test]
    fn contention_table_buckets_and_labels() {
        let a = curve(&[&[4, 2, 0, 0], &[0, 2, 0, 0]]);
        let b = curve(&[&[1, 1]]);
        let table = contention_table(
            "contention",
            &[("fixed".into(), &a), ("permuted".into(), &b)],
            2,
        );
        assert_eq!(table.headers(), &["rounds", "fixed", "permuted"]);
        assert_eq!(table.rows().len(), 2);
        // First window: rounds 1–2 → a: (2 + 2)/2 = 2, b: 1.
        assert_eq!(table.rows()[0], vec!["1–2", "2.00", "1.00"]);
        // Second window: a decays to 0; b has no rounds there → 0.
        assert_eq!(table.rows()[1], vec!["3–4", "0.00", "0.00"]);
        assert!(table.caption().contains("2/1 trials"));
    }

    #[test]
    fn empty_curves_render_headers_only() {
        let empty = ContentionCurve::new();
        let table = contention_table("empty", &[("x".into(), &empty)], 8);
        assert!(table.rows().is_empty());
    }

    #[test]
    fn single_round_windows_label_plainly() {
        let a = curve(&[&[3, 1]]);
        let table = contention_table("tiny", &[("a".into(), &a)], 8);
        assert_eq!(table.rows()[0][0], "1");
        assert_eq!(table.rows()[1][0], "2");
    }
}
