//! E1 — static protocol model baselines (Figure 1, row 4).
//!
//! Global broadcast: `Θ(D log(n/D) + log² n)`; local broadcast:
//! `Θ(log n log Δ)`. These are the reference points every dual-graph result
//! is compared against.

use dradio_core::algorithms::{GlobalAlgorithm, LocalAlgorithm};
use dradio_graphs::properties;
use dradio_scenario::{AdversarySpec, ProblemSpec, Scenario, TopologySpec};

use crate::experiments::{fit_note, fmt1, Experiment, ExperimentConfig};
use crate::sweep::measure_rounds;
use crate::table::Table;

/// Experiment E1: static-model global and local broadcast baselines.
#[derive(Debug, Clone, Copy, Default)]
pub struct E1StaticBaselines;

impl Experiment for E1StaticBaselines {
    fn id(&self) -> &'static str {
        "E1"
    }

    fn title(&self) -> &'static str {
        "Static protocol model baselines (Figure 1, row 4)"
    }

    fn paper_claim(&self) -> &'static str {
        "Global broadcast takes Theta(D log(n/D) + log^2 n) rounds and local broadcast \
         Theta(log n log Delta) rounds when there are no dynamic links"
    }

    fn run(&self, cfg: &ExperimentConfig) -> Vec<Table> {
        vec![
            self.global_constant_diameter(cfg),
            self.global_diameter_sweep(cfg),
            self.local_degree_sweep(cfg),
        ]
    }
}

impl E1StaticBaselines {
    /// Global broadcast on static cliques (D = 1): the `log² n` term.
    fn global_constant_diameter(&self, cfg: &ExperimentConfig) -> Table {
        let sizes = cfg.pick(
            &[16usize, 32],
            &[32, 64, 128, 256],
            &[32, 64, 128, 256, 512, 1024],
        );
        let mut table = Table::new(
            "E1a: global broadcast on static cliques (D = 1)",
            vec![
                "n",
                "algorithm",
                "rounds (mean)",
                "median",
                "completion",
                "rounds / log^2 n",
            ],
        );
        let mut series: Vec<(f64, f64)> = Vec::new();
        for &n in &sizes {
            for algorithm in [GlobalAlgorithm::Bgi, GlobalAlgorithm::Permuted] {
                let scenario = Scenario::on(TopologySpec::Clique { n })
                    .algorithm(algorithm)
                    .adversary(AdversarySpec::StaticNone)
                    .problem(ProblemSpec::GlobalFrom(0))
                    .seed(cfg.seed)
                    .max_rounds(200 * n.max(16))
                    .build()
                    .expect("static clique scenario");
                let m = measure_rounds(&scenario, cfg.trials);
                let log_n = (n.max(2) as f64).log2();
                if algorithm == GlobalAlgorithm::Bgi {
                    series.push((n as f64, m.rounds.mean));
                }
                table.push_row(vec![
                    n.to_string(),
                    algorithm.name().to_string(),
                    fmt1(m.rounds.mean),
                    fmt1(m.rounds.median),
                    format!("{:.0}%", m.completion_rate * 100.0),
                    fmt1(m.rounds.mean / (log_n * log_n)),
                ]);
            }
        }
        table.with_caption(format!(
            "paper: O(log^2 n) on constant-diameter graphs; BGI series {}",
            fit_note(&series)
        ))
    }

    /// Global broadcast on lines of cliques: the `D log n` term.
    fn global_diameter_sweep(&self, cfg: &ExperimentConfig) -> Table {
        let clique_size = 8usize;
        let counts = cfg.pick(&[2usize, 4], &[2, 4, 8, 16], &[2, 4, 8, 16, 32, 64]);
        let mut table = Table::new(
            "E1b: global broadcast on static lines of cliques (diameter sweep)",
            vec![
                "cliques",
                "n",
                "D",
                "rounds (mean)",
                "completion",
                "rounds / (D log n)",
            ],
        );
        let mut series: Vec<(f64, f64)> = Vec::new();
        for &cliques in &counts {
            let scenario = Scenario::on(TopologySpec::LineOfCliques {
                cliques,
                clique_size,
            })
            .algorithm(GlobalAlgorithm::Bgi)
            .adversary(AdversarySpec::StaticNone)
            .problem(ProblemSpec::GlobalFrom(0))
            .seed(cfg.seed + 1)
            .max_rounds(400 * cliques.max(4))
            .build()
            .expect("line-of-cliques scenario");
            let n = scenario.dual().len();
            let d = properties::diameter(scenario.dual().g()).expect("connected");
            let m = measure_rounds(&scenario, cfg.trials);
            let log_n = (n.max(2) as f64).log2();
            series.push((d as f64, m.rounds.mean));
            table.push_row(vec![
                cliques.to_string(),
                n.to_string(),
                d.to_string(),
                fmt1(m.rounds.mean),
                format!("{:.0}%", m.completion_rate * 100.0),
                fmt1(m.rounds.mean / (d as f64 * log_n)),
            ]);
        }
        table.with_caption(format!(
            "paper: O(D log n + log^2 n); measured vs diameter {}",
            fit_note(&series)
        ))
    }

    /// Local broadcast on static stars: the `log n log Δ` scaling in Δ.
    fn local_degree_sweep(&self, cfg: &ExperimentConfig) -> Table {
        let degrees = cfg.pick(
            &[4usize, 8],
            &[4, 8, 16, 32, 64],
            &[4, 8, 16, 32, 64, 128, 256],
        );
        let mut table = Table::new(
            "E1c: local broadcast on static stars (degree sweep)",
            vec![
                "Delta",
                "n",
                "algorithm",
                "rounds (mean)",
                "completion",
                "rounds / (log n log Delta)",
            ],
        );
        let mut series: Vec<(f64, f64)> = Vec::new();
        for &delta in &degrees {
            let n = delta + 1;
            // A small broadcaster set (4 leaves) inside a degree-Delta
            // neighborhood: decay adapts to the actual contention (log Delta
            // levels), the uniform 1/Delta baseline pays Delta/|B| rounds.
            let broadcasters: Vec<usize> = (1..n.min(5)).collect();
            for algorithm in [LocalAlgorithm::StaticDecay, LocalAlgorithm::Uniform] {
                let scenario = Scenario::on(TopologySpec::Star { n })
                    .algorithm(algorithm)
                    .adversary(AdversarySpec::StaticNone)
                    .problem(ProblemSpec::Local {
                        broadcasters: broadcasters.clone(),
                    })
                    .seed(cfg.seed + 2)
                    .max_rounds(200 * delta.max(8))
                    .build()
                    .expect("star scenario");
                let m = measure_rounds(&scenario, cfg.trials);
                let log_n = (n.max(2) as f64).log2();
                let log_delta = (delta.max(2) as f64).log2();
                if algorithm == LocalAlgorithm::StaticDecay {
                    series.push((delta as f64, m.rounds.mean));
                }
                table.push_row(vec![
                    delta.to_string(),
                    n.to_string(),
                    algorithm.name().to_string(),
                    fmt1(m.rounds.mean),
                    format!("{:.0}%", m.completion_rate * 100.0),
                    fmt1(m.rounds.mean / (log_n * log_delta)),
                ]);
            }
        }
        table.with_caption(format!(
            "paper: Theta(log n log Delta) for decay; the uniform 1/Delta baseline needs \
             Theta((Delta/|B|) log n) rounds and falls behind as Delta grows; decay series vs Delta {}",
            fit_note(&series)
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_three_tables() {
        let tables = E1StaticBaselines.run(&ExperimentConfig::smoke());
        assert_eq!(tables.len(), 3);
        assert!(tables[0].title().contains("E1a"));
        assert!(tables[1].title().contains("E1b"));
        assert!(tables[2].title().contains("E1c"));
        // Every data point completed in the static model.
        for table in &tables {
            for row in table.rows() {
                assert!(row.iter().any(|cell| cell.contains("100%")), "row {row:?}");
            }
        }
    }

    #[test]
    fn decay_beats_uniform_on_large_stars() {
        // At the largest quick-scale degree (Delta = 64 with only 4
        // broadcasters) the decay baseline should need fewer rounds than the
        // uniform 1/Delta baseline (log Delta vs Delta/|B|).
        let cfg = ExperimentConfig {
            trials: 3,
            ..ExperimentConfig::quick()
        };
        let table = E1StaticBaselines.local_degree_sweep(&cfg);
        let rows = table.rows();
        let last_decay: f64 = rows[rows.len() - 2][3].parse().unwrap();
        let last_uniform: f64 = rows[rows.len() - 1][3].parse().unwrap();
        assert!(
            last_decay < last_uniform,
            "decay ({last_decay}) should beat uniform ({last_uniform}) at Delta = 64"
        );
    }
}
