//! E1 — static protocol model baselines (Figure 1, row 4).
//!
//! Global broadcast: `Θ(D log(n/D) + log² n)`; local broadcast:
//! `Θ(log n log Δ)`. These are the reference points every dual-graph result
//! is compared against.
//!
//! Each table is a thin [`CampaignSpec`] executed through the campaign
//! engine; rendering looks measurements up by scenario, so the table's row
//! order is independent of the campaign's expansion order.

use dradio_core::algorithms::{GlobalAlgorithm, LocalAlgorithm};
use dradio_graphs::properties;
use dradio_scenario::{AdversarySpec, ProblemSpec, ScenarioSpec, TopologySpec};

use crate::experiments::{fit_note, fmt1, Experiment, ExperimentConfig};
use crate::sweep::{
    measurement_for, run_campaign, CampaignError, CampaignSpec, RoundsRule, SweepGroup, TrialPolicy,
};
use crate::table::Table;

/// Experiment E1: static-model global and local broadcast baselines.
#[derive(Debug, Clone, Copy, Default)]
pub struct E1StaticBaselines;

impl Experiment for E1StaticBaselines {
    fn id(&self) -> &'static str {
        "E1"
    }

    fn title(&self) -> &'static str {
        "Static protocol model baselines (Figure 1, row 4)"
    }

    fn paper_claim(&self) -> &'static str {
        "Global broadcast takes Theta(D log(n/D) + log^2 n) rounds and local broadcast \
         Theta(log n log Delta) rounds when there are no dynamic links"
    }

    fn run(&self, cfg: &ExperimentConfig) -> Result<Vec<Table>, CampaignError> {
        Ok(vec![
            self.global_constant_diameter(cfg)?,
            self.global_diameter_sweep(cfg)?,
            self.local_degree_sweep(cfg)?,
        ])
    }
}

impl E1StaticBaselines {
    /// Global broadcast on static cliques (D = 1): the `log² n` term.
    fn global_constant_diameter(&self, cfg: &ExperimentConfig) -> Result<Table, CampaignError> {
        let sizes = cfg.pick(
            &[16usize, 32],
            &[32, 64, 128, 256],
            &[32, 64, 128, 256, 512, 1024],
        );
        let algorithms = [GlobalAlgorithm::Bgi, GlobalAlgorithm::Permuted];
        let campaign = CampaignSpec::named("e1a-static-cliques")
            .seed(cfg.seed)
            .trials(TrialPolicy::Fixed(cfg.trials))
            .group(
                SweepGroup::product(
                    sizes.iter().map(|&n| TopologySpec::Clique { n }).collect(),
                    algorithms.iter().map(|&a| a.into()).collect(),
                    vec![AdversarySpec::StaticNone],
                    vec![ProblemSpec::GlobalFrom(0)],
                )
                .rounds(RoundsRule::PerNode {
                    per_node: 200,
                    base: 0,
                    min_nodes: 16,
                }),
            );
        let store = run_campaign(&campaign)?;

        let mut table = Table::new(
            "E1a: global broadcast on static cliques (D = 1)",
            vec![
                "n",
                "algorithm",
                "rounds (mean)",
                "median",
                "completion",
                "rounds / log^2 n",
            ],
        );
        let mut series: Vec<(f64, f64)> = Vec::new();
        for &n in &sizes {
            for algorithm in algorithms {
                let scenario = ScenarioSpec {
                    topology: TopologySpec::Clique { n },
                    algorithm: algorithm.into(),
                    adversary: AdversarySpec::StaticNone,
                    problem: ProblemSpec::GlobalFrom(0),
                    seed: cfg.seed,
                    max_rounds: Some(200 * n.max(16)),
                    collision_detection: false,
                };
                let m = measurement_for(&store, &scenario)?;
                let log_n = (n.max(2) as f64).log2();
                if algorithm == GlobalAlgorithm::Bgi {
                    series.push((n as f64, m.rounds.mean));
                }
                table.push_row(vec![
                    n.to_string(),
                    algorithm.name().to_string(),
                    fmt1(m.rounds.mean),
                    fmt1(m.rounds.median),
                    format!("{:.0}%", m.completion_rate() * 100.0),
                    fmt1(m.rounds.mean / (log_n * log_n)),
                ]);
            }
        }
        Ok(table.with_caption(format!(
            "paper: O(log^2 n) on constant-diameter graphs; BGI series {}",
            fit_note(&series)
        )))
    }

    /// Global broadcast on lines of cliques: the `D log n` term.
    fn global_diameter_sweep(&self, cfg: &ExperimentConfig) -> Result<Table, CampaignError> {
        let clique_size = 8usize;
        let counts = cfg.pick(&[2usize, 4], &[2, 4, 8, 16], &[2, 4, 8, 16, 32, 64]);
        // The old per-point budget 400·max(cliques, 4) expressed per node:
        // n = 8·cliques, so 400·max(cliques, 4) = 50·max(n, 32).
        let campaign = CampaignSpec::named("e1b-line-of-cliques")
            .seed(cfg.seed + 1)
            .trials(TrialPolicy::Fixed(cfg.trials))
            .group(
                SweepGroup::product(
                    counts
                        .iter()
                        .map(|&cliques| TopologySpec::LineOfCliques {
                            cliques,
                            clique_size,
                        })
                        .collect(),
                    vec![GlobalAlgorithm::Bgi.into()],
                    vec![AdversarySpec::StaticNone],
                    vec![ProblemSpec::GlobalFrom(0)],
                )
                .rounds(RoundsRule::PerNode {
                    per_node: 50,
                    base: 0,
                    min_nodes: 32,
                }),
            );
        let store = run_campaign(&campaign)?;

        let mut table = Table::new(
            "E1b: global broadcast on static lines of cliques (diameter sweep)",
            vec![
                "cliques",
                "n",
                "D",
                "rounds (mean)",
                "completion",
                "rounds / (D log n)",
            ],
        );
        let mut series: Vec<(f64, f64)> = Vec::new();
        for &cliques in &counts {
            let topology = TopologySpec::LineOfCliques {
                cliques,
                clique_size,
            };
            let scenario = ScenarioSpec {
                topology: topology.clone(),
                algorithm: GlobalAlgorithm::Bgi.into(),
                adversary: AdversarySpec::StaticNone,
                problem: ProblemSpec::GlobalFrom(0),
                seed: cfg.seed + 1,
                max_rounds: Some(50 * (clique_size * cliques).max(32)),
                collision_detection: false,
            };
            let m = measurement_for(&store, &scenario)?;
            let built = topology.build()?;
            let n = built.len();
            // lint: allow(D4) -- experiment topologies are connected by construction
            let d = properties::diameter(built.dual.g()).expect("connected");
            let log_n = (n.max(2) as f64).log2();
            series.push((d as f64, m.rounds.mean));
            table.push_row(vec![
                cliques.to_string(),
                n.to_string(),
                d.to_string(),
                fmt1(m.rounds.mean),
                format!("{:.0}%", m.completion_rate() * 100.0),
                fmt1(m.rounds.mean / (d as f64 * log_n)),
            ]);
        }
        Ok(table.with_caption(format!(
            "paper: O(D log n + log^2 n); measured vs diameter {}",
            fit_note(&series)
        )))
    }

    /// Local broadcast on static stars: the `log n log Δ` scaling in Δ.
    fn local_degree_sweep(&self, cfg: &ExperimentConfig) -> Result<Table, CampaignError> {
        let degrees = cfg.pick(
            &[4usize, 8],
            &[4, 8, 16, 32, 64],
            &[4, 8, 16, 32, 64, 128, 256],
        );
        let algorithms = [LocalAlgorithm::StaticDecay, LocalAlgorithm::Uniform];
        // A small broadcaster set (4 leaves) inside a degree-Delta
        // neighborhood: decay adapts to the actual contention (log Delta
        // levels), the uniform 1/Delta baseline pays Delta/|B| rounds. The
        // broadcaster set depends on n, so each degree is its own group.
        let broadcasters = |n: usize| -> Vec<usize> { (1..n.min(5)).collect() };
        let mut campaign = CampaignSpec::named("e1c-static-stars")
            .seed(cfg.seed + 2)
            .trials(TrialPolicy::Fixed(cfg.trials));
        for &delta in &degrees {
            let n = delta + 1;
            campaign = campaign.group(
                SweepGroup::product(
                    vec![TopologySpec::Star { n }],
                    algorithms.iter().map(|&a| a.into()).collect(),
                    vec![AdversarySpec::StaticNone],
                    vec![ProblemSpec::Local {
                        broadcasters: broadcasters(n),
                    }],
                )
                .rounds(RoundsRule::Fixed(200 * delta.max(8))),
            );
        }
        let store = run_campaign(&campaign)?;

        let mut table = Table::new(
            "E1c: local broadcast on static stars (degree sweep)",
            vec![
                "Delta",
                "n",
                "algorithm",
                "rounds (mean)",
                "completion",
                "rounds / (log n log Delta)",
            ],
        );
        let mut series: Vec<(f64, f64)> = Vec::new();
        for &delta in &degrees {
            let n = delta + 1;
            for algorithm in algorithms {
                let scenario = ScenarioSpec {
                    topology: TopologySpec::Star { n },
                    algorithm: algorithm.into(),
                    adversary: AdversarySpec::StaticNone,
                    problem: ProblemSpec::Local {
                        broadcasters: broadcasters(n),
                    },
                    seed: cfg.seed + 2,
                    max_rounds: Some(200 * delta.max(8)),
                    collision_detection: false,
                };
                let m = measurement_for(&store, &scenario)?;
                let log_n = (n.max(2) as f64).log2();
                let log_delta = (delta.max(2) as f64).log2();
                if algorithm == LocalAlgorithm::StaticDecay {
                    series.push((delta as f64, m.rounds.mean));
                }
                table.push_row(vec![
                    delta.to_string(),
                    n.to_string(),
                    algorithm.name().to_string(),
                    fmt1(m.rounds.mean),
                    format!("{:.0}%", m.completion_rate() * 100.0),
                    fmt1(m.rounds.mean / (log_n * log_delta)),
                ]);
            }
        }
        Ok(table.with_caption(format!(
            "paper: Theta(log n log Delta) for decay; the uniform 1/Delta baseline needs \
             Theta((Delta/|B|) log n) rounds and falls behind as Delta grows; decay series vs Delta {}",
            fit_note(&series)
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_three_tables() {
        let tables = E1StaticBaselines.run(&ExperimentConfig::smoke()).unwrap();
        assert_eq!(tables.len(), 3);
        assert!(tables[0].title().contains("E1a"));
        assert!(tables[1].title().contains("E1b"));
        assert!(tables[2].title().contains("E1c"));
        // Every data point completed in the static model.
        for table in &tables {
            for row in table.rows() {
                assert!(row.iter().any(|cell| cell.contains("100%")), "row {row:?}");
            }
        }
    }

    #[test]
    fn decay_beats_uniform_on_large_stars() {
        // At the largest quick-scale degree (Delta = 64 with only 4
        // broadcasters) the decay baseline should need fewer rounds than the
        // uniform 1/Delta baseline (log Delta vs Delta/|B|).
        let cfg = ExperimentConfig {
            trials: 3,
            ..ExperimentConfig::quick()
        };
        let table = E1StaticBaselines.local_degree_sweep(&cfg).unwrap();
        let rows = table.rows();
        let last_decay: f64 = rows[rows.len() - 2][3].parse().unwrap();
        let last_uniform: f64 = rows[rows.len() - 1][3].parse().unwrap();
        assert!(
            last_decay < last_uniform,
            "decay ({last_decay}) should beat uniform ({last_uniform}) at Delta = 64"
        );
    }
}
