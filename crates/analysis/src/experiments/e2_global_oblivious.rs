//! E2 — global broadcast in the oblivious dual graph model (Figure 1, row 3,
//! global column; Theorem 4.1).
//!
//! The permuted-decay algorithm should stay polylogarithmic (for constant
//! diameter) under *every* oblivious adversary, including the schedule-aware
//! attack that hurts plain decay.

use dradio_core::algorithms::GlobalAlgorithm;
use dradio_scenario::{AdversarySpec, ProblemSpec, ScenarioSpec, TopologySpec};

use crate::experiments::{
    dual_clique_contention_table, fit_note, fmt1, ContentionSetup, Experiment, ExperimentConfig,
};
use crate::sweep::{
    measurement_for, run_campaign, CampaignError, CampaignSpec, RoundsRule, SweepGroup, TrialPolicy,
};
use crate::table::Table;

/// Experiment E2: permuted-decay global broadcast under oblivious adversaries.
#[derive(Debug, Clone, Copy, Default)]
pub struct E2GlobalOblivious;

impl Experiment for E2GlobalOblivious {
    fn id(&self) -> &'static str {
        "E2"
    }

    fn title(&self) -> &'static str {
        "Global broadcast, oblivious dual graph model (Theorem 4.1)"
    }

    fn paper_claim(&self) -> &'static str {
        "Permuted-decay global broadcast finishes in O(D log n + log^2 n) rounds against every \
         oblivious link process"
    }

    fn run(&self, cfg: &ExperimentConfig) -> Result<Vec<Table>, CampaignError> {
        Ok(vec![
            self.adversary_sweep(cfg)?,
            self.size_scaling(cfg)?,
            self.contention_over_time(cfg)?,
        ])
    }
}

impl E2GlobalOblivious {
    fn adversaries(n: usize) -> Vec<(&'static str, AdversarySpec)> {
        vec![
            ("static-none", AdversarySpec::StaticNone),
            ("static-all", AdversarySpec::StaticAll),
            ("iid(0.5)", AdversarySpec::Iid { p: 0.5 }),
            (
                "bursty(0.1,0.1)",
                AdversarySpec::GilbertElliott {
                    p_fail: 0.1,
                    p_recover: 0.1,
                },
            ),
            (
                // The attacker's model of the informed set: the source's
                // clique side (side A = nodes 0..n/2) informs itself
                // immediately, the far side stays silent until the bridge
                // carries the message across.
                "decay-aware",
                AdversarySpec::DecayAware {
                    levels: None,
                    assumed_transmitters: (0..n / 2).collect(),
                },
            ),
        ]
    }

    /// Fixed network size, every oblivious adversary, both decay variants.
    fn adversary_sweep(&self, cfg: &ExperimentConfig) -> Result<Table, CampaignError> {
        let n = *cfg
            .pick(&[32usize], &[128], &[256])
            .first()
            // lint: allow(D4) -- pick() returns one of three non-empty literal slices
            .expect("non-empty");
        let algorithms = [GlobalAlgorithm::Bgi, GlobalAlgorithm::Permuted];
        let campaign = CampaignSpec::named("e2a-adversary-sweep")
            .seed(cfg.seed + 10)
            .trials(TrialPolicy::Fixed(cfg.trials))
            .group(
                SweepGroup::product(
                    vec![TopologySpec::DualClique { n }],
                    algorithms.iter().map(|&a| a.into()).collect(),
                    Self::adversaries(n).into_iter().map(|(_, a)| a).collect(),
                    vec![ProblemSpec::GlobalFrom(0)],
                )
                .rounds(RoundsRule::Fixed(60 * n.max(16))),
            );
        let store = run_campaign(&campaign)?;

        let mut table = Table::new(
            format!("E2a: dual clique n = {n}, every oblivious adversary"),
            vec![
                "adversary",
                "algorithm",
                "rounds (mean)",
                "median",
                "completion",
            ],
        );
        for (adversary_name, adversary) in Self::adversaries(n) {
            for algorithm in algorithms {
                let scenario = ScenarioSpec {
                    topology: TopologySpec::DualClique { n },
                    algorithm: algorithm.into(),
                    adversary: adversary.clone(),
                    problem: ProblemSpec::GlobalFrom(0),
                    seed: cfg.seed + 10,
                    max_rounds: Some(60 * n.max(16)),
                    collision_detection: false,
                };
                let m = measurement_for(&store, &scenario)?;
                table.push_row(vec![
                    adversary_name.to_string(),
                    algorithm.name().to_string(),
                    fmt1(m.rounds.mean),
                    fmt1(m.rounds.median),
                    format!("{:.0}%", m.completion_rate() * 100.0),
                ]);
            }
        }
        Ok(table.with_caption(
            "paper: the permuted variant stays fast under every oblivious adversary; plain decay is \
             the vulnerable baseline (compare the decay-aware row)",
        ))
    }

    /// Scaling of the permuted algorithm with n on constant-diameter dual
    /// cliques under an i.i.d. oblivious adversary.
    fn size_scaling(&self, cfg: &ExperimentConfig) -> Result<Table, CampaignError> {
        let sizes = cfg.pick(
            &[16usize, 32],
            &[32, 64, 128, 256],
            &[64, 128, 256, 512, 1024],
        );
        let campaign = CampaignSpec::named("e2b-size-scaling")
            .seed(cfg.seed + 11)
            .trials(TrialPolicy::Fixed(cfg.trials))
            .group(
                SweepGroup::product(
                    sizes
                        .iter()
                        .map(|&n| TopologySpec::DualClique { n })
                        .collect(),
                    vec![GlobalAlgorithm::Permuted.into()],
                    vec![AdversarySpec::Iid { p: 0.5 }],
                    vec![ProblemSpec::GlobalFrom(0)],
                )
                .rounds(RoundsRule::PerNode {
                    per_node: 60,
                    base: 0,
                    min_nodes: 16,
                }),
            );
        let store = run_campaign(&campaign)?;

        let mut table = Table::new(
            "E2b: permuted-decay global broadcast scaling (dual clique, iid(0.5) adversary)",
            vec![
                "n",
                "rounds (mean)",
                "median",
                "completion",
                "rounds / log^2 n",
            ],
        );
        let mut series: Vec<(f64, f64)> = Vec::new();
        for &n in &sizes {
            let scenario = ScenarioSpec {
                topology: TopologySpec::DualClique { n },
                algorithm: GlobalAlgorithm::Permuted.into(),
                adversary: AdversarySpec::Iid { p: 0.5 },
                problem: ProblemSpec::GlobalFrom(0),
                seed: cfg.seed + 11,
                max_rounds: Some(60 * n.max(16)),
                collision_detection: false,
            };
            let m = measurement_for(&store, &scenario)?;
            let log_n = (n.max(2) as f64).log2();
            series.push((n as f64, m.rounds.mean));
            table.push_row(vec![
                n.to_string(),
                fmt1(m.rounds.mean),
                fmt1(m.rounds.median),
                format!("{:.0}%", m.completion_rate() * 100.0),
                fmt1(m.rounds.mean / (log_n * log_n)),
            ]);
        }
        Ok(table.with_caption(format!(
            "paper: O(D log n + log^2 n) with D = O(1), i.e. polylogarithmic; {}",
            fit_note(&series)
        )))
    }

    /// Contention over time on the dual clique under the i.i.d. adversary:
    /// how collision pressure decays as broadcast saturates, for both decay
    /// variants (streamed from `CollisionsOnly` recording; see
    /// [`dual_clique_contention_table`]).
    fn contention_over_time(&self, cfg: &ExperimentConfig) -> Result<Table, CampaignError> {
        let n = *cfg
            .pick(&[32usize], &[128], &[256])
            .first()
            // lint: allow(D4) -- pick() returns one of three non-empty literal slices
            .expect("non-empty");
        dual_clique_contention_table(
            format!("E2c: contention over time (dual clique n = {n}, iid(0.5) adversary)"),
            ContentionSetup {
                campaign_name: "e2c-contention",
                seed: cfg.seed + 12,
                n,
                adversary: AdversarySpec::Iid { p: 0.5 },
                max_rounds: 60 * n.max(16),
                trials: (cfg.trials * 4).max(4),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_three_tables() {
        let tables = E2GlobalOblivious.run(&ExperimentConfig::smoke()).unwrap();
        assert_eq!(tables.len(), 3);
        assert!(tables[0].title().contains("E2a"));
        assert!(tables[1].title().contains("E2b"));
        assert!(tables[2].title().contains("E2c"));
    }

    #[test]
    fn contention_curve_is_nontrivial_at_smoke_scale() {
        let table = E2GlobalOblivious
            .contention_over_time(&ExperimentConfig::smoke())
            .unwrap();
        assert!(table.rows().len() > 1, "more than one round window");
        // Broadcast on a dual clique collides early on: at least one window
        // of one algorithm shows nonzero mean contention.
        let nonzero = table
            .rows()
            .iter()
            .flat_map(|row| &row[1..])
            .any(|cell| cell.parse::<f64>().unwrap() > 0.0);
        assert!(nonzero, "the streamed curve should not be identically zero");
    }

    #[test]
    fn permuted_completes_under_every_adversary_at_smoke_scale() {
        let table = E2GlobalOblivious
            .adversary_sweep(&ExperimentConfig::smoke())
            .unwrap();
        for row in table.rows() {
            if row[1] == "permuted-decay" {
                assert_eq!(
                    row[4], "100%",
                    "permuted-decay must complete under {}",
                    row[0]
                );
            }
        }
    }
}
