//! E3 — local broadcast lower bound in the oblivious model on general graphs
//! (Figure 1, row 3, local column; Theorem 4.3).
//!
//! In the bracelet network an oblivious adversary that pre-simulates the
//! bands' isolated broadcast functions can starve the clasp receiver for
//! `Ω(√n / log n)` rounds against any *uncoordinated* local broadcast
//! algorithm. The experiment measures the completion time of the static-model
//! decay and uniform local broadcast algorithms with and without the attack,
//! reporting completion rates with ~95% Wilson score intervals; trials are
//! allocated adaptively against the Wilson width ([`StopRule::CompletionCi`])
//! because the claim is about *completion probability*, not mean cost.
//!
//! [`StopRule::CompletionCi`]: crate::sweep::StopRule::CompletionCi

use dradio_core::algorithms::LocalAlgorithm;
use dradio_scenario::{AdversarySpec, ProblemSpec, ScenarioSpec, TopologySpec};

use crate::experiments::{fit_note, fmt1, Experiment, ExperimentConfig};
use crate::sweep::{
    measurement_for, run_campaign, CampaignError, CampaignSpec, RoundsRule, SweepGroup,
};
use crate::table::Table;

/// Experiment E3: the bracelet-network oblivious lower bound.
#[derive(Debug, Clone, Copy, Default)]
pub struct E3BraceletLowerBound;

impl Experiment for E3BraceletLowerBound {
    fn id(&self) -> &'static str {
        "E3"
    }

    fn title(&self) -> &'static str {
        "Local broadcast lower bound in the bracelet network (Theorem 4.3)"
    }

    fn paper_claim(&self) -> &'static str {
        "In general (non-geographic) dual graphs an oblivious adversary forces \
         Omega(sqrt(n)/log n) rounds for local broadcast"
    }

    fn run(&self, cfg: &ExperimentConfig) -> Result<Vec<Table>, CampaignError> {
        let band_lengths = cfg.pick(&[3usize, 4], &[3, 4, 5, 6, 8], &[4, 6, 8, 10, 12, 16]);
        let algorithms = [LocalAlgorithm::StaticDecay, LocalAlgorithm::Uniform];
        let adversaries = [AdversarySpec::StaticNone, AdversarySpec::BraceletAttack];
        let campaign = CampaignSpec::named("e3-bracelet")
            .seed(cfg.seed + 20)
            .trials(cfg.completion_policy())
            .group(
                SweepGroup::product(
                    band_lengths
                        .iter()
                        .map(|&k| TopologySpec::Bracelet { k })
                        .collect(),
                    algorithms.iter().map(|&a| a.into()).collect(),
                    adversaries.to_vec(),
                    vec![ProblemSpec::LocalHeadsA],
                )
                // The old per-point budget 300 + 40·n, affine in n = 2k².
                .rounds(RoundsRule::PerNode {
                    per_node: 40,
                    base: 300,
                    min_nodes: 0,
                }),
            );
        let store = run_campaign(&campaign)?;

        let mut table = Table::new(
            "E3: local broadcast in the bracelet network (broadcasters = heads of side A)",
            vec![
                "k (band)",
                "n = 2k^2",
                "algorithm",
                "adversary",
                "rounds (mean)",
                "completion (wilson 95%)",
                "trials",
                "rounds / (sqrt(n)/log n)",
            ],
        );
        let mut attacked_series: Vec<(f64, f64)> = Vec::new();
        for &k in &band_lengths {
            let n = 2 * k * k;
            let sqrt_over_log = (n as f64).sqrt() / (n.max(2) as f64).log2();
            for algorithm in algorithms {
                for adversary in &adversaries {
                    let attacked = adversary == &AdversarySpec::BraceletAttack;
                    let scenario = ScenarioSpec {
                        topology: TopologySpec::Bracelet { k },
                        algorithm: algorithm.into(),
                        adversary: adversary.clone(),
                        problem: ProblemSpec::LocalHeadsA,
                        seed: cfg.seed + 20,
                        max_rounds: Some(300 + 40 * n),
                        collision_detection: false,
                    };
                    let m = measurement_for(&store, &scenario)?;
                    if attacked && algorithm == LocalAlgorithm::StaticDecay {
                        attacked_series.push((n as f64, m.rounds.mean));
                    }
                    table.push_row(vec![
                        k.to_string(),
                        n.to_string(),
                        algorithm.name().to_string(),
                        adversary.label(),
                        fmt1(m.rounds.mean),
                        m.completion.to_string(),
                        m.rounds.count.to_string(),
                        fmt1(m.rounds.mean / sqrt_over_log),
                    ]);
                }
            }
        }
        Ok(vec![table.with_caption(format!(
            "context: Theorem 4.3 is an existential bound — it holds because the adversary does not \
             know where the clasp sits, which a direct simulation (with a fixed, known clasp) cannot \
             exhibit; the table checks the attack never helps the algorithm and that the attacker's \
             pre-computed dense/sparse labels remain valid link-process behaviour, while the \
             quantitative Omega(sqrt(n)/log n) argument itself is exercised through the hitting-game \
             reduction of E7; attacked static-decay {}",
            fit_note(&attacked_series)
        ))])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_rows_for_every_combination() {
        let tables = E3BraceletLowerBound
            .run(&ExperimentConfig::smoke())
            .unwrap();
        assert_eq!(tables.len(), 1);
        // 2 band lengths x 2 algorithms x 2 adversaries = 8 rows.
        assert_eq!(tables[0].rows().len(), 8);
    }

    #[test]
    fn attack_is_no_faster_than_benign_links() {
        let tables = E3BraceletLowerBound
            .run(&ExperimentConfig::smoke())
            .unwrap();
        let rows = tables[0].rows();
        // Rows come in (benign, attacked) pairs per algorithm; compare means.
        for pair in rows.chunks(2) {
            let benign: f64 = pair[0][4].parse().unwrap();
            let attacked: f64 = pair[1][4].parse().unwrap();
            assert!(
                attacked >= benign * 0.8,
                "attacked run ({attacked}) should not be meaningfully faster than benign ({benign})"
            );
        }
    }
}
