//! E4 — geographic local broadcast upper bound in the oblivious model
//! (Figure 1, row 3, local column; Theorem 4.6).
//!
//! On geographic dual graphs the seed-coordinated algorithm solves local
//! broadcast in `O(log² n log Δ)` rounds under any oblivious adversary — only
//! a log factor slower than the static optimum, and exponentially faster than
//! the general-graph lower bound of E3.

use dradio_core::algorithms::LocalAlgorithm;
use dradio_scenario::{AdversarySpec, ProblemSpec, ScenarioSpec, TopologySpec};

use crate::experiments::{fit_note, fmt1, Experiment, ExperimentConfig};
use crate::sweep::{
    measurement_for, run_campaign, CampaignError, CampaignSpec, RoundsRule, SweepGroup, TrialPolicy,
};
use crate::table::Table;

/// Experiment E4: geographic local broadcast under oblivious adversaries.
#[derive(Debug, Clone, Copy, Default)]
pub struct E4GeoLocal;

impl Experiment for E4GeoLocal {
    fn id(&self) -> &'static str {
        "E4"
    }

    fn title(&self) -> &'static str {
        "Geographic local broadcast in the oblivious model (Theorem 4.6)"
    }

    fn paper_claim(&self) -> &'static str {
        "On geographic dual graphs the seeded algorithm solves local broadcast in \
         O(log^2 n log Delta) rounds against any oblivious adversary"
    }

    fn run(&self, cfg: &ExperimentConfig) -> Result<Vec<Table>, CampaignError> {
        Ok(vec![
            self.size_scaling(cfg)?,
            self.adversary_comparison(cfg)?,
        ])
    }
}

impl E4GeoLocal {
    /// A connected geographic deployment with roughly constant density (so
    /// `Δ` stays bounded while `n` grows), as a pure topology spec. The
    /// spec's own seed pins the deployment: every cell that names it runs on
    /// the identical network.
    fn deployment(n: usize, seed: u64) -> TopologySpec {
        let side = (n as f64 / 8.0).sqrt().max(1.5);
        TopologySpec::RandomGeometric {
            n,
            side,
            r: 1.5,
            seed,
        }
    }

    /// Scaling with n at roughly constant density, iid adversary.
    fn size_scaling(&self, cfg: &ExperimentConfig) -> Result<Table, CampaignError> {
        let sizes = cfg.pick(
            &[40usize, 60],
            &[60, 100, 160, 240],
            &[80, 160, 320, 480, 640],
        );
        let algorithms = [
            LocalAlgorithm::Geo,
            LocalAlgorithm::StaticDecay,
            LocalAlgorithm::RoundRobin,
        ];
        let problem = |i: usize, n: usize| ProblemSpec::LocalRandom {
            count: (n / 4).max(1),
            seed: cfg.seed + 100 + i as u64,
        };
        // The problem and deployment vary per size, so each size is a group.
        let mut campaign = CampaignSpec::named("e4a-geo-scaling")
            .seed(cfg.seed + 30)
            .trials(TrialPolicy::Fixed(cfg.trials));
        for (i, &n) in sizes.iter().enumerate() {
            campaign = campaign.group(
                SweepGroup::product(
                    vec![Self::deployment(n, cfg.seed + i as u64)],
                    algorithms.iter().map(|&a| a.into()).collect(),
                    vec![AdversarySpec::Iid { p: 0.5 }],
                    vec![problem(i, n)],
                )
                .rounds(RoundsRule::Fixed(40 * n + 4_000)),
            );
        }
        let store = run_campaign(&campaign)?;

        let mut table = Table::new(
            "E4a: geographic local broadcast scaling (iid(0.5) adversary, ~constant density)",
            vec![
                "n",
                "Delta",
                "algorithm",
                "rounds (mean)",
                "completion",
                "rounds / (log^2 n log Delta)",
            ],
        );
        let mut geo_series: Vec<(f64, f64)> = Vec::new();
        for (i, &n) in sizes.iter().enumerate() {
            let deployment = Self::deployment(n, cfg.seed + i as u64);
            // Rebuild the (seed-pinned) deployment once per size for the
            // degree column.
            let delta = deployment.build()?.max_degree();
            for algorithm in algorithms {
                let scenario = ScenarioSpec {
                    topology: deployment.clone(),
                    algorithm: algorithm.into(),
                    adversary: AdversarySpec::Iid { p: 0.5 },
                    problem: problem(i, n),
                    seed: cfg.seed + 30,
                    max_rounds: Some(40 * n + 4_000),
                    collision_detection: false,
                };
                let m = measurement_for(&store, &scenario)?;
                let log_n = (n.max(2) as f64).log2();
                let log_delta = (delta.max(2) as f64).log2();
                if algorithm == LocalAlgorithm::Geo {
                    geo_series.push((n as f64, m.rounds.mean));
                }
                table.push_row(vec![
                    n.to_string(),
                    delta.to_string(),
                    algorithm.name().to_string(),
                    fmt1(m.rounds.mean),
                    format!("{:.0}%", m.completion_rate() * 100.0),
                    fmt1(m.rounds.mean / (log_n * log_n * log_delta)),
                ]);
            }
        }
        Ok(table.with_caption(format!(
            "paper: O(log^2 n log Delta), i.e. polylogarithmic growth vs the round-robin O(n); geo \
             series {}",
            fit_note(&geo_series)
        )))
    }

    /// Fixed deployment, several oblivious adversaries.
    fn adversary_comparison(&self, cfg: &ExperimentConfig) -> Result<Table, CampaignError> {
        let n = *cfg
            .pick(&[50usize], &[120], &[240])
            .first()
            // lint: allow(D4) -- pick() returns one of three non-empty literal slices
            .expect("non-empty");
        let problem = ProblemSpec::LocalRandom {
            count: (n / 4).max(1),
            seed: cfg.seed + 77,
        };
        let adversaries = [
            ("static-none", AdversarySpec::StaticNone),
            ("static-all", AdversarySpec::StaticAll),
            ("iid(0.5)", AdversarySpec::Iid { p: 0.5 }),
            (
                "bursty(0.05,0.05)",
                AdversarySpec::GilbertElliott {
                    p_fail: 0.05,
                    p_recover: 0.05,
                },
            ),
        ];
        let algorithms = [LocalAlgorithm::Geo, LocalAlgorithm::StaticDecay];
        // One seed-pinned deployment for the whole table (every cell runs on
        // the identical network).
        let deployment = Self::deployment(n, cfg.seed + 7);
        let campaign = CampaignSpec::named("e4b-geo-adversaries")
            .seed(cfg.seed + 31)
            .trials(TrialPolicy::Fixed(cfg.trials))
            .group(
                SweepGroup::product(
                    vec![deployment.clone()],
                    algorithms.iter().map(|&a| a.into()).collect(),
                    adversaries.iter().map(|(_, a)| a.clone()).collect(),
                    vec![problem.clone()],
                )
                .rounds(RoundsRule::Fixed(40 * n + 4_000)),
            );
        let store = run_campaign(&campaign)?;

        let delta = deployment.build()?.max_degree();
        let mut table = Table::new(
            format!("E4b: geographic local broadcast, n = {n}, Delta = {delta}, adversary sweep"),
            vec!["adversary", "algorithm", "rounds (mean)", "completion"],
        );
        for (adversary_name, adversary) in &adversaries {
            for algorithm in algorithms {
                let scenario = ScenarioSpec {
                    topology: deployment.clone(),
                    algorithm: algorithm.into(),
                    adversary: adversary.clone(),
                    problem: problem.clone(),
                    seed: cfg.seed + 31,
                    max_rounds: Some(40 * n + 4_000),
                    collision_detection: false,
                };
                let m = measurement_for(&store, &scenario)?;
                table.push_row(vec![
                    adversary_name.to_string(),
                    algorithm.name().to_string(),
                    fmt1(m.rounds.mean),
                    format!("{:.0}%", m.completion_rate() * 100.0),
                ]);
            }
        }
        Ok(table.with_caption(
            "paper: the geographic algorithm tolerates every oblivious adversary; the grey-zone \
             links only help or hinder by constant factors",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_two_tables() {
        let tables = E4GeoLocal.run(&ExperimentConfig::smoke()).unwrap();
        assert_eq!(tables.len(), 2);
        assert!(tables[0].title().contains("E4a"));
        assert!(tables[1].title().contains("E4b"));
    }

    #[test]
    fn every_smoke_row_completes() {
        let tables = E4GeoLocal.run(&ExperimentConfig::smoke()).unwrap();
        for table in &tables {
            for row in table.rows() {
                assert!(
                    row.iter().any(|c| c == "100%"),
                    "row {row:?} did not complete"
                );
            }
        }
    }
}
