//! E5 — the online adaptive lower bound (Figure 1, row 2; Theorem 3.1).
//!
//! On the constant-diameter dual clique the dense/sparse online adaptive
//! attacker forces `Ω(n / log n)` rounds for both global and local broadcast:
//! progress across the clique boundary requires either a globally lone
//! transmitter (rare once many nodes are informed) or a bridge-endpoint
//! transmission in a sparse round (a `1/n`-style event).

use dradio_adversary::DenseSparseOnline;
use dradio_core::algorithms::{GlobalAlgorithm, LocalAlgorithm};
use dradio_core::problem::{GlobalBroadcastProblem, LocalBroadcastProblem};
use dradio_graphs::{topology, NodeId};
use dradio_sim::StaticLinks;

use crate::experiments::{fit_note, fmt1, Experiment, ExperimentConfig};
use crate::sweep::{measure_rounds, MeasureSpec};
use crate::table::Table;

/// Experiment E5: the dense/sparse online adaptive attacker on the dual
/// clique.
#[derive(Debug, Clone, Copy, Default)]
pub struct E5OnlineAdaptive;

impl Experiment for E5OnlineAdaptive {
    fn id(&self) -> &'static str {
        "E5"
    }

    fn title(&self) -> &'static str {
        "Online adaptive lower bound on the dual clique (Theorem 3.1)"
    }

    fn paper_claim(&self) -> &'static str {
        "With an online adaptive link process, global and local broadcast require \
         Omega(n / log n) rounds even on constant-diameter graphs"
    }

    fn run(&self, cfg: &ExperimentConfig) -> Vec<Table> {
        vec![self.global_scaling(cfg), self.local_scaling(cfg)]
    }
}

impl E5OnlineAdaptive {
    fn global_scaling(&self, cfg: &ExperimentConfig) -> Table {
        let sizes = cfg.pick(&[16usize, 32], &[16, 32, 64, 128], &[32, 64, 128, 256, 512]);
        let mut table = Table::new(
            "E5a: global broadcast on the dual clique, online adaptive adversary",
            vec![
                "n",
                "algorithm",
                "attacked rounds",
                "benign rounds",
                "slowdown",
                "attacked / (n/log n)",
                "completion",
            ],
        );
        let mut attacked_series: Vec<(f64, f64)> = Vec::new();
        for &n in &sizes {
            let dual = topology::dual_clique(n).expect("even n");
            let problem = GlobalBroadcastProblem::new(NodeId::new(0));
            for algorithm in [GlobalAlgorithm::Bgi, GlobalAlgorithm::Permuted] {
                let attacked = measure_rounds(&MeasureSpec {
                    dual: &dual,
                    factory: algorithm.factory(n, dual.max_degree()),
                    assignment: problem.assignment(n),
                    link: Box::new(|| Box::new(DenseSparseOnline::default())),
                    stop: problem.stop_condition(),
                    trials: cfg.trials,
                    max_rounds: 200 * n + 2_000,
                    base_seed: cfg.seed + 40,
                });
                let benign = measure_rounds(&MeasureSpec {
                    dual: &dual,
                    factory: algorithm.factory(n, dual.max_degree()),
                    assignment: problem.assignment(n),
                    link: Box::new(|| Box::new(StaticLinks::none())),
                    stop: problem.stop_condition(),
                    trials: cfg.trials,
                    max_rounds: 200 * n + 2_000,
                    base_seed: cfg.seed + 41,
                });
                let n_over_log = n as f64 / (n.max(2) as f64).log2();
                if algorithm == GlobalAlgorithm::Permuted {
                    attacked_series.push((n as f64, attacked.rounds.mean));
                }
                table.push_row(vec![
                    n.to_string(),
                    algorithm.name().to_string(),
                    fmt1(attacked.rounds.mean),
                    fmt1(benign.rounds.mean),
                    fmt1(attacked.rounds.mean / benign.rounds.mean.max(1.0)),
                    fmt1(attacked.rounds.mean / n_over_log),
                    format!("{:.0}%", attacked.completion_rate * 100.0),
                ]);
            }
        }
        table.with_caption(format!(
            "paper: attacked cost grows like Omega(n/log n) while the benign cost stays \
             polylogarithmic; permuted-decay attacked series {}",
            fit_note(&attacked_series)
        ))
    }

    fn local_scaling(&self, cfg: &ExperimentConfig) -> Table {
        let sizes = cfg.pick(&[16usize, 32], &[16, 32, 64, 128], &[32, 64, 128, 256, 512]);
        let mut table = Table::new(
            "E5b: local broadcast on the dual clique (B = side A), online adaptive adversary",
            vec!["n", "algorithm", "attacked rounds", "benign rounds", "attacked / (n/log n)", "completion"],
        );
        let mut attacked_series: Vec<(f64, f64)> = Vec::new();
        for &n in &sizes {
            let dc = topology::dual_clique_with_bridge(n, 0, n / 2).expect("even n");
            let dual = dc.dual().clone();
            let broadcasters = dc.side_a().to_vec();
            let problem = LocalBroadcastProblem::new(broadcasters);
            for algorithm in [LocalAlgorithm::StaticDecay, LocalAlgorithm::Uniform] {
                let attacked = measure_rounds(&MeasureSpec {
                    dual: &dual,
                    factory: algorithm.factory(n, dual.max_degree()),
                    assignment: problem.assignment(n),
                    link: Box::new(|| Box::new(DenseSparseOnline::default())),
                    stop: problem.stop_condition(&dual),
                    trials: cfg.trials,
                    max_rounds: 200 * n + 2_000,
                    base_seed: cfg.seed + 42,
                });
                let benign = measure_rounds(&MeasureSpec {
                    dual: &dual,
                    factory: algorithm.factory(n, dual.max_degree()),
                    assignment: problem.assignment(n),
                    link: Box::new(|| Box::new(StaticLinks::none())),
                    stop: problem.stop_condition(&dual),
                    trials: cfg.trials,
                    max_rounds: 200 * n + 2_000,
                    base_seed: cfg.seed + 43,
                });
                let n_over_log = n as f64 / (n.max(2) as f64).log2();
                if algorithm == LocalAlgorithm::StaticDecay {
                    attacked_series.push((n as f64, attacked.rounds.mean));
                }
                table.push_row(vec![
                    n.to_string(),
                    algorithm.name().to_string(),
                    fmt1(attacked.rounds.mean),
                    fmt1(benign.rounds.mean),
                    fmt1(attacked.rounds.mean / n_over_log),
                    format!("{:.0}%", attacked.completion_rate * 100.0),
                ]);
            }
        }
        table.with_caption(format!(
            "paper: same Omega(n/log n) threshold for local broadcast; static-decay attacked series {}",
            fit_note(&attacked_series)
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_two_tables() {
        let tables = E5OnlineAdaptive.run(&ExperimentConfig::smoke());
        assert_eq!(tables.len(), 2);
    }

    #[test]
    fn attack_slows_down_the_largest_smoke_size() {
        let table = E5OnlineAdaptive.global_scaling(&ExperimentConfig::smoke());
        // Compare the attacked and benign columns on the last row (largest n,
        // permuted algorithm).
        let last = table.rows().last().unwrap().clone();
        let attacked: f64 = last[2].parse().unwrap();
        let benign: f64 = last[3].parse().unwrap();
        assert!(
            attacked >= benign,
            "online adaptive attack should not speed broadcast up (attacked {attacked}, benign {benign})"
        );
    }
}
