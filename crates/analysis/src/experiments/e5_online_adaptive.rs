//! E5 — the online adaptive lower bound (Figure 1, row 2; Theorem 3.1).
//!
//! On the constant-diameter dual clique the dense/sparse online adaptive
//! attacker forces `Ω(n / log n)` rounds for both global and local broadcast:
//! progress across the clique boundary requires either a globally lone
//! transmitter (rare once many nodes are informed) or a bridge-endpoint
//! transmission in a sparse round (a `1/n`-style event).
//!
//! Being a lower-bound experiment, completion rates carry the claim: they
//! are reported with ~95% Wilson score intervals, and trials are allocated
//! adaptively against the Wilson width
//! ([`StopRule::CompletionCi`](crate::sweep::StopRule::CompletionCi)) rather
//! than against mean-cost precision.

use dradio_core::algorithms::{GlobalAlgorithm, LocalAlgorithm};
use dradio_scenario::{AdversarySpec, ProblemSpec, ScenarioSpec, TopologySpec};

use crate::experiments::{fit_note, fmt1, Experiment, ExperimentConfig};
use crate::sweep::{
    measurement_for, run_campaign, CampaignError, CampaignSpec, RoundsRule, SweepGroup,
};
use crate::table::Table;

/// Experiment E5: the dense/sparse online adaptive attacker on the dual
/// clique.
#[derive(Debug, Clone, Copy, Default)]
pub struct E5OnlineAdaptive;

impl Experiment for E5OnlineAdaptive {
    fn id(&self) -> &'static str {
        "E5"
    }

    fn title(&self) -> &'static str {
        "Online adaptive lower bound on the dual clique (Theorem 3.1)"
    }

    fn paper_claim(&self) -> &'static str {
        "With an online adaptive link process, global and local broadcast require \
         Omega(n / log n) rounds even on constant-diameter graphs"
    }

    fn run(&self, cfg: &ExperimentConfig) -> Result<Vec<Table>, CampaignError> {
        Ok(vec![self.global_scaling(cfg)?, self.local_scaling(cfg)?])
    }
}

fn attacked() -> AdversarySpec {
    AdversarySpec::DenseSparse {
        density_factor: None,
    }
}

impl E5OnlineAdaptive {
    fn global_scaling(&self, cfg: &ExperimentConfig) -> Result<Table, CampaignError> {
        let sizes = cfg.pick(&[16usize, 32], &[16, 32, 64, 128], &[32, 64, 128, 256, 512]);
        let algorithms = [GlobalAlgorithm::Bgi, GlobalAlgorithm::Permuted];
        let topologies: Vec<TopologySpec> = sizes
            .iter()
            .map(|&n| TopologySpec::DualClique { n })
            .collect();
        let algorithm_axis: Vec<_> = algorithms.iter().map(|&a| a.into()).collect();
        // Attacked and benign runs use distinct seeds (as the original
        // experiment did), so they are separate groups of one campaign.
        let rounds = RoundsRule::PerNode {
            per_node: 200,
            base: 2_000,
            min_nodes: 0,
        };
        let campaign = CampaignSpec::named("e5a-online-global")
            .trials(cfg.completion_policy())
            .group(
                SweepGroup::product(
                    topologies.clone(),
                    algorithm_axis.clone(),
                    vec![attacked()],
                    vec![ProblemSpec::GlobalFrom(0)],
                )
                .seed(cfg.seed + 40)
                .rounds(rounds),
            )
            .group(
                SweepGroup::product(
                    topologies,
                    algorithm_axis,
                    vec![AdversarySpec::StaticNone],
                    vec![ProblemSpec::GlobalFrom(0)],
                )
                .seed(cfg.seed + 41)
                .rounds(rounds),
            );
        let store = run_campaign(&campaign)?;

        let mut table = Table::new(
            "E5a: global broadcast on the dual clique, online adaptive adversary",
            vec![
                "n",
                "algorithm",
                "attacked rounds",
                "benign rounds",
                "slowdown",
                "attacked / (n/log n)",
                "completion (wilson 95%)",
            ],
        );
        let mut attacked_series: Vec<(f64, f64)> = Vec::new();
        for &n in &sizes {
            for algorithm in algorithms {
                let scenario = |adversary: AdversarySpec, seed: u64| ScenarioSpec {
                    topology: TopologySpec::DualClique { n },
                    algorithm: algorithm.into(),
                    adversary,
                    problem: ProblemSpec::GlobalFrom(0),
                    seed,
                    max_rounds: Some(200 * n + 2_000),
                    collision_detection: false,
                };
                let attacked_m = measurement_for(&store, &scenario(attacked(), cfg.seed + 40))?;
                let benign =
                    measurement_for(&store, &scenario(AdversarySpec::StaticNone, cfg.seed + 41))?;
                let n_over_log = n as f64 / (n.max(2) as f64).log2();
                if algorithm == GlobalAlgorithm::Permuted {
                    attacked_series.push((n as f64, attacked_m.rounds.mean));
                }
                table.push_row(vec![
                    n.to_string(),
                    algorithm.name().to_string(),
                    fmt1(attacked_m.rounds.mean),
                    fmt1(benign.rounds.mean),
                    fmt1(attacked_m.rounds.mean / benign.rounds.mean.max(1.0)),
                    fmt1(attacked_m.rounds.mean / n_over_log),
                    attacked_m.completion.to_string(),
                ]);
            }
        }
        Ok(table.with_caption(format!(
            "paper: attacked cost grows like Omega(n/log n) while the benign cost stays \
             polylogarithmic; permuted-decay attacked series {}",
            fit_note(&attacked_series)
        )))
    }

    fn local_scaling(&self, cfg: &ExperimentConfig) -> Result<Table, CampaignError> {
        let sizes = cfg.pick(&[16usize, 32], &[16, 32, 64, 128], &[32, 64, 128, 256, 512]);
        let algorithms = [LocalAlgorithm::StaticDecay, LocalAlgorithm::Uniform];
        let topologies: Vec<TopologySpec> = sizes
            .iter()
            .map(|&n| TopologySpec::DualCliqueWithBridge {
                n,
                t_a: 0,
                t_b: n / 2,
            })
            .collect();
        let algorithm_axis: Vec<_> = algorithms.iter().map(|&a| a.into()).collect();
        let rounds = RoundsRule::PerNode {
            per_node: 200,
            base: 2_000,
            min_nodes: 0,
        };
        let campaign = CampaignSpec::named("e5b-online-local")
            .trials(cfg.completion_policy())
            .group(
                SweepGroup::product(
                    topologies.clone(),
                    algorithm_axis.clone(),
                    vec![attacked()],
                    vec![ProblemSpec::LocalSideA],
                )
                .seed(cfg.seed + 42)
                .rounds(rounds),
            )
            .group(
                SweepGroup::product(
                    topologies,
                    algorithm_axis,
                    vec![AdversarySpec::StaticNone],
                    vec![ProblemSpec::LocalSideA],
                )
                .seed(cfg.seed + 43)
                .rounds(rounds),
            );
        let store = run_campaign(&campaign)?;

        let mut table = Table::new(
            "E5b: local broadcast on the dual clique (B = side A), online adaptive adversary",
            vec![
                "n",
                "algorithm",
                "attacked rounds",
                "benign rounds",
                "attacked / (n/log n)",
                "completion (wilson 95%)",
            ],
        );
        let mut attacked_series: Vec<(f64, f64)> = Vec::new();
        for &n in &sizes {
            for algorithm in algorithms {
                let scenario = |adversary: AdversarySpec, seed: u64| ScenarioSpec {
                    topology: TopologySpec::DualCliqueWithBridge {
                        n,
                        t_a: 0,
                        t_b: n / 2,
                    },
                    algorithm: algorithm.into(),
                    adversary,
                    problem: ProblemSpec::LocalSideA,
                    seed,
                    max_rounds: Some(200 * n + 2_000),
                    collision_detection: false,
                };
                let attacked_m = measurement_for(&store, &scenario(attacked(), cfg.seed + 42))?;
                let benign =
                    measurement_for(&store, &scenario(AdversarySpec::StaticNone, cfg.seed + 43))?;
                let n_over_log = n as f64 / (n.max(2) as f64).log2();
                if algorithm == LocalAlgorithm::StaticDecay {
                    attacked_series.push((n as f64, attacked_m.rounds.mean));
                }
                table.push_row(vec![
                    n.to_string(),
                    algorithm.name().to_string(),
                    fmt1(attacked_m.rounds.mean),
                    fmt1(benign.rounds.mean),
                    fmt1(attacked_m.rounds.mean / n_over_log),
                    attacked_m.completion.to_string(),
                ]);
            }
        }
        Ok(table.with_caption(format!(
            "paper: same Omega(n/log n) threshold for local broadcast; static-decay attacked series {}",
            fit_note(&attacked_series)
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_two_tables() {
        let tables = E5OnlineAdaptive.run(&ExperimentConfig::smoke()).unwrap();
        assert_eq!(tables.len(), 2);
    }

    #[test]
    fn attack_slows_down_the_largest_smoke_size() {
        // A single trial is a coin flip at n = 32 (the asymptotic separation
        // needs the mean); 16 trials make the comparison stable.
        let cfg = ExperimentConfig {
            trials: 16,
            ..ExperimentConfig::smoke()
        };
        let table = E5OnlineAdaptive.global_scaling(&cfg).unwrap();
        // Compare the attacked and benign columns on the last row (largest n,
        // permuted algorithm).
        let last = table.rows().last().unwrap().clone();
        let attacked: f64 = last[2].parse().unwrap();
        let benign: f64 = last[3].parse().unwrap();
        assert!(
            attacked >= benign,
            "online adaptive attack should not speed broadcast up (attacked {attacked}, benign {benign})"
        );
    }
}
