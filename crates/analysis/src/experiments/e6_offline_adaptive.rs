//! E6 — the offline adaptive row of Figure 1 (row 1, context from the
//! authors' earlier work).
//!
//! With an offline adaptive link process (one that sees the current round's
//! coin flips) both broadcast problems require `Ω(n)` rounds even on the
//! constant-diameter dual clique, and deterministic round robin — `O(n)` for
//! local broadcast, `O(n·D)` for global — is essentially the best possible
//! response.

use dradio_core::algorithms::{GlobalAlgorithm, LocalAlgorithm};
use dradio_scenario::{AdversarySpec, ProblemSpec, ScenarioSpec, TopologySpec};

use crate::experiments::{fit_note, fmt1, Experiment, ExperimentConfig};
use crate::sweep::{
    measurement_for, run_campaign, CampaignError, CampaignSpec, ResultStore, RoundsRule,
    SweepGroup, TrialPolicy,
};
use crate::table::Table;

/// Experiment E6: the omniscient offline adaptive blocker on the dual clique.
#[derive(Debug, Clone, Copy, Default)]
pub struct E6OfflineAdaptive;

impl Experiment for E6OfflineAdaptive {
    fn id(&self) -> &'static str {
        "E6"
    }

    fn title(&self) -> &'static str {
        "Offline adaptive model on the dual clique (Figure 1, row 1)"
    }

    fn paper_claim(&self) -> &'static str {
        "With an offline adaptive link process both problems require Omega(n) rounds even in \
         constant-diameter graphs; round robin achieves O(n) for local broadcast"
    }

    fn run(&self, cfg: &ExperimentConfig) -> Result<Vec<Table>, CampaignError> {
        let sizes = cfg.pick(&[8usize, 16], &[16, 32, 64, 128], &[32, 64, 128, 256]);
        let rounds = RoundsRule::PerNode {
            per_node: 200,
            base: 2_000,
            min_nodes: 0,
        };

        let global_algorithms = [GlobalAlgorithm::Permuted, GlobalAlgorithm::RoundRobin];
        let global_campaign = CampaignSpec::named("e6a-offline-global")
            .seed(cfg.seed + 50)
            .trials(TrialPolicy::Fixed(cfg.trials))
            .group(
                SweepGroup::product(
                    sizes
                        .iter()
                        .map(|&n| TopologySpec::DualClique { n })
                        .collect(),
                    global_algorithms.iter().map(|&a| a.into()).collect(),
                    vec![AdversarySpec::Omniscient],
                    vec![ProblemSpec::GlobalFrom(0)],
                )
                .rounds(rounds),
            );
        let global_store = run_campaign(&global_campaign)?;
        let global = self.global_table(cfg, &sizes, &global_algorithms, &global_store)?;

        let local_algorithms = [LocalAlgorithm::StaticDecay, LocalAlgorithm::RoundRobin];
        let local_campaign = CampaignSpec::named("e6b-offline-local")
            .seed(cfg.seed + 51)
            .trials(TrialPolicy::Fixed(cfg.trials))
            .group(
                SweepGroup::product(
                    sizes
                        .iter()
                        .map(|&n| TopologySpec::DualCliqueWithBridge {
                            n,
                            t_a: 0,
                            t_b: n / 2,
                        })
                        .collect(),
                    local_algorithms.iter().map(|&a| a.into()).collect(),
                    vec![AdversarySpec::Omniscient],
                    vec![ProblemSpec::LocalSideA],
                )
                .rounds(rounds),
            );
        let local_store = run_campaign(&local_campaign)?;
        let local = self.local_table(cfg, &sizes, &local_algorithms, &local_store)?;

        Ok(vec![global, local])
    }
}

impl E6OfflineAdaptive {
    fn global_table(
        &self,
        cfg: &ExperimentConfig,
        sizes: &[usize],
        algorithms: &[GlobalAlgorithm],
        store: &ResultStore,
    ) -> Result<Table, CampaignError> {
        let mut global = Table::new(
            "E6a: global broadcast on the dual clique, offline adaptive adversary",
            vec![
                "n",
                "algorithm",
                "rounds (mean)",
                "completion",
                "rounds / n",
            ],
        );
        let mut randomized_series: Vec<(f64, f64)> = Vec::new();
        for &n in sizes {
            for &algorithm in algorithms {
                let scenario = ScenarioSpec {
                    topology: TopologySpec::DualClique { n },
                    algorithm: algorithm.into(),
                    adversary: AdversarySpec::Omniscient,
                    problem: ProblemSpec::GlobalFrom(0),
                    seed: cfg.seed + 50,
                    max_rounds: Some(200 * n + 2_000),
                    collision_detection: false,
                };
                let m = measurement_for(store, &scenario)?;
                if algorithm == GlobalAlgorithm::Permuted {
                    randomized_series.push((n as f64, m.rounds.mean));
                }
                global.push_row(vec![
                    n.to_string(),
                    algorithm.name().to_string(),
                    fmt1(m.rounds.mean),
                    format!("{:.0}%", m.completion_rate() * 100.0),
                    fmt1(m.rounds.mean / n as f64),
                ]);
            }
        }
        Ok(global.with_caption(format!(
            "paper: Omega(n) for every algorithm; randomized decay attacked series {}",
            fit_note(&randomized_series)
        )))
    }

    fn local_table(
        &self,
        cfg: &ExperimentConfig,
        sizes: &[usize],
        algorithms: &[LocalAlgorithm],
        store: &ResultStore,
    ) -> Result<Table, CampaignError> {
        let mut local = Table::new(
            "E6b: local broadcast on the dual clique (B = side A), offline adaptive adversary",
            vec![
                "n",
                "algorithm",
                "rounds (mean)",
                "completion",
                "rounds / n",
            ],
        );
        for &n in sizes {
            for &algorithm in algorithms {
                let scenario = ScenarioSpec {
                    topology: TopologySpec::DualCliqueWithBridge {
                        n,
                        t_a: 0,
                        t_b: n / 2,
                    },
                    algorithm: algorithm.into(),
                    adversary: AdversarySpec::Omniscient,
                    problem: ProblemSpec::LocalSideA,
                    seed: cfg.seed + 51,
                    max_rounds: Some(200 * n + 2_000),
                    collision_detection: false,
                };
                let m = measurement_for(store, &scenario)?;
                local.push_row(vec![
                    n.to_string(),
                    algorithm.name().to_string(),
                    fmt1(m.rounds.mean),
                    format!("{:.0}%", m.completion_rate() * 100.0),
                    fmt1(m.rounds.mean / n as f64),
                ]);
            }
        }
        Ok(local.with_caption(
            "paper: round robin completes within n rounds under any link process (footnote 4), \
             matching the Omega(n) lower bound up to constants",
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_two_tables() {
        let tables = E6OfflineAdaptive.run(&ExperimentConfig::smoke()).unwrap();
        assert_eq!(tables.len(), 2);
    }

    #[test]
    fn round_robin_local_broadcast_stays_within_n_rounds() {
        let tables = E6OfflineAdaptive.run(&ExperimentConfig::smoke()).unwrap();
        for row in tables[1].rows() {
            if row[1] == "round-robin" {
                let n: f64 = row[0].parse().unwrap();
                let rounds: f64 = row[2].parse().unwrap();
                assert!(rounds <= n, "round robin used {rounds} rounds on n = {n}");
                assert_eq!(row[3], "100%");
            }
        }
    }
}
