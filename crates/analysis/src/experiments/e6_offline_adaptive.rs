//! E6 — the offline adaptive row of Figure 1 (row 1, context from the
//! authors' earlier work).
//!
//! With an offline adaptive link process (one that sees the current round's
//! coin flips) both broadcast problems require `Ω(n)` rounds even on the
//! constant-diameter dual clique, and deterministic round robin — `O(n)` for
//! local broadcast, `O(n·D)` for global — is essentially the best possible
//! response.

use dradio_core::algorithms::{GlobalAlgorithm, LocalAlgorithm};
use dradio_scenario::{AdversarySpec, ProblemSpec, Scenario, TopologySpec};

use crate::experiments::{fit_note, fmt1, Experiment, ExperimentConfig};
use crate::sweep::measure_rounds;
use crate::table::Table;

/// Experiment E6: the omniscient offline adaptive blocker on the dual clique.
#[derive(Debug, Clone, Copy, Default)]
pub struct E6OfflineAdaptive;

impl Experiment for E6OfflineAdaptive {
    fn id(&self) -> &'static str {
        "E6"
    }

    fn title(&self) -> &'static str {
        "Offline adaptive model on the dual clique (Figure 1, row 1)"
    }

    fn paper_claim(&self) -> &'static str {
        "With an offline adaptive link process both problems require Omega(n) rounds even in \
         constant-diameter graphs; round robin achieves O(n) for local broadcast"
    }

    fn run(&self, cfg: &ExperimentConfig) -> Vec<Table> {
        let sizes = cfg.pick(&[8usize, 16], &[16, 32, 64, 128], &[32, 64, 128, 256]);
        let mut global = Table::new(
            "E6a: global broadcast on the dual clique, offline adaptive adversary",
            vec![
                "n",
                "algorithm",
                "rounds (mean)",
                "completion",
                "rounds / n",
            ],
        );
        let mut randomized_series: Vec<(f64, f64)> = Vec::new();
        for &n in &sizes {
            for algorithm in [GlobalAlgorithm::Permuted, GlobalAlgorithm::RoundRobin] {
                let scenario = Scenario::on(TopologySpec::DualClique { n })
                    .algorithm(algorithm)
                    .adversary(AdversarySpec::Omniscient)
                    .problem(ProblemSpec::GlobalFrom(0))
                    .seed(cfg.seed + 50)
                    .max_rounds(200 * n + 2_000)
                    .build()
                    .expect("dual clique scenario");
                let m = measure_rounds(&scenario, cfg.trials);
                if algorithm == GlobalAlgorithm::Permuted {
                    randomized_series.push((n as f64, m.rounds.mean));
                }
                global.push_row(vec![
                    n.to_string(),
                    algorithm.name().to_string(),
                    fmt1(m.rounds.mean),
                    format!("{:.0}%", m.completion_rate * 100.0),
                    fmt1(m.rounds.mean / n as f64),
                ]);
            }
        }
        let global = global.with_caption(format!(
            "paper: Omega(n) for every algorithm; randomized decay attacked series {}",
            fit_note(&randomized_series)
        ));

        let mut local = Table::new(
            "E6b: local broadcast on the dual clique (B = side A), offline adaptive adversary",
            vec![
                "n",
                "algorithm",
                "rounds (mean)",
                "completion",
                "rounds / n",
            ],
        );
        for &n in &sizes {
            for algorithm in [LocalAlgorithm::StaticDecay, LocalAlgorithm::RoundRobin] {
                let scenario = Scenario::on(TopologySpec::DualCliqueWithBridge {
                    n,
                    t_a: 0,
                    t_b: n / 2,
                })
                .algorithm(algorithm)
                .adversary(AdversarySpec::Omniscient)
                .problem(ProblemSpec::LocalSideA)
                .seed(cfg.seed + 51)
                .max_rounds(200 * n + 2_000)
                .build()
                .expect("dual clique scenario");
                let m = measure_rounds(&scenario, cfg.trials);
                local.push_row(vec![
                    n.to_string(),
                    algorithm.name().to_string(),
                    fmt1(m.rounds.mean),
                    format!("{:.0}%", m.completion_rate * 100.0),
                    fmt1(m.rounds.mean / n as f64),
                ]);
            }
        }
        let local = local.with_caption(
            "paper: round robin completes within n rounds under any link process (footnote 4), \
             matching the Omega(n) lower bound up to constants",
        );
        vec![global, local]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_two_tables() {
        let tables = E6OfflineAdaptive.run(&ExperimentConfig::smoke());
        assert_eq!(tables.len(), 2);
    }

    #[test]
    fn round_robin_local_broadcast_stays_within_n_rounds() {
        let tables = E6OfflineAdaptive.run(&ExperimentConfig::smoke());
        for row in tables[1].rows() {
            if row[1] == "round-robin" {
                let n: f64 = row[0].parse().unwrap();
                let rounds: f64 = row[2].parse().unwrap();
                assert!(rounds <= n, "round robin used {rounds} rounds on n = {n}");
                assert_eq!(row[3], "100%");
            }
        }
    }
}
