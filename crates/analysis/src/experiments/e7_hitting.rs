//! E7 — the β-hitting game (Lemma 3.2) and the Theorem 3.1 reduction.
//!
//! Two checks:
//!
//! 1. the time for baseline players to win the hitting game grows linearly in
//!    β, consistent with Lemma 3.2 (winning with probability `1 - 1/β`
//!    requires `Ω(β)` rounds);
//! 2. the reduction player — which wins by simulating a broadcast algorithm
//!    on the dual clique — needs a number of guesses that also grows roughly
//!    linearly in β, which (combined with Lemma 3.2) is what forces the
//!    simulated algorithm to spend `Ω(β / log β) = Ω(n / log n)` rounds.

use dradio_core::global::BgiGlobalBroadcast;
use dradio_core::hitting::{lemma_3_2_bound, play, HittingGame, SweepPlayer, UniformRandomPlayer};
use dradio_core::reduction::{run_reduction, ReductionConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::experiments::{fmt1, Experiment, ExperimentConfig};
use crate::stats::Summary;
use crate::sweep::CampaignError;
use crate::table::Table;

/// Experiment E7: the β-hitting game and the broadcast-to-hitting reduction.
#[derive(Debug, Clone, Copy, Default)]
pub struct E7HittingGame;

impl Experiment for E7HittingGame {
    fn id(&self) -> &'static str {
        "E7"
    }

    fn title(&self) -> &'static str {
        "The beta-hitting game and the Theorem 3.1 reduction"
    }

    fn paper_claim(&self) -> &'static str {
        "No player wins the beta-hitting game in k rounds with probability above k/(beta-1) \
         (Lemma 3.2); a broadcast algorithm finishing in f(n) rounds yields a player winning in \
         O(f(2 beta) log beta) rounds (Theorem 3.1)"
    }

    // E7 plays the abstract β-hitting game rather than sweeping scenarios,
    // so it has no campaign definition — but it reports through the same
    // fallible interface as the scenario experiments.
    fn run(&self, cfg: &ExperimentConfig) -> Result<Vec<Table>, CampaignError> {
        Ok(vec![self.players(cfg), self.reduction(cfg)])
    }
}

impl E7HittingGame {
    fn players(&self, cfg: &ExperimentConfig) -> Table {
        let betas = cfg.pick(&[8u64, 16], &[16, 64, 256, 1024], &[64, 256, 1024, 4096]);
        let trials = (cfg.trials * 10).max(10);
        let mut table = Table::new(
            "E7a: rounds to win the beta-hitting game (random targets)",
            vec![
                "beta",
                "player",
                "rounds (mean)",
                "rounds / beta",
                "lemma bound on P(win in beta/4 rounds)",
            ],
        );
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed + 60);
        for &beta in &betas {
            for player_kind in ["sweep", "uniform-random"] {
                let mut rounds = Vec::with_capacity(trials);
                for _ in 0..trials {
                    let mut game =
                        // lint: allow(D4) -- beta ranges over [2, 32] in this experiment
                        HittingGame::with_random_target(beta, &mut rng).expect("beta >= 2");
                    let won = match player_kind {
                        "sweep" => {
                            let mut player = SweepPlayer::new(beta);
                            play(&mut game, &mut player, 50 * beta as usize, &mut rng)
                        }
                        _ => {
                            let mut player = UniformRandomPlayer::new(beta);
                            play(&mut game, &mut player, 50 * beta as usize, &mut rng)
                        }
                    };
                    rounds.push(won.unwrap_or(50 * beta as usize));
                }
                let summary = Summary::from_counts(&rounds);
                table.push_row(vec![
                    beta.to_string(),
                    player_kind.to_string(),
                    fmt1(summary.mean),
                    fmt1(summary.mean / beta as f64),
                    format!("{:.2}", lemma_3_2_bound(beta, beta / 4)),
                ]);
            }
        }
        table.with_caption(
            "paper: expected win time is Theta(beta) for any player; the rounds/beta column should \
             be a constant near 0.5 (sweep) or 1.0 (uniform)",
        )
    }

    fn reduction(&self, cfg: &ExperimentConfig) -> Table {
        let betas = cfg.pick(&[8usize, 16], &[8, 16, 32, 64], &[16, 32, 64, 128, 256]);
        let mut table = Table::new(
            "E7b: the Theorem 3.1 reduction driven by the decay broadcast algorithm",
            vec![
                "beta",
                "n = 2 beta",
                "hitting guesses (mean)",
                "simulated rounds (mean)",
                "max guesses/round",
                "guesses / beta",
            ],
        );
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed + 61);
        for &beta in &betas {
            let factory = BgiGlobalBroadcast::factory(2 * beta);
            let mut guesses = Vec::new();
            let mut rounds = Vec::new();
            let mut max_per_round = 0usize;
            for t in 0..cfg.trials.max(2) {
                use rand::Rng;
                let target = rng.gen_range(1..=beta);
                let outcome = run_reduction(
                    beta,
                    target,
                    &factory,
                    &ReductionConfig::default(),
                    cfg.seed + 62 + t as u64,
                )
                // lint: allow(D4) -- reduction inputs are fixed valid parameters
                .expect("valid game");
                guesses.push(outcome.total_guesses);
                rounds.push(outcome.simulated_rounds);
                max_per_round = max_per_round.max(outcome.max_guesses_in_round);
            }
            let guess_summary = Summary::from_counts(&guesses);
            let round_summary = Summary::from_counts(&rounds);
            table.push_row(vec![
                beta.to_string(),
                (2 * beta).to_string(),
                fmt1(guess_summary.mean),
                fmt1(round_summary.mean),
                max_per_round.to_string(),
                fmt1(guess_summary.mean / beta as f64),
            ]);
        }
        table.with_caption(
            "paper: the player wins within O(f(2 beta) log beta) guesses and, by Lemma 3.2, needs \
             Omega(beta) of them — so guesses/beta should sit near a constant while the per-round \
             guess count stays O(log beta)",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_two_tables() {
        let tables = E7HittingGame.run(&ExperimentConfig::smoke()).unwrap();
        assert_eq!(tables.len(), 2);
        assert!(tables[0].rows().len() >= 4);
        assert!(tables[1].rows().len() >= 2);
    }

    #[test]
    fn sweep_player_mean_is_about_half_beta() {
        let table = E7HittingGame.players(&ExperimentConfig::smoke());
        for row in table.rows() {
            if row[1] == "sweep" {
                let ratio: f64 = row[3].parse().unwrap();
                assert!(
                    ratio > 0.2 && ratio < 0.9,
                    "sweep ratio {ratio} out of range"
                );
            }
        }
    }
}
