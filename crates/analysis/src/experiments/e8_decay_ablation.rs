//! E8 — ablation: why Permuted Decay is needed (Section 4.1, Lemma 4.2).
//!
//! Two checks:
//!
//! 1. on a single-hop "grey star" (a receiver with a couple of reliable
//!    broadcaster neighbors and many grey-zone broadcaster neighbors) the
//!    schedule-aware oblivious adversary keeps plain Decay from delivering for
//!    a long time, while Permuted Decay delivers within a few calls — the
//!    per-call delivery probability of Lemma 4.2;
//! 2. the same comparison at network scale: global broadcast on the dual
//!    clique under the decay-aware adversary.
//!
//! The grey-star check also exercises the scenario layer's escape hatches:
//! the topology is hand-built (no generator covers it) and the broadcasters
//! run a hand-written shared-bits decay process, both attached through
//! [`Scenario::on_dual`] / `custom_algorithm`.

use std::sync::Arc;

use dradio_core::algorithms::GlobalAlgorithm;
use dradio_core::decay::{DecaySchedule, PermutedDecaySchedule};
use dradio_core::kinds;
use dradio_graphs::{DualGraph, GraphBuilder};
use dradio_scenario::{AdversarySpec, ProblemSpec, Scenario, ScenarioSpec, TopologySpec};
use dradio_sim::process::log2_ceil;
use dradio_sim::sampling::bernoulli;
use dradio_sim::{
    Action, BitString, Message, Process, ProcessContext, ProcessFactory, Role, Round,
};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::experiments::{
    dual_clique_contention_table, fmt1, ContentionSetup, Experiment, ExperimentConfig,
};
use crate::sweep::{
    measurement_for, run_campaign, CampaignError, CampaignSpec, RoundsRule, SweepGroup, TrialPolicy,
};
use crate::table::Table;

/// Experiment E8: fixed vs permuted decay under the schedule-aware oblivious
/// adversary.
#[derive(Debug, Clone, Copy, Default)]
pub struct E8DecayAblation;

impl Experiment for E8DecayAblation {
    fn id(&self) -> &'static str {
        "E8"
    }

    fn title(&self) -> &'static str {
        "Ablation: fixed Decay vs Permuted Decay under an oblivious schedule-aware adversary"
    }

    fn paper_claim(&self) -> &'static str {
        "A fixed decay schedule can be attacked by an oblivious adversary, while each permuted \
         decay call still delivers with probability > 1/2 (Lemma 4.2)"
    }

    fn run(&self, cfg: &ExperimentConfig) -> Result<Vec<Table>, CampaignError> {
        Ok(vec![
            self.grey_star(cfg)?,
            self.dual_clique_comparison(cfg)?,
            self.contention_over_time(cfg)?,
        ])
    }
}

/// A broadcaster that runs (fixed or permuted) decay with a bit string shared
/// by every broadcaster, which is how the grey-star scenario isolates the
/// Lemma 4.2 coordination property.
struct SharedDecayBroadcaster {
    msg: Option<Message>,
    levels: usize,
    bits: BitString,
    permuted: bool,
}

impl SharedDecayBroadcaster {
    fn probability(&self, round: Round) -> f64 {
        if self.permuted {
            PermutedDecaySchedule::new(self.levels).probability(&self.bits, round.index())
        } else {
            DecaySchedule::new(self.levels).probability(round.index())
        }
    }
}

impl Process for SharedDecayBroadcaster {
    fn on_round(&mut self, round: Round, rng: &mut dyn RngCore) -> Action {
        match &self.msg {
            Some(m) if bernoulli(rng, self.probability(round)) => Action::Transmit(m.clone()),
            _ => Action::Listen,
        }
    }
    fn transmit_probability(&self, round: Round) -> f64 {
        if self.msg.is_some() {
            self.probability(round)
        } else {
            0.0
        }
    }
    fn name(&self) -> &'static str {
        "shared-decay"
    }
}

impl E8DecayAblation {
    /// Builds the grey star: node 0 is the receiver, nodes `1..=reliable` are
    /// reliable broadcaster neighbors, nodes `reliable+1..=reliable+grey` are
    /// grey-zone broadcaster neighbors (present only in `G'`).
    fn grey_star_topology(reliable: usize, grey: usize) -> DualGraph {
        let n = 1 + reliable + grey;
        let mut g = GraphBuilder::new(n);
        let mut gp = GraphBuilder::new(n);
        for i in 1..=reliable {
            g = g.edge(0, i);
            gp = gp.edge(0, i);
        }
        for i in (reliable + 1)..n {
            gp = gp.edge(0, i);
        }
        // Keep G connected: chain the broadcasters behind the receiver's back
        // (they are all mutually out of the receiver's picture).
        for i in 1..n - 1 {
            g = g.edge(i, i + 1);
            gp = gp.edge(i, i + 1);
        }
        // lint: allow(D4) -- path edges are in range and distinct
        DualGraph::new(g.build().expect("valid"), gp.build().expect("valid"))
            // lint: allow(D4) -- G is a subgraph of G' by construction above
            .expect("containment holds")
            .with_name(format!("grey-star(reliable={reliable}, grey={grey})"))
    }

    fn shared_factory(levels: usize, permuted: bool, seed: u64) -> ProcessFactory {
        // The shared bits model the coordination the real algorithms obtain
        // from the source message (global) or the disseminated seeds (local):
        // generated after the adversary committed, identical at every
        // broadcaster.
        let bits = BitString::random(4096, &mut ChaCha8Rng::seed_from_u64(seed));
        Arc::new(move |ctx: &ProcessContext| {
            let msg = (ctx.role == Role::Broadcaster)
                .then(|| Message::plain(ctx.id, kinds::DATA, ctx.id.index() as u64));
            Box::new(SharedDecayBroadcaster {
                msg,
                levels,
                bits: bits.clone(),
                permuted,
            }) as Box<dyn Process>
        })
    }

    /// Rounds until the grey-star receiver hears some broadcaster.
    ///
    /// This table cannot be a campaign: the topology is hand-built and every
    /// trial attaches a *different* hand-written factory (a fresh shared bit
    /// string), neither of which a declarative, serializable cell can carry.
    /// It runs through `Scenario` directly but reports errors like the
    /// campaign-backed tables instead of panicking.
    fn grey_star(&self, cfg: &ExperimentConfig) -> Result<Table, CampaignError> {
        let grey_sizes = cfg.pick(&[8usize, 16], &[8, 16, 32, 64], &[16, 32, 64, 128, 256]);
        let reliable = 2usize;
        let mut table = Table::new(
            "E8a: grey star — rounds until the receiver hears a broadcaster (decay-aware adversary)",
            vec![
                "grey degree",
                "n",
                "schedule",
                "rounds (mean)",
                "delivered within one call (gamma log n rounds)",
            ],
        );
        for &grey in &grey_sizes {
            let dual = Self::grey_star_topology(reliable, grey);
            let n = dual.len();
            let levels = log2_ceil(n).max(1);
            let call_length = 16 * levels;
            let broadcasters: Vec<usize> = (1..n).collect();
            for permuted in [false, true] {
                let trials = (cfg.trials * 4).max(4);
                let mut costs = Vec::with_capacity(trials);
                let mut within_call = 0usize;
                for t in 0..trials {
                    // The shared bit string differs per trial, so each trial
                    // is its own scenario with its own attached factory.
                    let scenario = Scenario::on_dual(dual.clone())
                        .custom_algorithm(
                            if permuted {
                                "shared-permuted-decay"
                            } else {
                                "shared-fixed-decay"
                            },
                            Self::shared_factory(levels, permuted, cfg.seed + 70 + t as u64),
                        )
                        .adversary(AdversarySpec::DecayAware {
                            levels: Some(levels),
                            assumed_transmitters: vec![],
                        })
                        .problem(ProblemSpec::Local {
                            broadcasters: broadcasters.clone(),
                        })
                        .seed(cfg.seed + 71 + t as u64)
                        .max_rounds(400 * levels)
                        .build()?;
                    let cost = scenario.run().cost();
                    if cost <= call_length {
                        within_call += 1;
                    }
                    costs.push(cost as f64);
                }
                let summary = crate::stats::Summary::from_samples(&costs);
                table.push_row(vec![
                    grey.to_string(),
                    n.to_string(),
                    if permuted { "permuted" } else { "fixed" }.to_string(),
                    fmt1(summary.mean),
                    format!("{:.0}%", 100.0 * within_call as f64 / trials as f64),
                ]);
            }
        }
        Ok(table.with_caption(
            "paper (Lemma 4.2): one permuted decay call delivers with probability > 1/2 even under \
             an oblivious adversary; the fixed schedule's delivery rate collapses as the grey \
             degree grows",
        ))
    }

    /// Network-scale comparison on the dual clique, as a campaign. The
    /// decay-aware attacker's assumed-transmitter set depends on n (it
    /// correctly assumes only the source's clique side transmits until the
    /// bridge carries the message across), so each size is its own group.
    fn dual_clique_comparison(&self, cfg: &ExperimentConfig) -> Result<Table, CampaignError> {
        let sizes = cfg.pick(&[16usize, 32], &[32, 64, 128], &[64, 128, 256, 512]);
        let algorithms = [GlobalAlgorithm::Bgi, GlobalAlgorithm::Permuted];
        let adversary = |n: usize| AdversarySpec::DecayAware {
            levels: None,
            assumed_transmitters: (0..n / 2).collect(),
        };
        let mut campaign = CampaignSpec::named("e8b-decay-aware-clique")
            .seed(cfg.seed + 72)
            .trials(TrialPolicy::Fixed(cfg.trials));
        for &n in &sizes {
            campaign = campaign.group(
                SweepGroup::product(
                    vec![TopologySpec::DualClique { n }],
                    algorithms.iter().map(|&a| a.into()).collect(),
                    vec![adversary(n)],
                    vec![ProblemSpec::GlobalFrom(0)],
                )
                .rounds(RoundsRule::Fixed(100 * n + 2_000)),
            );
        }
        let store = run_campaign(&campaign)?;

        let mut table = Table::new(
            "E8b: global broadcast on the dual clique under the decay-aware oblivious adversary",
            vec!["n", "algorithm", "rounds (mean)", "completion"],
        );
        for &n in &sizes {
            for algorithm in algorithms {
                let scenario = ScenarioSpec {
                    topology: TopologySpec::DualClique { n },
                    algorithm: algorithm.into(),
                    adversary: adversary(n),
                    problem: ProblemSpec::GlobalFrom(0),
                    seed: cfg.seed + 72,
                    max_rounds: Some(100 * n + 2_000),
                    collision_detection: false,
                };
                let m = measurement_for(&store, &scenario)?;
                table.push_row(vec![
                    n.to_string(),
                    algorithm.name().to_string(),
                    fmt1(m.rounds.mean),
                    format!("{:.0}%", m.completion_rate() * 100.0),
                ]);
            }
        }
        Ok(table.with_caption(
            "context: on the dual clique every receiver keeps ~n/2 reliable broadcaster neighbors, \
             so even plain decay resists the oblivious schedule attack here (both variants stay \
             polylogarithmic); the schedule attack bites when receivers depend on grey-zone links \
             for most of their broadcaster connectivity — that regime is measured in E8a",
        ))
    }

    /// Contention over time under the decay-aware schedule attack: the fixed
    /// schedule's collisions cluster at the rounds the attacker targets,
    /// while the permuted schedule spreads them (streamed from
    /// `CollisionsOnly` recording; see [`dual_clique_contention_table`]).
    fn contention_over_time(&self, cfg: &ExperimentConfig) -> Result<Table, CampaignError> {
        let n = *cfg
            .pick(&[32usize], &[128], &[512])
            .first()
            // lint: allow(D4) -- pick() returns one of three non-empty literal slices
            .expect("non-empty");
        dual_clique_contention_table(
            format!("E8c: contention over time (dual clique n = {n}, decay-aware adversary)"),
            ContentionSetup {
                campaign_name: "e8c-contention",
                seed: cfg.seed + 73,
                n,
                adversary: AdversarySpec::DecayAware {
                    levels: None,
                    assumed_transmitters: (0..n / 2).collect(),
                },
                max_rounds: 100 * n + 2_000,
                trials: (cfg.trials * 4).max(4),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dradio_graphs::NodeId;

    #[test]
    fn grey_star_topology_shape() {
        let dual = E8DecayAblation::grey_star_topology(2, 5);
        assert_eq!(dual.len(), 8);
        // Receiver 0 has 2 reliable and 5 grey neighbors.
        assert_eq!(dual.g_neighbors(NodeId::new(0)).len(), 2);
        assert_eq!(dual.g_prime_neighbors(NodeId::new(0)).len(), 7);
        assert!(dual.is_valid());
        assert!(dradio_graphs::properties::is_connected(dual.g()));
    }

    #[test]
    fn smoke_run_produces_three_tables() {
        let tables = E8DecayAblation.run(&ExperimentConfig::smoke()).unwrap();
        assert_eq!(tables.len(), 3);
        assert!(tables[0].title().contains("E8a"));
        assert!(tables[1].title().contains("E8b"));
        assert!(tables[2].title().contains("E8c"));
    }

    #[test]
    fn contention_curves_are_nontrivial_at_smoke_scale() {
        let table = E8DecayAblation
            .contention_over_time(&ExperimentConfig::smoke())
            .unwrap();
        assert!(table.rows().len() > 1, "more than one round window");
        let nonzero = table
            .rows()
            .iter()
            .flat_map(|row| &row[1..])
            .any(|cell| cell.parse::<f64>().unwrap() > 0.0);
        assert!(nonzero, "the streamed curve should not be identically zero");
    }

    #[test]
    fn permuted_is_not_slower_than_fixed_on_the_grey_star() {
        let table = E8DecayAblation
            .grey_star(&ExperimentConfig::smoke())
            .unwrap();
        // Rows alternate fixed/permuted per grey size; compare the largest.
        let rows = table.rows();
        let fixed: f64 = rows[rows.len() - 2][3].parse().unwrap();
        let permuted: f64 = rows[rows.len() - 1][3].parse().unwrap();
        assert!(
            permuted <= fixed * 1.5,
            "permuted ({permuted}) should not be much slower than fixed ({fixed})"
        );
    }
}
