//! Experiment definitions E1–E8.
//!
//! Each experiment reproduces one row of Figure 1 of the paper (or one
//! empirically checkable lemma) as a measured table. The `repro` binary in
//! `dradio-bench` prints every experiment; the Criterion benches wrap the
//! same definitions; `EXPERIMENTS.md` records the measured results next to
//! the paper's claims.

mod e1_static;
mod e2_global_oblivious;
mod e3_bracelet;
mod e4_geo_local;
mod e5_online_adaptive;
mod e6_offline_adaptive;
mod e7_hitting;
mod e8_decay_ablation;

pub use e1_static::E1StaticBaselines;
pub use e2_global_oblivious::E2GlobalOblivious;
pub use e3_bracelet::E3BraceletLowerBound;
pub use e4_geo_local::E4GeoLocal;
pub use e5_online_adaptive::E5OnlineAdaptive;
pub use e6_offline_adaptive::E6OfflineAdaptive;
pub use e7_hitting::E7HittingGame;
pub use e8_decay_ablation::E8DecayAblation;

use dradio_core::algorithms::GlobalAlgorithm;
use dradio_scenario::{AdversarySpec, ProblemSpec, ScenarioSpec, TopologySpec};

use crate::curves::{contention_table, DEFAULT_BUCKETS};
use crate::fit::best_fit;
use crate::sweep::{
    measurement_for, run_campaign, CampaignError, CampaignSpec, ContentionCurve, RoundsRule,
    StopRule, SweepGroup, TrialPolicy,
};
use crate::table::Table;

/// How much work an experiment run should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny sizes and a single trial — used by unit tests.
    Smoke,
    /// Moderate sizes, a few trials — the `repro` binary default.
    Quick,
    /// Larger sizes and more trials — closer to publication quality.
    Full,
}

/// Configuration shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Number of independent trials per data point.
    pub trials: usize,
    /// Sweep scale.
    pub scale: Scale,
    /// Base random seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// Smoke-test configuration (single trial, tiny sizes).
    pub fn smoke() -> Self {
        ExperimentConfig {
            trials: 1,
            scale: Scale::Smoke,
            seed: 0xD15EA5E,
        }
    }

    /// Quick configuration (default for the `repro` binary).
    pub fn quick() -> Self {
        ExperimentConfig {
            trials: 3,
            scale: Scale::Quick,
            seed: 0xD15EA5E,
        }
    }

    /// Full configuration.
    pub fn full() -> Self {
        ExperimentConfig {
            trials: 8,
            scale: Scale::Full,
            seed: 0xD15EA5E,
        }
    }

    /// Picks one of three size lists according to the scale.
    pub fn pick<T: Clone>(&self, smoke: &[T], quick: &[T], full: &[T]) -> Vec<T> {
        match self.scale {
            Scale::Smoke => smoke.to_vec(),
            Scale::Quick => quick.to_vec(),
            Scale::Full => full.to_vec(),
        }
    }

    /// The completion-targeted adaptive trial policy the lower-bound
    /// experiments (E3, E5) run with: start from the configured trial count
    /// and keep doubling (up to `4 · trials`, at least 8) until the ~95%
    /// Wilson interval on the completion rate is within ±25 percentage
    /// points. Their claims are about *whether* broadcast finishes under
    /// attack, so precision on the completion probability — not on the mean
    /// cost — is what earns extra trials.
    pub fn completion_policy(&self) -> TrialPolicy {
        TrialPolicy::Adaptive {
            min: self.trials,
            max: (self.trials * 4).max(8),
            relative_width: 0.25,
            stop: StopRule::CompletionCi,
        }
    }
}

/// One experiment of the reproduction.
pub trait Experiment: Sync + Send {
    /// Short identifier ("E1", "E2", …).
    fn id(&self) -> &'static str;

    /// Human-readable title.
    fn title(&self) -> &'static str;

    /// The claim from the paper this experiment checks.
    fn paper_claim(&self) -> &'static str;

    /// Runs the experiment and returns its tables.
    ///
    /// Scenario-sweep experiments define themselves as
    /// [`CampaignSpec`](crate::sweep::CampaignSpec)s and execute through the
    /// campaign engine, so misconfiguration (zero trials, incompatible
    /// components) propagates as an error instead of panicking mid-sweep.
    ///
    /// # Errors
    ///
    /// [`CampaignError`] when a campaign fails to validate or a cell fails to
    /// build or run.
    fn run(&self, cfg: &ExperimentConfig) -> Result<Vec<Table>, CampaignError>;
}

/// The registry of all experiments in presentation order.
pub fn all() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(E1StaticBaselines),
        Box::new(E2GlobalOblivious),
        Box::new(E3BraceletLowerBound),
        Box::new(E4GeoLocal),
        Box::new(E5OnlineAdaptive),
        Box::new(E6OfflineAdaptive),
        Box::new(E7HittingGame),
        Box::new(E8DecayAblation),
    ]
}

/// Formats a float with one decimal for table cells.
pub(crate) fn fmt1(x: f64) -> String {
    format!("{x:.1}")
}

/// One contention-over-time comparison: a dual clique, an adversary, and
/// the execution budget, shared by the E2c and E8c tables.
pub(crate) struct ContentionSetup {
    /// Campaign name (also used in the missing-curve error).
    pub campaign_name: &'static str,
    /// Scenario seed.
    pub seed: u64,
    /// Dual-clique size.
    pub n: usize,
    /// The link process under which contention is measured.
    pub adversary: AdversarySpec,
    /// Per-trial round budget.
    pub max_rounds: usize,
    /// Trials per cell.
    pub trials: usize,
}

/// Runs a curve-streaming campaign comparing both decay variants on one
/// dual clique and renders their contention-over-time curves side by side —
/// the shape shared by the contention tables of E2 (i.i.d. adversary) and
/// E8 (decay-aware adversary). The cells record under `CollisionsOnly`
/// (auto-promoted from the history-free default; the adversaries are
/// oblivious, so never to `Full`).
pub(crate) fn dual_clique_contention_table(
    title: String,
    setup: ContentionSetup,
) -> Result<Table, CampaignError> {
    let ContentionSetup {
        campaign_name,
        seed,
        n,
        adversary,
        max_rounds,
        trials,
    } = setup;
    let algorithms = [GlobalAlgorithm::Bgi, GlobalAlgorithm::Permuted];
    let campaign = CampaignSpec::named(campaign_name)
        .seed(seed)
        .trials(TrialPolicy::Fixed(trials))
        .group(
            SweepGroup::product(
                vec![TopologySpec::DualClique { n }],
                algorithms.iter().map(|&a| a.into()).collect(),
                vec![adversary.clone()],
                vec![ProblemSpec::GlobalFrom(0)],
            )
            .rounds(RoundsRule::Fixed(max_rounds))
            .curve(true),
        );
    let store = run_campaign(&campaign)?;

    let mut curves: Vec<(String, &ContentionCurve)> = Vec::new();
    for algorithm in algorithms {
        let scenario = ScenarioSpec {
            topology: TopologySpec::DualClique { n },
            algorithm: algorithm.into(),
            adversary: adversary.clone(),
            problem: ProblemSpec::GlobalFrom(0),
            seed,
            max_rounds: Some(max_rounds),
            collision_detection: false,
        };
        let m = measurement_for(&store, &scenario)?;
        let curve = m.contention.as_ref().ok_or_else(|| {
            CampaignError::spec(format!(
                "{campaign_name} asked for a curve but the measurement for {scenario} has none"
            ))
        })?;
        curves.push((algorithm.name().to_string(), curve));
    }
    Ok(contention_table(title, &curves, DEFAULT_BUCKETS))
}

/// Produces a "best fit" annotation for a measured series.
pub(crate) fn fit_note(points: &[(f64, f64)]) -> String {
    match best_fit(points) {
        Some(fit) => format!(
            "best fit ~ {} (scale {:.2}, rel. rmse {:.2})",
            fit.model, fit.scale, fit.relative_rmse
        ),
        None => String::from("no fit (empty series)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_eight_experiments_with_unique_ids() {
        let experiments = all();
        assert_eq!(experiments.len(), 8);
        let mut ids: Vec<&str> = experiments.iter().map(|e| e.id()).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before);
        for e in &experiments {
            assert!(!e.title().is_empty());
            assert!(!e.paper_claim().is_empty());
        }
    }

    #[test]
    fn config_pick_follows_scale() {
        let smoke = ExperimentConfig::smoke();
        let quick = ExperimentConfig::quick();
        let full = ExperimentConfig::full();
        assert_eq!(smoke.pick(&[1], &[2], &[3]), vec![1]);
        assert_eq!(quick.pick(&[1], &[2], &[3]), vec![2]);
        assert_eq!(full.pick(&[1], &[2], &[3]), vec![3]);
        assert!(full.trials > quick.trials);
    }

    #[test]
    fn fit_note_mentions_a_model() {
        let points: Vec<(f64, f64)> = (5..10)
            .map(|i| (f64::from(i), f64::from(i) * 2.0))
            .collect();
        let note = fit_note(&points);
        assert!(note.contains("best fit"));
        assert_eq!(fit_note(&[]), "no fit (empty series)");
    }

    /// Every experiment must run end to end at smoke scale and produce at
    /// least one non-empty table. This is the integration test that keeps the
    /// whole harness wired together.
    #[test]
    fn every_experiment_runs_at_smoke_scale() {
        let cfg = ExperimentConfig::smoke();
        for experiment in all() {
            let tables = experiment
                .run(&cfg)
                .unwrap_or_else(|e| panic!("{} failed: {e}", experiment.id()));
            assert!(!tables.is_empty(), "{} produced no tables", experiment.id());
            for table in &tables {
                assert!(
                    !table.rows().is_empty(),
                    "{} produced an empty table",
                    experiment.id()
                );
            }
        }
    }
}
