//! Least-squares fitting of measured round counts against asymptotic growth
//! shapes.
//!
//! The paper makes asymptotic claims (`O(D log n + log² n)`, `Ω(n / log n)`,
//! `Ω(√n / log n)`, `O(log² n log Δ)`, …) with no constants, so the
//! reproduction compares *shapes*: for each measured series we fit the single
//! scale parameter `a` of every candidate shape `y ≈ a · f(n)` and report
//! which shape minimizes the normalized residual. Experiments additionally
//! print the measured ratios `y / f(n)` so a human can see whether the ratio
//! is flat (correct shape), growing (measured grows faster), or shrinking.

use std::fmt;

/// A candidate asymptotic growth shape `f(n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GrowthModel {
    /// Constant: `f(n) = 1`.
    Constant,
    /// `f(n) = log₂ n`.
    Log,
    /// `f(n) = log₂² n`.
    LogSquared,
    /// `f(n) = log₂³ n`.
    LogCubed,
    /// `f(n) = √n`.
    Sqrt,
    /// `f(n) = √n / log₂ n`.
    SqrtOverLog,
    /// `f(n) = n`.
    Linear,
    /// `f(n) = n / log₂ n`.
    LinearOverLog,
    /// `f(n) = n log₂ n`.
    NLogN,
    /// `f(n) = n²`.
    Quadratic,
}

impl GrowthModel {
    /// Every candidate shape, in increasing order of growth.
    pub fn all() -> [GrowthModel; 10] {
        [
            GrowthModel::Constant,
            GrowthModel::Log,
            GrowthModel::LogSquared,
            GrowthModel::LogCubed,
            GrowthModel::SqrtOverLog,
            GrowthModel::Sqrt,
            GrowthModel::LinearOverLog,
            GrowthModel::Linear,
            GrowthModel::NLogN,
            GrowthModel::Quadratic,
        ]
    }

    /// Evaluates `f(x)`; inputs below 2 are clamped so logarithms stay
    /// positive.
    pub fn evaluate(&self, x: f64) -> f64 {
        let x = x.max(2.0);
        let log = x.log2();
        match self {
            GrowthModel::Constant => 1.0,
            GrowthModel::Log => log,
            GrowthModel::LogSquared => log * log,
            GrowthModel::LogCubed => log * log * log,
            GrowthModel::Sqrt => x.sqrt(),
            GrowthModel::SqrtOverLog => x.sqrt() / log,
            GrowthModel::Linear => x,
            GrowthModel::LinearOverLog => x / log,
            GrowthModel::NLogN => x * log,
            GrowthModel::Quadratic => x * x,
        }
    }

    /// Human-readable shape name.
    pub fn name(&self) -> &'static str {
        match self {
            GrowthModel::Constant => "1",
            GrowthModel::Log => "log n",
            GrowthModel::LogSquared => "log^2 n",
            GrowthModel::LogCubed => "log^3 n",
            GrowthModel::Sqrt => "sqrt(n)",
            GrowthModel::SqrtOverLog => "sqrt(n)/log n",
            GrowthModel::Linear => "n",
            GrowthModel::LinearOverLog => "n/log n",
            GrowthModel::NLogN => "n log n",
            GrowthModel::Quadratic => "n^2",
        }
    }
}

impl fmt::Display for GrowthModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The result of fitting one model to a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// The shape fitted.
    pub model: GrowthModel,
    /// The fitted scale `a` in `y ≈ a · f(x)`.
    pub scale: f64,
    /// Root-mean-square relative error of the fit.
    pub relative_rmse: f64,
}

/// Fits the scale of a single model by least squares on `(x, y)` pairs.
///
/// Returns `None` for empty input or a degenerate model (all `f(x) = 0`).
pub fn fit_model(model: GrowthModel, points: &[(f64, f64)]) -> Option<Fit> {
    if points.is_empty() {
        return None;
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for &(x, y) in points {
        let f = model.evaluate(x);
        num += f * y;
        den += f * f;
    }
    if den == 0.0 {
        return None;
    }
    let scale = num / den;
    let mut err = 0.0;
    for &(x, y) in points {
        let predicted = scale * model.evaluate(x);
        let denom = y.abs().max(1.0);
        err += ((y - predicted) / denom).powi(2);
    }
    Some(Fit {
        model,
        scale,
        relative_rmse: (err / points.len() as f64).sqrt(),
    })
}

/// Fits every candidate model and returns them sorted by ascending relative
/// error (best first).
pub fn fit_all(points: &[(f64, f64)]) -> Vec<Fit> {
    let mut fits: Vec<Fit> = GrowthModel::all()
        .iter()
        .filter_map(|&m| fit_model(m, points))
        .collect();
    fits.sort_by(|a, b| {
        a.relative_rmse
            .partial_cmp(&b.relative_rmse)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    fits
}

/// The single best-fitting model, or `None` for empty input.
pub fn best_fit(points: &[(f64, f64)]) -> Option<Fit> {
    fit_all(points).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(model: GrowthModel, scale: f64) -> Vec<(f64, f64)> {
        [32.0, 64.0, 128.0, 256.0, 512.0, 1024.0]
            .iter()
            .map(|&x| (x, scale * model.evaluate(x)))
            .collect()
    }

    #[test]
    fn evaluate_clamps_small_inputs() {
        for model in GrowthModel::all() {
            assert!(model.evaluate(0.0).is_finite());
            assert!(model.evaluate(1.0) > 0.0);
        }
    }

    #[test]
    fn growth_relationships_hold_at_large_n() {
        let x = (1u32 << 20) as f64;
        let value = |m: GrowthModel| m.evaluate(x);
        // Polylogarithmic chain.
        assert!(value(GrowthModel::Constant) < value(GrowthModel::Log));
        assert!(value(GrowthModel::Log) < value(GrowthModel::LogSquared));
        assert!(value(GrowthModel::LogSquared) < value(GrowthModel::LogCubed));
        // Root chain.
        assert!(value(GrowthModel::SqrtOverLog) < value(GrowthModel::Sqrt));
        assert!(value(GrowthModel::Sqrt) < value(GrowthModel::LinearOverLog));
        // Near-linear and beyond.
        assert!(value(GrowthModel::LinearOverLog) < value(GrowthModel::Linear));
        assert!(value(GrowthModel::Linear) < value(GrowthModel::NLogN));
        assert!(value(GrowthModel::NLogN) < value(GrowthModel::Quadratic));
        // The separations the experiments rely on.
        assert!(value(GrowthModel::LogSquared) < value(GrowthModel::SqrtOverLog) * 10.0);
        assert!(value(GrowthModel::LinearOverLog) > value(GrowthModel::LogCubed));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = GrowthModel::all().iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), GrowthModel::all().len());
        assert_eq!(GrowthModel::LinearOverLog.to_string(), "n/log n");
    }

    #[test]
    fn exact_series_recovers_model_and_scale() {
        for (model, scale) in [
            (GrowthModel::LogSquared, 3.0),
            (GrowthModel::Linear, 0.5),
            (GrowthModel::LinearOverLog, 2.0),
            (GrowthModel::SqrtOverLog, 7.0),
        ] {
            let points = series(model, scale);
            let best = best_fit(&points).unwrap();
            assert_eq!(best.model, model, "wrong model for {model}");
            assert!((best.scale - scale).abs() / scale < 1e-6);
            assert!(best.relative_rmse < 1e-9);
        }
    }

    #[test]
    fn noisy_series_still_identifies_the_right_family() {
        // 10% multiplicative noise should not flip n/log n into something
        // radically different like log^2 n or n^2.
        let noise = [1.05, 0.95, 1.08, 0.92, 1.03, 0.97];
        let points: Vec<(f64, f64)> = series(GrowthModel::LinearOverLog, 4.0)
            .into_iter()
            .zip(noise.iter())
            .map(|((x, y), e)| (x, y * e))
            .collect();
        let best = best_fit(&points).unwrap();
        assert!(
            matches!(
                best.model,
                GrowthModel::LinearOverLog | GrowthModel::Linear | GrowthModel::Sqrt
            ),
            "unexpected best model {}",
            best.model
        );
        // And definitely not a polylogarithmic shape.
        assert!(!matches!(
            best.model,
            GrowthModel::Log | GrowthModel::LogSquared | GrowthModel::Constant
        ));
    }

    #[test]
    fn fit_handles_empty_and_degenerate_input() {
        assert!(best_fit(&[]).is_none());
        assert!(fit_model(GrowthModel::Linear, &[]).is_none());
        let single = [(64.0, 10.0)];
        let fit = fit_model(GrowthModel::Constant, &single).unwrap();
        assert!((fit.scale - 10.0).abs() < 1e-12);
    }

    #[test]
    fn fit_all_is_sorted_by_error() {
        let points = series(GrowthModel::LogSquared, 2.0);
        let fits = fit_all(&points);
        for pair in fits.windows(2) {
            assert!(pair[0].relative_rmse <= pair[1].relative_rmse);
        }
        assert_eq!(fits[0].model, GrowthModel::LogSquared);
    }
}
