//! Experiment harness for the PODC 2013 dual-graph broadcast reproduction.
//!
//! This crate turns the algorithms of [`dradio_core`] and the adversaries of
//! [`dradio_adversary`] into the measured tables that reproduce Figure 1 of
//! the paper (and the empirically checkable lemmas):
//!
//! * [`stats`] — summary statistics over repeated trials;
//! * [`table`] — plain-text and CSV rendering of result tables;
//! * [`fit`] — least-squares fitting of measured round counts against the
//!   asymptotic growth shapes the paper predicts (`log² n`, `n / log n`,
//!   `√n / log n`, …), so each experiment can report *which* shape matches;
//! * [`sweep`] — helpers for running a simulation many times and summarizing
//!   the round complexity;
//! * [`experiments`] — the experiment definitions E1–E8, each mapping to one
//!   row (or supporting lemma) of Figure 1. `experiments::all()` is the
//!   registry used by the `repro` binary and the Criterion benches.
//!
//! # Example
//!
//! ```
//! use dradio_analysis::experiments::{self, ExperimentConfig};
//! let cfg = ExperimentConfig::smoke();
//! let e1 = &experiments::all()[0];
//! let tables = e1.run(&cfg);
//! assert!(!tables.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod fit;
pub mod stats;
pub mod sweep;
pub mod table;

pub use fit::{best_fit, GrowthModel};
pub use stats::Summary;
pub use sweep::{measure_rounds, MeasureSpec};
pub use table::Table;
