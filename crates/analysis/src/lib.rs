//! Experiment harness for the PODC 2013 dual-graph broadcast reproduction.
//!
//! Every experiment describes its workloads as [`dradio_scenario`] values —
//! declarative (topology × algorithm × adversary × problem) specs — and
//! measures them with the parallel [`ScenarioRunner`]; this crate adds the
//! analysis layers on top:
//!
//! * [`stats`] — summary statistics (re-exported from the scenario crate);
//! * [`table`] — plain-text and CSV rendering of result tables;
//! * [`curves`] — bucketed rendering of the contention-over-time curves
//!   campaign cells can stream (`SweepGroup::curve`), as tables over a
//!   shared round axis;
//! * [`fit`] — least-squares fitting of measured round counts against the
//!   asymptotic growth shapes the paper predicts (`log² n`, `n / log n`,
//!   `√n / log n`, …), so each experiment can report *which* shape matches;
//! * [`sweep`] — the measurement entry point over scenario sweeps, built on
//!   the [`dradio_campaign`] engine (declarative
//!   [`CampaignSpec`](sweep::CampaignSpec)s executed with work-stealing
//!   parallelism across cells);
//! * [`experiments`] — the experiment definitions E1–E8, each mapping to one
//!   row (or supporting lemma) of Figure 1. `experiments::all()` is the
//!   registry used by the `repro` binary and the Criterion benches. The
//!   scenario-sweep experiments are thin campaign definitions; the `repro`
//!   binary can also run hand-written campaigns with a persistent, resumable
//!   result store (`repro campaign run --campaign <json>`).
//!
//! New workloads start from [`Scenario::on`](dradio_scenario::Scenario::on);
//! see the [`dradio_scenario`] crate docs for the builder API and the
//! [`dradio_campaign`] crate docs for sweeps.
//!
//! # Example
//!
//! ```
//! use dradio_analysis::experiments::{self, ExperimentConfig};
//! let cfg = ExperimentConfig::smoke();
//! let e1 = &experiments::all()[0];
//! let tables = e1.run(&cfg)?;
//! assert!(!tables.is_empty());
//! # Ok::<(), dradio_analysis::sweep::CampaignError>(())
//! ```
//!
//! [`ScenarioRunner`]: dradio_scenario::ScenarioRunner

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod curves;
pub mod experiments;
pub mod fit;
pub mod stats;
pub mod sweep;
pub mod table;

pub use curves::contention_table;
pub use fit::{best_fit, GrowthModel};
pub use stats::Summary;
pub use sweep::{run_campaign, CampaignError, CampaignSpec, Measurement};
pub use table::Table;
