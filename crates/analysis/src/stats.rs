//! Summary statistics over repeated trials.
//!
//! [`Summary`] moved to [`dradio_scenario::stats`] so the scenario runner can
//! aggregate trial measurements without depending on this crate; it is
//! re-exported here for continuity.

pub use dradio_scenario::stats::Summary;
