//! Measuring the round complexity of scenario sweeps through the campaign
//! engine.
//!
//! The construction machinery lives in [`dradio_scenario`] (a [`Scenario`]
//! pins down one combination, [`ScenarioRunner`] fans trials across threads)
//! and the orchestration machinery in [`dradio_campaign`] (a
//! [`CampaignSpec`] describes a whole sweep; [`CampaignRunner`] executes the
//! cells and can persist them to a resumable store). This module re-exports
//! both layers and adds the conveniences the experiment definitions share.
//!
//! Experiments run their campaigns **in memory** — persistence is the
//! `repro campaign` subcommands' concern — and look measurements up by
//! scenario when rendering tables, so presentation order is independent of
//! expansion order.
//!
//! The old panicking `measure_rounds` entry point is gone: zero-trial (and
//! every other) misconfiguration now surfaces as a [`CampaignError`] at
//! campaign validation time, before any cell runs.

pub use dradio_campaign::{
    CampaignError, CampaignRunner, CampaignSpec, CellRecord, CellSpec, ResultStore, RoundsRule,
    RunReport, StopRule, SweepGroup, TrialPolicy,
};
pub use dradio_scenario::{Completion, ContentionCurve, Measurement, ScenarioRunner, TrialOutcome};

use dradio_scenario::ScenarioSpec;

/// Runs a campaign into a fresh in-memory store.
///
/// # Errors
///
/// Everything [`CampaignRunner::run`] reports: invalid specs (including
/// zero-trial policies), cells that fail to build, or failing executions.
pub fn run_campaign(spec: &CampaignSpec) -> Result<ResultStore, CampaignError> {
    CampaignRunner::new(spec).run_in_memory()
}

/// Fetches the stored measurement for one scenario of a campaign.
///
/// # Errors
///
/// [`CampaignError::Spec`] if the store holds no measurement for the
/// scenario — in the experiments this means a table's rendering loop drifted
/// from its campaign definition, which should fail loudly rather than print
/// a partial table.
pub fn measurement_for<'s>(
    store: &'s ResultStore,
    scenario: &ScenarioSpec,
) -> Result<&'s Measurement, CampaignError> {
    store
        .for_scenario(scenario)
        .map(|record| &record.measurement)
        .ok_or_else(|| {
            CampaignError::spec(format!(
                "the campaign store has no measurement for {scenario}"
            ))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dradio_core::algorithms::GlobalAlgorithm;
    use dradio_scenario::{AdversarySpec, ProblemSpec, Scenario, TopologySpec};

    fn clique_campaign(n: usize, trials: usize) -> CampaignSpec {
        CampaignSpec::named("sweep-test")
            .seed(1)
            .trials(TrialPolicy::Fixed(trials))
            .group(
                SweepGroup::cell(
                    TopologySpec::Clique { n },
                    GlobalAlgorithm::Bgi,
                    AdversarySpec::StaticNone,
                    ProblemSpec::GlobalFrom(0),
                )
                .rounds(RoundsRule::Fixed(2_000)),
            )
    }

    #[test]
    fn measures_a_simple_global_broadcast() {
        let store = run_campaign(&clique_campaign(16, 5)).unwrap();
        let m = &store.records()[0].measurement;
        assert_eq!(m.rounds.count, 5);
        assert_eq!(m.completion_rate(), 1.0);
        assert!(m.rounds.mean >= 1.0);
        assert!(m.rounds.mean < 2_000.0);
    }

    #[test]
    fn campaign_measurements_equal_direct_runner_measurements() {
        let campaign = clique_campaign(16, 5);
        let store = run_campaign(&campaign).unwrap();
        let scenario = Scenario::on(TopologySpec::Clique { n: 16 })
            .algorithm(GlobalAlgorithm::Bgi)
            .adversary(AdversarySpec::StaticNone)
            .problem(ProblemSpec::GlobalFrom(0))
            .seed(1)
            .max_rounds(2_000)
            .build()
            .unwrap();
        let direct = scenario.run_trials(5).unwrap();
        assert_eq!(
            measurement_for(&store, scenario.spec()).unwrap(),
            &direct,
            "the campaign engine must reproduce ScenarioRunner measurements exactly"
        );
    }

    #[test]
    fn censored_trials_report_the_budget() {
        // Round robin on a line with an absurdly small budget cannot finish.
        let campaign = CampaignSpec::named("censored")
            .seed(2)
            .trials(TrialPolicy::Fixed(3))
            .group(
                SweepGroup::cell(
                    TopologySpec::Line { n: 32 },
                    GlobalAlgorithm::RoundRobin,
                    AdversarySpec::StaticNone,
                    ProblemSpec::GlobalFrom(0),
                )
                .rounds(RoundsRule::Fixed(10)),
            );
        let store = run_campaign(&campaign).unwrap();
        let m = &store.records()[0].measurement;
        assert_eq!(m.completion_rate(), 0.0);
        assert_eq!(m.rounds.mean, 10.0);
        assert_eq!(m.rounds.min, 10.0);
    }

    #[test]
    fn zero_trials_is_an_error_not_a_panic() {
        let err = run_campaign(&clique_campaign(8, 0)).unwrap_err();
        assert!(matches!(err, CampaignError::Spec { .. }), "{err}");
        assert!(err.to_string().contains("zero trials"));
    }

    #[test]
    fn missing_measurements_are_loud() {
        let store = run_campaign(&clique_campaign(16, 2)).unwrap();
        let other = Scenario::on(TopologySpec::Clique { n: 64 })
            .algorithm(GlobalAlgorithm::Bgi)
            .adversary(AdversarySpec::StaticNone)
            .problem(ProblemSpec::GlobalFrom(0))
            .build()
            .unwrap();
        assert!(measurement_for(&store, other.spec()).is_err());
    }
}
