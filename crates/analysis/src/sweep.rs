//! Measuring the round complexity of a scenario over repeated trials.
//!
//! The construction machinery lives in [`dradio_scenario`]: a [`Scenario`]
//! pins down one (topology × algorithm × adversary × problem) combination
//! and [`ScenarioRunner`] fans independent trials out across threads with
//! deterministic per-trial seeds. This module re-exports the measurement
//! types and adds the small conveniences the experiment definitions share.

pub use dradio_scenario::{Measurement, ScenarioRunner, TrialOutcome};

use dradio_scenario::Scenario;

/// Runs `trials` independent trials of `scenario` (in parallel) and
/// summarizes the costs.
///
/// # Panics
///
/// Panics if `trials` is zero; experiment configurations always request at
/// least one trial, so a zero here is a programming error. Callers that need
/// to handle the zero-trial case gracefully should use
/// [`Scenario::run_trials`], which returns an explicit error instead.
pub fn measure_rounds(scenario: &Scenario, trials: usize) -> Measurement {
    scenario
        .run_trials(trials)
        .expect("experiment definitions always measure at least one trial")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dradio_core::algorithms::GlobalAlgorithm;
    use dradio_scenario::{AdversarySpec, ProblemSpec, Scenario, TopologySpec};

    fn clique_scenario(
        n: usize,
        algorithm: GlobalAlgorithm,
        max_rounds: usize,
        seed: u64,
    ) -> Scenario {
        Scenario::on(TopologySpec::Clique { n })
            .algorithm(algorithm)
            .adversary(AdversarySpec::StaticNone)
            .problem(ProblemSpec::GlobalFrom(0))
            .seed(seed)
            .max_rounds(max_rounds)
            .build()
            .expect("valid scenario")
    }

    #[test]
    fn measures_a_simple_global_broadcast() {
        let scenario = clique_scenario(16, GlobalAlgorithm::Bgi, 2_000, 1);
        let m = measure_rounds(&scenario, 5);
        assert_eq!(m.rounds.count, 5);
        assert_eq!(m.completion_rate, 1.0);
        assert!(m.rounds.mean >= 1.0);
        assert!(m.rounds.mean < 2_000.0);
    }

    #[test]
    fn censored_trials_report_the_budget() {
        // Round robin on a line with an absurdly small budget cannot finish.
        let scenario = Scenario::on(TopologySpec::Line { n: 32 })
            .algorithm(GlobalAlgorithm::RoundRobin)
            .adversary(AdversarySpec::StaticNone)
            .problem(ProblemSpec::GlobalFrom(0))
            .seed(2)
            .max_rounds(10)
            .build()
            .expect("valid scenario");
        let m = measure_rounds(&scenario, 3);
        assert_eq!(m.completion_rate, 0.0);
        assert_eq!(m.rounds.mean, 10.0);
        assert_eq!(m.rounds.min, 10.0);
    }

    #[test]
    fn different_seeds_give_varied_costs() {
        let scenario = clique_scenario(32, GlobalAlgorithm::Bgi, 5_000, 3);
        let m = measure_rounds(&scenario, 8);
        assert!(m.rounds.max >= m.rounds.min);
        assert!(m.rounds.std_dev >= 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics_loudly() {
        let scenario = clique_scenario(8, GlobalAlgorithm::Bgi, 100, 4);
        let _ = measure_rounds(&scenario, 0);
    }
}
