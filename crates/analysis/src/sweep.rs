//! Helpers for running a simulation many times and summarizing the cost.

use dradio_graphs::DualGraph;
use dradio_sim::{Assignment, LinkProcess, ProcessFactory, SimConfig, Simulator, StopCondition};

use crate::stats::Summary;

/// Everything needed to measure the round complexity of one (topology,
/// algorithm, adversary, problem) combination.
pub struct MeasureSpec<'a> {
    /// The network to simulate.
    pub dual: &'a DualGraph,
    /// The algorithm (one process per node).
    pub factory: ProcessFactory,
    /// The problem's role assignment.
    pub assignment: Assignment,
    /// Builds a fresh adversary for each trial (adversaries are stateful).
    pub link: Box<dyn Fn() -> Box<dyn LinkProcess> + 'a>,
    /// The completion condition whose first-satisfaction round is measured.
    pub stop: StopCondition,
    /// Number of independent trials.
    pub trials: usize,
    /// Per-trial round budget; trials that do not complete contribute the
    /// budget as a censored observation.
    pub max_rounds: usize,
    /// Base random seed; trial `t` uses `base_seed + t`.
    pub base_seed: u64,
}

/// The result of measuring one specification.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Summary of the per-trial costs (completion round, or the budget for
    /// censored trials).
    pub rounds: Summary,
    /// Fraction of trials that completed within the budget.
    pub completion_rate: f64,
    /// Mean number of collisions per trial (a contention diagnostic).
    pub mean_collisions: f64,
}

/// Runs the specification and summarizes the measured costs.
///
/// # Panics
///
/// Panics if the specification is internally inconsistent (e.g. the
/// assignment does not match the network size); experiment definitions are
/// expected to construct consistent specs.
pub fn measure_rounds(spec: &MeasureSpec<'_>) -> Measurement {
    let mut costs = Vec::with_capacity(spec.trials);
    let mut completed = 0usize;
    let mut collisions = 0usize;
    for trial in 0..spec.trials {
        let sim = Simulator::new(
            spec.dual.clone(),
            spec.factory.clone(),
            spec.assignment.clone(),
            (spec.link)(),
            SimConfig::default()
                .with_seed(spec.base_seed.wrapping_add(trial as u64))
                .with_max_rounds(spec.max_rounds),
        )
        .expect("measurement specification must be internally consistent");
        let outcome = sim.run(spec.stop.clone());
        if outcome.completed {
            completed += 1;
        }
        collisions += outcome.metrics.collisions;
        costs.push(outcome.cost());
    }
    Measurement {
        rounds: Summary::from_counts(&costs),
        completion_rate: completed as f64 / spec.trials.max(1) as f64,
        mean_collisions: collisions as f64 / spec.trials.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dradio_core::algorithms::GlobalAlgorithm;
    use dradio_core::problem::GlobalBroadcastProblem;
    use dradio_graphs::{topology, NodeId};
    use dradio_sim::StaticLinks;

    #[test]
    fn measures_a_simple_global_broadcast() {
        let dual = topology::clique(16);
        let problem = GlobalBroadcastProblem::new(NodeId::new(0));
        let spec = MeasureSpec {
            dual: &dual,
            factory: GlobalAlgorithm::Bgi.factory(16, dual.max_degree()),
            assignment: problem.assignment(16),
            link: Box::new(|| Box::new(StaticLinks::none())),
            stop: problem.stop_condition(),
            trials: 5,
            max_rounds: 2_000,
            base_seed: 1,
        };
        let m = measure_rounds(&spec);
        assert_eq!(m.rounds.count, 5);
        assert_eq!(m.completion_rate, 1.0);
        assert!(m.rounds.mean >= 1.0);
        assert!(m.rounds.mean < 2_000.0);
    }

    #[test]
    fn censored_trials_report_the_budget() {
        // Round robin on a line with an absurdly small budget cannot finish.
        let dual = topology::line(32).unwrap();
        let problem = GlobalBroadcastProblem::new(NodeId::new(0));
        let spec = MeasureSpec {
            dual: &dual,
            factory: GlobalAlgorithm::RoundRobin.factory(32, 2),
            assignment: problem.assignment(32),
            link: Box::new(|| Box::new(StaticLinks::none())),
            stop: problem.stop_condition(),
            trials: 3,
            max_rounds: 10,
            base_seed: 2,
        };
        let m = measure_rounds(&spec);
        assert_eq!(m.completion_rate, 0.0);
        assert_eq!(m.rounds.mean, 10.0);
        assert_eq!(m.rounds.min, 10.0);
    }

    #[test]
    fn different_seeds_give_varied_costs() {
        let dual = topology::clique(32);
        let problem = GlobalBroadcastProblem::new(NodeId::new(0));
        let spec = MeasureSpec {
            dual: &dual,
            factory: GlobalAlgorithm::Bgi.factory(32, dual.max_degree()),
            assignment: problem.assignment(32),
            link: Box::new(|| Box::new(StaticLinks::none())),
            stop: problem.stop_condition(),
            trials: 8,
            max_rounds: 5_000,
            base_seed: 3,
        };
        let m = measure_rounds(&spec);
        // With 8 independent trials of a randomized algorithm the spread is
        // essentially never zero.
        assert!(m.rounds.max >= m.rounds.min);
        assert!(m.rounds.std_dev >= 0.0);
    }
}
