//! Plain-text and CSV result tables.

use std::fmt;

/// A simple result table with a title, column headers, optional caption, and
/// string rows.
///
/// # Example
///
/// ```
/// use dradio_analysis::Table;
/// let mut t = Table::new("demo", vec!["n", "rounds"]);
/// t.push_row(vec!["8".into(), "12.5".into()]);
/// let text = t.render();
/// assert!(text.contains("demo"));
/// assert!(text.contains("12.5"));
/// assert!(t.to_csv().starts_with("n,rounds"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    caption: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<impl Into<String>>) -> Self {
        Table {
            title: title.into(),
            caption: String::new(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Sets a caption printed under the table (e.g. the paper's claim the
    /// table should be compared against).
    pub fn with_caption(mut self, caption: impl Into<String>) -> Self {
        self.caption = caption.into();
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The caption (possibly empty).
    pub fn caption(&self) -> &str {
        &self.caption
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Appends a row; short rows are padded with empty cells, long rows are
    /// truncated to the header width.
    pub fn push_row(&mut self, mut row: Vec<String>) {
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Renders an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("| ");
            for (i, cell) in cells.iter().enumerate() {
                s.push_str(&format!("{:<width$} | ", cell, width = widths[i]));
            }
            s.trim_end().to_string()
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        if !self.caption.is_empty() {
            out.push_str(&format!("({})\n", self.caption));
        }
        out
    }

    /// Renders the table as CSV (headers first, no title or caption).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("results", vec!["n", "rounds", "model"]);
        t.push_row(vec!["16".into(), "42".into(), "log^2 n".into()]);
        t.push_row(vec!["32".into(), "55".into()]); // short row gets padded
        t
    }

    #[test]
    fn rows_are_padded_and_truncated() {
        let mut t = sample();
        t.push_row(vec!["a".into(), "b".into(), "c".into(), "extra".into()]);
        assert!(t.rows().iter().all(|r| r.len() == 3));
    }

    #[test]
    fn render_contains_all_cells_and_caption() {
        let t = sample().with_caption("paper claims O(log^2 n)");
        let text = t.render();
        for needle in ["results", "rounds", "42", "55", "paper claims"] {
            assert!(text.contains(needle), "missing {needle}");
        }
        assert_eq!(t.title(), "results");
        assert_eq!(t.caption(), "paper claims O(log^2 n)");
        assert_eq!(t.to_string(), t.render());
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("csv", vec!["a", "b"]);
        t.push_row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    fn headers_accessible() {
        let t = sample();
        assert_eq!(
            t.headers(),
            &["n".to_string(), "rounds".to_string(), "model".to_string()]
        );
    }
}
