//! E1 — static protocol model baselines (Figure 1, row 4).
//!
//! Times single global/local broadcast executions in the static model; the
//! full sweep (and the table the paper row corresponds to) is produced by
//! `cargo run -p dradio-bench --bin repro`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dradio_bench::{adversary, run_global_once};
use dradio_core::algorithms::GlobalAlgorithm;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_static_baseline");
    group.sample_size(10);
    for n in [64usize, 128, 256] {
        group.bench_with_input(BenchmarkId::new("bgi_clique", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_global_once(n, GlobalAlgorithm::Bgi, adversary("none", n), true, seed)
            });
        });
        group.bench_with_input(BenchmarkId::new("round_robin_clique", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_global_once(
                    n,
                    GlobalAlgorithm::RoundRobin,
                    adversary("none", n),
                    true,
                    seed,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
