//! E2 — permuted-decay global broadcast under oblivious adversaries
//! (Theorem 4.1, Figure 1 row 3, global column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dradio_bench::{adversary, run_global_once};
use dradio_core::algorithms::GlobalAlgorithm;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_global_oblivious");
    group.sample_size(10);
    for adv in ["iid", "all", "decay-aware"] {
        for n in [64usize, 128] {
            group.bench_with_input(
                BenchmarkId::new(format!("permuted_dual_clique_{adv}"), n),
                &n,
                |b, &n| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        run_global_once(
                            n,
                            GlobalAlgorithm::Permuted,
                            adversary(adv, n),
                            false,
                            seed,
                        )
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
