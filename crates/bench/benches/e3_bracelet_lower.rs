//! E3 — the bracelet-network oblivious local broadcast lower bound
//! (Theorem 4.3, Figure 1 row 3, local column, general graphs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dradio_bench::run_bracelet_once;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_bracelet_lower");
    group.sample_size(10);
    for k in [3usize, 4, 6] {
        group.bench_with_input(BenchmarkId::new("attacked_static_decay", k), &k, |b, &k| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_bracelet_once(k, seed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
