//! E4 — geographic local broadcast in the oblivious model (Theorem 4.6,
//! Figure 1 row 3, local column, geographic graphs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dradio_bench::run_geo_local_once;
use dradio_core::algorithms::LocalAlgorithm;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_geo_local");
    group.sample_size(10);
    for n in [60usize, 120] {
        for algorithm in [LocalAlgorithm::Geo, LocalAlgorithm::StaticDecay] {
            group.bench_with_input(
                BenchmarkId::new(format!("{}_geometric", algorithm.name()), n),
                &n,
                |b, &n| {
                    let mut seed = 0u64;
                    b.iter(|| {
                        seed += 1;
                        run_geo_local_once(n, algorithm, seed)
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
