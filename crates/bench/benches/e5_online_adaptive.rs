//! E5 — the online adaptive lower bound on the dual clique (Theorem 3.1,
//! Figure 1 row 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dradio_bench::{adversary, run_global_once};
use dradio_core::algorithms::GlobalAlgorithm;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_online_adaptive");
    group.sample_size(10);
    for n in [32usize, 64] {
        group.bench_with_input(BenchmarkId::new("permuted_attacked", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_global_once(
                    n,
                    GlobalAlgorithm::Permuted,
                    adversary("online", n),
                    false,
                    seed,
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("permuted_benign", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_global_once(
                    n,
                    GlobalAlgorithm::Permuted,
                    adversary("none", n),
                    false,
                    seed,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
