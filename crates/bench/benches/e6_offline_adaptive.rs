//! E6 — the offline adaptive row of Figure 1 (row 1): omniscient blocking vs
//! the round-robin fallback.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dradio_bench::{adversary, run_global_once};
use dradio_core::algorithms::GlobalAlgorithm;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_offline_adaptive");
    group.sample_size(10);
    for n in [32usize, 64] {
        group.bench_with_input(BenchmarkId::new("permuted_blocked", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_global_once(
                    n,
                    GlobalAlgorithm::Permuted,
                    adversary("offline", n),
                    false,
                    seed,
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("round_robin_blocked", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_global_once(
                    n,
                    GlobalAlgorithm::RoundRobin,
                    adversary("offline", n),
                    false,
                    seed,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
