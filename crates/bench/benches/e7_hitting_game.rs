//! E7 — the β-hitting game (Lemma 3.2) and the Theorem 3.1 reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dradio_bench::{run_hitting_once, run_reduction_once};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_hitting_game");
    group.sample_size(20);
    for beta in [256u64, 1024, 4096] {
        group.bench_with_input(BenchmarkId::new("sweep_player", beta), &beta, |b, &beta| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_hitting_once(beta, seed)
            });
        });
    }
    for beta in [16usize, 32, 64] {
        group.bench_with_input(
            BenchmarkId::new("reduction_bgi", beta),
            &beta,
            |b, &beta| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    run_reduction_once(beta, seed)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
