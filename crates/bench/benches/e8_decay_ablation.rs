//! E8 — ablation: fixed Decay vs Permuted Decay under the schedule-aware
//! oblivious adversary (Section 4.1 / Lemma 4.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dradio_bench::{adversary, run_global_once};
use dradio_core::algorithms::GlobalAlgorithm;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_decay_ablation");
    group.sample_size(10);
    for n in [64usize, 128] {
        group.bench_with_input(BenchmarkId::new("fixed_decay_attacked", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_global_once(
                    n,
                    GlobalAlgorithm::Bgi,
                    adversary("decay-aware", n),
                    false,
                    seed,
                )
            });
        });
        group.bench_with_input(
            BenchmarkId::new("permuted_decay_attacked", n),
            &n,
            |b, &n| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    run_global_once(
                        n,
                        GlobalAlgorithm::Permuted,
                        adversary("decay-aware", n),
                        false,
                        seed,
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
