//! Engine hot-path benches.
//!
//! * `round/*` times a fixed number of simulator rounds (steady-state
//!   uniform-probability broadcasters, so every seed runs exactly the same
//!   number of rounds) on clique, grid, and random geometric topologies at
//!   n ∈ {64, 256, 1024}. The printed mean is for `ROUNDS` rounds; divide by
//!   `ROUNDS` for the per-round cost.
//! * `trials_per_sec/*` times many *short* executions (the shape of most
//!   campaign cells) through a reused [`dradio_sim::TrialExecutor`] versus a
//!   fresh simulator per trial — isolating per-trial setup amortization,
//!   which is what dominates once the round loop itself is cheap. The
//!   printed mean is for `TRIALS` trials; trials/sec = `TRIALS` / mean. The
//!   `*_curve` variant runs the same reused-executor trials under
//!   `RecordMode::CollisionsOnly` and streams each trial's collision curve
//!   into a `ContentionCurve` — the cost a `"curve": true` campaign cell
//!   pays over the history-free default, pinning the cheap-by-default
//!   instrumentation claim with numbers. The `*_batch` variant runs a full
//!   64-trial word through the bit-sliced [`dradio_sim::BatchExecutor`]
//!   (trials/sec = `BATCH_TRIALS` / mean) — the speedup the `--batch`
//!   campaign flag buys on oblivious, history-free cells.
//! * `campaign/*` times the campaign orchestration overhead per cell:
//!   expansion, content-hash keying, and store appends — the costs that must
//!   stay invisible next to the simulation itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dradio_bench::{engine_batch_executor, engine_executor, engine_workload};
use dradio_campaign::{CampaignSpec, CellRecord, ResultStore, RoundsRule, SweepGroup, TrialPolicy};
use dradio_core::algorithms::GlobalAlgorithm;
use dradio_scenario::{
    AdversarySpec, Completion, ContentionCurve, Measurement, ProblemSpec, RecordMode, Summary,
    TopologySpec,
};
use dradio_sim::derive_stream_seed;

/// Rounds per measured workload run.
const ROUNDS: usize = 32;

/// Transmit probability of every node (steady contention, no completion).
const P: f64 = 0.1;

fn grid_side(n: usize) -> usize {
    (n as f64).sqrt().round() as usize
}

fn topologies(n: usize) -> Vec<(&'static str, TopologySpec, AdversarySpec)> {
    vec![
        (
            "clique",
            TopologySpec::Clique { n },
            AdversarySpec::StaticNone,
        ),
        (
            "grid",
            TopologySpec::Grid {
                cols: grid_side(n),
                rows: grid_side(n),
            },
            AdversarySpec::StaticNone,
        ),
        (
            "random",
            TopologySpec::RandomGeometric {
                n,
                side: (n as f64 / 8.0).sqrt().max(1.5),
                r: 1.5,
                seed: 9,
            },
            AdversarySpec::Iid { p: 0.5 },
        ),
    ]
}

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_round");
    group.sample_size(10);
    for n in [64usize, 256, 1024] {
        for (name, topology, adversary) in topologies(n) {
            // Topology generation is hoisted out of the timed region: the
            // bench times the engine (simulator construction + ROUNDS
            // rounds), not the graph builders.
            let built = topology.build().expect("bench topology builds");
            for (suffix, mode) in [("full", RecordMode::Full), ("none", RecordMode::None)] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{name}_{suffix}"), n),
                    &n,
                    |b, _| {
                        let mut seed = 0u64;
                        b.iter(|| {
                            seed += 1;
                            engine_workload(&built, &adversary, P, ROUNDS, seed, mode)
                                .metrics
                                .deliveries
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

/// Rounds per trial in the trials/sec group: short on purpose, so per-trial
/// setup (the quantity the executor amortizes away) dominates the fresh
/// baseline the way it dominates short campaign cells.
const SHORT_ROUNDS: usize = 4;

/// Trials per measured iteration of the trials/sec group.
const TRIALS: usize = 16;

/// Trials per measured iteration of the `*_batch` variants: one full 64-lane
/// word, so the bit-sliced executor is benched at its packing density.
const BATCH_TRIALS: usize = 64;

fn bench_trials_per_sec(c: &mut Criterion) {
    let mut group = c.benchmark_group("trials_per_sec");
    group.sample_size(10);
    for n in [64usize, 256, 1024] {
        for (name, topology, adversary) in topologies(n) {
            let built = topology.build().expect("bench topology builds");
            // Reused: one executor, per-trial cost is the execution alone.
            group.bench_with_input(BenchmarkId::new(format!("{name}_reused"), n), &n, |b, _| {
                let mut executor = engine_executor(&built, &adversary, P, SHORT_ROUNDS);
                let mut batch = 0u64;
                b.iter(|| {
                    batch += 1;
                    (0..TRIALS as u64)
                        .map(|t| {
                            let seed = derive_stream_seed(batch, t);
                            executor.execute(seed, RecordMode::None).metrics.deliveries
                        })
                        .sum::<usize>()
                });
            });
            // Batch: the bit-sliced executor retiring BATCH_TRIALS trials as
            // lane groups of <= 64 — the same trials the scalar paths run
            // one at a time (identical per-lane outcomes, pinned by the lib
            // tests). trials/sec = BATCH_TRIALS / mean here versus
            // TRIALS / mean for `_reused`; the README table normalizes.
            group.bench_with_input(BenchmarkId::new(format!("{name}_batch"), n), &n, |b, _| {
                let mut executor = engine_batch_executor(&built, &adversary, P, SHORT_ROUNDS);
                let mut batch = 0u64;
                b.iter(|| {
                    batch += 1;
                    let seeds: Vec<u64> = (0..BATCH_TRIALS as u64)
                        .map(|t| derive_stream_seed(batch, t))
                        .collect();
                    seeds
                        .chunks(dradio_sim::MAX_LANES)
                        .flat_map(|lanes| {
                            executor
                                .execute_group(lanes, RecordMode::None)
                                .expect("oblivious bench adversary is batchable")
                        })
                        .map(|outcome| outcome.metrics.deliveries)
                        .sum::<usize>()
                });
            });
            // Curve: the reused executor under CollisionsOnly recording,
            // with each trial's per-round collision counts streamed into a
            // shared contention curve — what a curve-requesting campaign
            // cell pays per trial over the history-free default.
            group.bench_with_input(BenchmarkId::new(format!("{name}_curve"), n), &n, |b, _| {
                let mut executor = engine_executor(&built, &adversary, P, SHORT_ROUNDS);
                let mut batch = 0u64;
                b.iter(|| {
                    batch += 1;
                    let mut curve = ContentionCurve::new();
                    let total: usize = (0..TRIALS as u64)
                        .map(|t| {
                            let seed = derive_stream_seed(batch, t);
                            let outcome = executor.execute(seed, RecordMode::CollisionsOnly);
                            curve.push_trial(&outcome.collisions_per_round);
                            outcome.metrics.deliveries
                        })
                        .sum();
                    total + curve.len()
                });
            });
            // Fresh: the pre-reuse fan-out shape — every trial copies the
            // network and constructs a simulator from scratch (identical
            // outcomes, pinned by the lib tests).
            group.bench_with_input(BenchmarkId::new(format!("{name}_fresh"), n), &n, |b, _| {
                let mut batch = 0u64;
                b.iter(|| {
                    batch += 1;
                    (0..TRIALS as u64)
                        .map(|t| {
                            let seed = derive_stream_seed(batch, t);
                            let per_trial =
                                dradio_scenario::BuiltTopology::plain(built.dual.as_ref().clone());
                            engine_workload(
                                &per_trial,
                                &adversary,
                                P,
                                SHORT_ROUNDS,
                                seed,
                                RecordMode::None,
                            )
                            .metrics
                            .deliveries
                        })
                        .sum::<usize>()
                });
            });
        }
    }
    group.finish();
}

fn example_sweep() -> CampaignSpec {
    CampaignSpec::named("bench-sweep")
        .seed(3)
        .trials(TrialPolicy::Fixed(2))
        .group(
            SweepGroup::product(
                (3..9).map(|k| TopologySpec::Clique { n: 1 << k }).collect(),
                vec![
                    GlobalAlgorithm::Bgi.into(),
                    GlobalAlgorithm::Permuted.into(),
                    GlobalAlgorithm::RoundRobin.into(),
                ],
                vec![AdversarySpec::StaticNone, AdversarySpec::Iid { p: 0.5 }],
                vec![ProblemSpec::GlobalFrom(0)],
            )
            .rounds(RoundsRule::PerNode {
                per_node: 100,
                base: 1_000,
                min_nodes: 8,
            }),
        )
}

fn bench_campaign_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_overhead");
    group.sample_size(50);

    let spec = example_sweep();
    let cells = spec.expand().expect("bench sweep expands");
    group.bench_with_input(
        BenchmarkId::new("expand", cells.len()),
        &cells.len(),
        |b, _| {
            b.iter(|| spec.expand().expect("bench sweep expands").len());
        },
    );

    group.bench_with_input(
        BenchmarkId::new("key", cells.len()),
        &cells.len(),
        |b, _| {
            b.iter(|| cells.iter().map(|cell| cell.key().len()).sum::<usize>());
        },
    );

    let records: Vec<CellRecord> = cells
        .iter()
        .map(|cell| CellRecord {
            key: cell.key(),
            cell: cell.clone(),
            trials_run: 2,
            measurement: Measurement {
                rounds: Summary::from_counts(&[10, 12]),
                completion: Completion {
                    completed: 2,
                    trials: 2,
                },
                mean_collisions: 3.5,
                contention: None,
            },
        })
        .collect();
    group.bench_with_input(
        BenchmarkId::new("store_append", records.len()),
        &records.len(),
        |b, _| {
            b.iter(|| {
                let mut store = ResultStore::in_memory();
                for record in &records {
                    store.append(record.clone()).expect("in-memory append");
                }
                store.len()
            });
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_rounds,
    bench_trials_per_sec,
    bench_campaign_overhead
);
criterion_main!(benches);
