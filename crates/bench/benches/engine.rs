//! Engine hot-path benches.
//!
//! * `round/*` times a fixed number of simulator rounds (steady-state
//!   uniform-probability broadcasters, so every seed runs exactly the same
//!   number of rounds) on clique, grid, and random geometric topologies at
//!   n ∈ {64, 256, 1024}. The printed mean is for `ROUNDS` rounds; divide by
//!   `ROUNDS` for the per-round cost.
//! * `campaign/*` times the campaign orchestration overhead per cell:
//!   expansion, content-hash keying, and store appends — the costs that must
//!   stay invisible next to the simulation itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dradio_bench::engine_workload;
use dradio_campaign::{CampaignSpec, CellRecord, ResultStore, RoundsRule, SweepGroup, TrialPolicy};
use dradio_core::algorithms::GlobalAlgorithm;
use dradio_scenario::{AdversarySpec, Measurement, ProblemSpec, RecordMode, Summary, TopologySpec};

/// Rounds per measured workload run.
const ROUNDS: usize = 32;

/// Transmit probability of every node (steady contention, no completion).
const P: f64 = 0.1;

fn grid_side(n: usize) -> usize {
    (n as f64).sqrt().round() as usize
}

fn topologies(n: usize) -> Vec<(&'static str, TopologySpec, AdversarySpec)> {
    vec![
        (
            "clique",
            TopologySpec::Clique { n },
            AdversarySpec::StaticNone,
        ),
        (
            "grid",
            TopologySpec::Grid {
                cols: grid_side(n),
                rows: grid_side(n),
            },
            AdversarySpec::StaticNone,
        ),
        (
            "random",
            TopologySpec::RandomGeometric {
                n,
                side: (n as f64 / 8.0).sqrt().max(1.5),
                r: 1.5,
                seed: 9,
            },
            AdversarySpec::Iid { p: 0.5 },
        ),
    ]
}

fn bench_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_round");
    group.sample_size(10);
    for n in [64usize, 256, 1024] {
        for (name, topology, adversary) in topologies(n) {
            // Topology generation is hoisted out of the timed region: the
            // bench times the engine (simulator construction + ROUNDS
            // rounds), not the graph builders.
            let built = topology.build().expect("bench topology builds");
            for (suffix, mode) in [("full", RecordMode::Full), ("none", RecordMode::None)] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{name}_{suffix}"), n),
                    &n,
                    |b, _| {
                        let mut seed = 0u64;
                        b.iter(|| {
                            seed += 1;
                            engine_workload(&built, &adversary, P, ROUNDS, seed, mode)
                                .metrics
                                .deliveries
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

fn example_sweep() -> CampaignSpec {
    CampaignSpec::named("bench-sweep")
        .seed(3)
        .trials(TrialPolicy::Fixed(2))
        .group(
            SweepGroup::product(
                (3..9).map(|k| TopologySpec::Clique { n: 1 << k }).collect(),
                vec![
                    GlobalAlgorithm::Bgi.into(),
                    GlobalAlgorithm::Permuted.into(),
                    GlobalAlgorithm::RoundRobin.into(),
                ],
                vec![AdversarySpec::StaticNone, AdversarySpec::Iid { p: 0.5 }],
                vec![ProblemSpec::GlobalFrom(0)],
            )
            .rounds(RoundsRule::PerNode {
                per_node: 100,
                base: 1_000,
                min_nodes: 8,
            }),
        )
}

fn bench_campaign_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_overhead");
    group.sample_size(50);

    let spec = example_sweep();
    let cells = spec.expand().expect("bench sweep expands");
    group.bench_with_input(
        BenchmarkId::new("expand", cells.len()),
        &cells.len(),
        |b, _| {
            b.iter(|| spec.expand().expect("bench sweep expands").len());
        },
    );

    group.bench_with_input(
        BenchmarkId::new("key", cells.len()),
        &cells.len(),
        |b, _| {
            b.iter(|| cells.iter().map(|cell| cell.key().len()).sum::<usize>());
        },
    );

    let records: Vec<CellRecord> = cells
        .iter()
        .map(|cell| CellRecord {
            key: cell.key(),
            cell: cell.clone(),
            trials_run: 2,
            measurement: Measurement {
                rounds: Summary::from_counts(&[10, 12]),
                completion_rate: 1.0,
                mean_collisions: 3.5,
            },
        })
        .collect();
    group.bench_with_input(
        BenchmarkId::new("store_append", records.len()),
        &records.len(),
        |b, _| {
            b.iter(|| {
                let mut store = ResultStore::in_memory();
                for record in &records {
                    store.append(record.clone()).expect("in-memory append");
                }
                store.len()
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_rounds, bench_campaign_overhead);
criterion_main!(benches);
