//! `repro` — regenerate every experiment table of the PODC 2013 reproduction,
//! run an ad-hoc serialized scenario, or drive a persistent measurement
//! campaign.
//!
//! Usage:
//!
//! ```text
//! cargo run -p dradio-bench --bin repro --release [-- OPTIONS]
//! cargo run -p dradio-bench --bin repro --release -- campaign <run|resume|report|compact> \
//!     --campaign <json-or-path> [--store <path>]
//!
//! OPTIONS:
//!     --smoke             tiny sizes, 1 trial (sanity check)
//!     --quick             moderate sizes, 3 trials (default)
//!     --full              larger sizes, 8 trials
//!     --only <ID>         run only the experiment with this id (e.g. E5)
//!     --csv               also print each table as CSV
//!     --list              list experiments and exit
//!     --scenario <JSON>   run a serialized ScenarioSpec instead of the
//!                         experiments (use --trials to repeat it)
//!     --trials <N>        trials for --scenario (default 8)
//!     --example-scenario  print a ScenarioSpec JSON template and exit
//!     --example-campaign  print a CampaignSpec JSON template and exit
//!
//! CAMPAIGN SUBCOMMANDS (all but worker take --campaign <inline JSON or path>):
//!     campaign check      statically validate the spec without running a
//!                         cell: duplicate cells, degenerate or unreachable
//!                         adaptive stop targets, and a per-group worst-case
//!                         budget estimate — rounds and peak topology memory
//!                         under the dense/CSR backend heuristic (exits
//!                         non-zero on warnings)
//!     campaign run        execute every cell missing from the store
//!                         (creates the store; resumes it if it exists)
//!     campaign resume     like run, but requires the store to exist already
//!     campaign report     render the stored results as a table (no execution)
//!     campaign compact    rewrite the store keeping only records in the
//!                         spec's expansion, in expansion order (refuses to
//!                         touch a store that fails its integrity checks)
//!     campaign fleet      serve the pending cells to worker *processes*
//!                         (--workers N) with worker-pull scheduling, each
//!                         worker appending to its own shard store
//!                         <store>.shardK.jsonl; refuses specs that fail
//!                         `campaign check`, restarts crashed/hung/corrupt
//!                         workers (capped backoff, per-shard budget),
//!                         re-queues expired leases, and is resumable
//!     campaign worker     serve one fleet shard over stdin/stdout (spawned
//!                         by `campaign fleet`; not for interactive use)
//!     campaign merge      union shard stores into --store, in spec expansion
//!                         order, byte-identical to a single-process run
//!                         (shard paths are positional arguments)
//!     campaign fsck       read-only integrity inspection of --store: torn
//!                         tail location, key integrity, duplicate keys,
//!                         malformed lines; never modifies the file (exits
//!                         non-zero on findings)
//!     --store <path>      JSONL result store (default: <name>.campaign.jsonl)
//!     --threads <N>       run/resume/fleet: cap cell-runner threads (fleet
//!                         forwards the cap to every worker)
//!     --batch             run/resume/worker/fleet: bit-sliced batch trial
//!                         execution — up to 64 trials per word pass;
//!                         unbatchable cells (adaptive adversaries, history
//!                         recording) fall back to scalar, and results are
//!                         byte-identical either way (fleet forwards the
//!                         flag to every worker)
//!     --mem-budget <SZ>   check/fleet: per-cell topology memory ceiling —
//!                         plain bytes or a binary-suffixed size ("512MiB",
//!                         "4GiB"); any cell whose estimated topology
//!                         footprint exceeds it draws a warning, with a
//!                         pointer at the csr backend when forcing it on the
//!                         group would fit
//!     --workers <N>       fleet: worker processes to spawn (default 2)
//!     --hang-timeout <S>  fleet: declare a silent worker dead after S seconds
//!     --lease-timeout <S> fleet: re-queue an assigned cell not acknowledged
//!                         within S seconds (default: only on worker death)
//!     --ready-timeout <S> fleet: kill a worker that has not completed the
//!                         Ready handshake within S seconds of spawning
//!                         (default 30; distinct from --hang-timeout — no
//!                         frames at all usually means a broken worker)
//!     --restart-budget <N> fleet: supervised restarts per shard before the
//!                         shard's work degrades to re-assignment only
//!                         (default 2; 0 disables restarts)
//!     --chaos <plan>      fleet: arm the deterministic fault-injection
//!                         harness — a u64 derives a seeded FaultPlan over
//!                         the fleet, `{`/`[` is inline plan JSON, anything
//!                         else is a path to plan JSON; the merged store
//!                         must still match a single-process run byte for
//!                         byte
//!     --worker-exit-after <N>  fleet: sugar for a --chaos plan that kills
//!                         worker 0 after N fresh cells (smoke tests)
//!     --progress          emit a `cells done/total, cells/sec, ETA` line to
//!                         stderr after each committed cell
//!     --curves            with report: also render each stored
//!                         contention-over-time curve (cells measured with
//!                         "curve": true) as a bucketed table
//!
//! STATIC ANALYSIS:
//!     repro lint [--fix-hints]
//!                         run the dradio-lint determinism & invariant pass
//!                         over the workspace (same rules as CI)
//!
//! MICRO-BENCH:
//!     repro bench [--json] [--trials <N>]
//!                         quick batch-vs-scalar trials/sec comparison on the
//!                         engine workloads (clique / grid / random-geo at
//!                         three sizes); --json also writes BENCH_batch.json
//!     repro bench --scale [--scale-n <N>]
//!                         million-node broadcast on the streaming CSR
//!                         backend: a grid and a random-geometric network at
//!                         ~N nodes (default 1,000,000), built row-by-row
//!                         without the dense bitmatrix, with build/run
//!                         timings, dense-vs-CSR memory estimates, and peak
//!                         RSS; writes BENCH_sparse.json
//! ```

use std::env;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use dradio_analysis::experiments::{self, ExperimentConfig};
use dradio_analysis::Table;
use dradio_campaign::{
    CampaignRunner, CampaignSpec, ResultStore, RoundsRule, StopRule, SweepGroup, TrialPolicy,
};
use dradio_core::algorithms::GlobalAlgorithm;
use dradio_fleet::{
    run_fleet, run_worker, shard_store_path, FaultKind, FaultPlan, FleetConfig, WorkerConfig,
    WorkerFault,
};
use dradio_scenario::{AdversarySpec, ProblemSpec, ScenarioSpec, TopologySpec};

fn run_scenario(json: &str, trials: usize) -> ExitCode {
    let spec: ScenarioSpec = match serde_json::from_str(json) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("could not parse the scenario spec: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scenario = match spec.build() {
        Ok(scenario) => scenario,
        Err(e) => {
            eprintln!("could not build the scenario: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("scenario: {scenario}");
    match scenario.run_trials(trials) {
        Ok(m) => {
            println!("trials:      {trials}");
            println!("rounds:      {}", m.rounds);
            println!("completion:  {}", m.completion);
            println!("collisions:  {:.1} per trial", m.mean_collisions);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("could not run the scenario: {e}");
            ExitCode::FAILURE
        }
    }
}

fn example_scenario() -> String {
    let spec = ScenarioSpec {
        topology: TopologySpec::DualClique { n: 64 },
        algorithm: GlobalAlgorithm::Permuted.into(),
        adversary: AdversarySpec::Iid { p: 0.5 },
        problem: ProblemSpec::GlobalFrom(0),
        seed: 1,
        max_rounds: None,
        collision_detection: false,
    };
    serde_json::to_string_pretty(&spec).expect("specs always serialize")
}

/// A small 2-axis sweep (network size × algorithm) with adaptive trial
/// allocation — the template for `--campaign`, also exercised by CI. The
/// second group showcases the completion-targeted stop rule
/// ([`StopRule::CompletionCi`]) and contention-curve streaming
/// (`"curve": true`, reported by `campaign report --curves`).
fn example_campaign() -> CampaignSpec {
    CampaignSpec::named("example-clique-sweep")
        .seed(1)
        .trials(TrialPolicy::Adaptive {
            min: 2,
            max: 8,
            relative_width: 0.2,
            stop: StopRule::MeanCostCi,
        })
        .group(
            SweepGroup::product(
                vec![
                    TopologySpec::DualClique { n: 16 },
                    TopologySpec::DualClique { n: 32 },
                ],
                vec![
                    GlobalAlgorithm::Bgi.into(),
                    GlobalAlgorithm::Permuted.into(),
                ],
                vec![AdversarySpec::Iid { p: 0.5 }],
                vec![ProblemSpec::GlobalFrom(0)],
            )
            .rounds(RoundsRule::PerNode {
                per_node: 60,
                base: 0,
                min_nodes: 16,
            }),
        )
        .group(
            SweepGroup::cell(
                TopologySpec::DualClique { n: 16 },
                GlobalAlgorithm::Permuted,
                AdversarySpec::Iid { p: 0.5 },
                ProblemSpec::GlobalFrom(0),
            )
            .trials(TrialPolicy::Adaptive {
                min: 2,
                max: 16,
                relative_width: 0.25,
                stop: StopRule::CompletionCi,
            })
            .rounds(RoundsRule::Fixed(960))
            .curve(true),
        )
}

/// Renders a store's records as the standard result table.
fn campaign_table(spec: &CampaignSpec, store: &ResultStore) -> Table {
    let mut table = Table::new(
        format!("campaign {:?} ({} cells measured)", spec.name, store.len()),
        vec![
            "topology",
            "algorithm",
            "adversary",
            "problem",
            "seed",
            "trials",
            "rounds (mean ± ci95)",
            "median",
            "p95",
            "completion (wilson 95%)",
        ],
    );
    for record in store.records() {
        let s = &record.cell.scenario;
        let m = &record.measurement;
        table.push_row(vec![
            s.topology.label(),
            s.algorithm.name().to_string(),
            s.adversary.label(),
            s.problem.label(),
            s.seed.to_string(),
            record.trials_run.to_string(),
            format!("{:.1} ± {:.1}", m.rounds.mean, m.rounds.ci95_half_width()),
            format!("{:.1}", m.rounds.median),
            format!("{:.1}", m.rounds.p95),
            m.completion.to_string(),
        ]);
    }
    table
}

/// Parses a memory size: plain bytes, or a binary-suffixed form like
/// "512MiB" / "4GiB" (case-insensitive; a fractional number is fine).
fn parse_mem_size(raw: &str) -> Option<u64> {
    let s = raw.trim();
    if let Ok(bytes) = s.parse::<u64>() {
        return Some(bytes);
    }
    let lower = s.to_ascii_lowercase();
    let (num, mult) = if let Some(v) = lower.strip_suffix("kib") {
        (v, 1u64 << 10)
    } else if let Some(v) = lower.strip_suffix("mib") {
        (v, 1 << 20)
    } else if let Some(v) = lower.strip_suffix("gib") {
        (v, 1 << 30)
    } else if let Some(v) = lower.strip_suffix("tib") {
        (v, 1 << 40)
    } else {
        return None;
    };
    let value: f64 = num.trim().parse().ok()?;
    if !value.is_finite() || value < 0.0 {
        return None;
    }
    Some((value * mult as f64) as u64)
}

/// Loads a campaign spec from inline JSON or a file path.
fn load_campaign(arg: &str) -> Result<CampaignSpec, String> {
    let json = if arg.trim_start().starts_with('{') {
        arg.to_string()
    } else {
        std::fs::read_to_string(arg).map_err(|e| format!("cannot read {arg}: {e}"))?
    };
    serde_json::from_str(&json).map_err(|e| format!("could not parse the campaign spec: {e}"))
}

fn campaign_command(args: &[String]) -> ExitCode {
    let Some(action) = args.first().map(String::as_str) else {
        eprintln!(
            "campaign needs an action: check | run | resume | report | compact | fleet | \
             worker | merge | fsck"
        );
        return ExitCode::FAILURE;
    };
    if !matches!(
        action,
        "check" | "run" | "resume" | "report" | "compact" | "fleet" | "worker" | "merge" | "fsck"
    ) {
        eprintln!(
            "unknown campaign action {action}; use check, run, resume, report, compact, \
             fleet, worker, merge, or fsck"
        );
        return ExitCode::FAILURE;
    }
    let mut campaign_arg: Option<String> = None;
    let mut store_arg: Option<String> = None;
    let mut csv = false;
    let mut progress = false;
    let mut curves = false;
    let mut threads = 0usize;
    let mut batch = false;
    let mut workers = 2usize;
    let mut shard = 0usize;
    let mut faults_arg: Option<String> = None;
    let mut chaos_arg: Option<String> = None;
    let mut worker_exit_after: Option<usize> = None;
    let mut hang_timeout: Option<Duration> = None;
    let mut lease_timeout: Option<Duration> = None;
    let mut ready_timeout: Option<Duration> = None;
    let mut restart_budget = 2usize;
    let mut mem_budget: Option<u64> = None;
    let mut shard_paths: Vec<PathBuf> = Vec::new();
    let mut iter = args[1..].iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--campaign" => match iter.next() {
                Some(v) => campaign_arg = Some(v.clone()),
                None => {
                    eprintln!("--campaign requires a JSON string or file path");
                    return ExitCode::FAILURE;
                }
            },
            "--store" => match iter.next() {
                Some(v) => store_arg = Some(v.clone()),
                None => {
                    eprintln!("--store requires a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--csv" => csv = true,
            "--progress" => progress = true,
            "--curves" => curves = true,
            "--batch" => batch = true,
            "--threads" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => threads = n,
                _ => {
                    eprintln!("--threads requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--workers" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => workers = n,
                _ => {
                    eprintln!("--workers requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--shard" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => shard = n,
                None => {
                    eprintln!("--shard requires a shard index");
                    return ExitCode::FAILURE;
                }
            },
            "--faults" => match iter.next() {
                Some(v) => faults_arg = Some(v.clone()),
                None => {
                    eprintln!("--faults requires a JSON list of worker faults");
                    return ExitCode::FAILURE;
                }
            },
            "--chaos" => match iter.next() {
                Some(v) => chaos_arg = Some(v.clone()),
                None => {
                    eprintln!("--chaos requires a seed, inline FaultPlan JSON, or a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--worker-exit-after" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => worker_exit_after = Some(n),
                _ => {
                    eprintln!("--worker-exit-after requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--restart-budget" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) => restart_budget = n,
                None => {
                    eprintln!("--restart-budget requires an integer (0 disables restarts)");
                    return ExitCode::FAILURE;
                }
            },
            "--hang-timeout" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(s) if s > 0.0 => hang_timeout = Some(Duration::from_secs_f64(s)),
                _ => {
                    eprintln!("--hang-timeout requires a positive number of seconds");
                    return ExitCode::FAILURE;
                }
            },
            "--lease-timeout" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(s) if s > 0.0 => lease_timeout = Some(Duration::from_secs_f64(s)),
                _ => {
                    eprintln!("--lease-timeout requires a positive number of seconds");
                    return ExitCode::FAILURE;
                }
            },
            "--mem-budget" => match iter.next().and_then(|v| parse_mem_size(v)) {
                Some(bytes) if bytes > 0 => mem_budget = Some(bytes),
                _ => {
                    eprintln!(
                        "--mem-budget requires a positive size: plain bytes or a \
                         binary-suffixed form like 512MiB or 4GiB"
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--ready-timeout" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(s) if s > 0.0 => ready_timeout = Some(Duration::from_secs_f64(s)),
                _ => {
                    eprintln!("--ready-timeout requires a positive number of seconds");
                    return ExitCode::FAILURE;
                }
            },
            other if !other.starts_with('-') && action == "merge" => {
                shard_paths.push(PathBuf::from(other));
            }
            other => {
                eprintln!("unknown campaign option {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    if action == "worker" {
        // A worker's stdout carries protocol frames for its coordinator —
        // nothing human-readable goes there. The cells to run arrive over
        // the wire, so no --campaign is needed.
        let Some(store) = store_arg else {
            eprintln!("campaign worker requires --store <shard store path>");
            return ExitCode::FAILURE;
        };
        let faults: Vec<WorkerFault> = match &faults_arg {
            None => Vec::new(),
            Some(json) => match serde_json::from_str(json) {
                Ok(faults) => faults,
                Err(e) => {
                    eprintln!("--faults must be a JSON list of worker faults: {e}");
                    return ExitCode::FAILURE;
                }
            },
        };
        let config = WorkerConfig {
            shard,
            store: PathBuf::from(store),
            threads,
            batch,
            faults,
        };
        let stdin = std::io::BufReader::new(std::io::stdin());
        return match run_worker(&config, stdin, std::io::stdout()) {
            Ok(report) => {
                eprintln!(
                    "worker {}: {} executed, {} skipped, {} failed ({} resumed, {} torn \
                     tail byte(s) repaired)",
                    report.shard,
                    report.executed,
                    report.skipped,
                    report.failed,
                    report.resumed,
                    report.repaired_tail_bytes
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("campaign worker failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if action == "fsck" {
        // Read-only shard inspection: needs a store, not a campaign.
        let Some(store) = store_arg else {
            eprintln!("campaign fsck requires --store <store path>");
            return ExitCode::FAILURE;
        };
        return match ResultStore::fsck(&store) {
            Ok(report) => {
                println!("fsck {store}:");
                println!("{report}");
                if report.is_clean() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("campaign fsck failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let Some(campaign_arg) = campaign_arg else {
        eprintln!("campaign {action} requires --campaign <json-or-path>");
        return ExitCode::FAILURE;
    };
    let spec = match load_campaign(&campaign_arg) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if action == "check" {
        // Static validation only: no store is touched, no cell runs.
        return match dradio_campaign::check_with_budget(&spec, mem_budget) {
            Ok(report) => {
                print!("{report}");
                if report.is_clean() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("campaign check failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let store_path = store_arg.unwrap_or_else(|| format!("{}.campaign.jsonl", spec.name));

    if action == "merge" {
        if shard_paths.is_empty() {
            eprintln!(
                "campaign merge needs at least one shard store path (positional), e.g. \
                 `campaign merge --campaign spec.json --store out.jsonl out.shard0.jsonl \
                 out.shard1.jsonl`"
            );
            return ExitCode::FAILURE;
        }
        return match ResultStore::merge(&spec, &store_path, &shard_paths) {
            Ok(report) => {
                println!("{spec}");
                println!("merged into {store_path}: {report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("campaign merge failed: {e}");
                eprintln!("({store_path} and the shard stores were left untouched)");
                ExitCode::FAILURE
            }
        };
    }

    if action == "fleet" {
        let mut faults: Option<FaultPlan> = None;
        if let Some(raw) = &chaos_arg {
            // A bare integer is a seed; `{`/`[` starts inline JSON;
            // anything else is a file path holding the plan.
            let plan = if let Ok(seed) = raw.parse::<u64>() {
                FaultPlan::seeded(seed, workers)
            } else {
                let json = if raw.trim_start().starts_with(['{', '[']) {
                    raw.clone()
                } else {
                    match std::fs::read_to_string(raw) {
                        Ok(text) => text,
                        Err(e) => {
                            eprintln!("--chaos: cannot read {raw}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                };
                match serde_json::from_str::<FaultPlan>(&json) {
                    Ok(plan) => plan,
                    Err(e) => {
                        eprintln!("--chaos: not a seed or a FaultPlan JSON: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            };
            faults = Some(plan);
        }
        if let Some(limit) = worker_exit_after {
            // The pre-chaos smoke knob, kept as sugar: kill worker 0 after
            // its limit-th fresh cell.
            faults
                .get_or_insert_with(FaultPlan::default)
                .faults
                .push(WorkerFault {
                    shard: 0,
                    after_cells: limit,
                    kind: FaultKind::Kill,
                });
        }
        return fleet_command(
            &spec,
            &store_path,
            mem_budget,
            FleetConfig {
                workers,
                threads,
                batch,
                progress,
                hang_timeout,
                lease_timeout,
                ready_timeout: ready_timeout.or(Some(Duration::from_secs(30))),
                restart_budget,
                faults,
                worker_command: None,
                ..FleetConfig::default()
            },
        );
    }

    // Only `run` may create the store; `resume`, `report`, and `compact`
    // address an existing one (none of them should leave an empty file
    // behind).
    if action != "run" && !std::path::Path::new(&store_path).exists() {
        eprintln!(
            "campaign {action}: store {store_path} does not exist; use `campaign run` to start one"
        );
        return ExitCode::FAILURE;
    }

    if action == "compact" {
        // Compaction validates the store itself (and refuses to rewrite
        // anything if the integrity checks fail).
        match ResultStore::compact(&spec, &store_path) {
            Ok(report) => {
                println!("{spec}");
                println!("compacted {store_path}: {report}");
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("campaign compact failed: {e}");
                eprintln!("({store_path} was left untouched)");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut store = match ResultStore::open(&store_path) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    println!("{spec}");
    println!(
        "store: {store_path} ({} cells already measured)",
        store.len()
    );

    if action != "report" {
        let mut runner = CampaignRunner::new(&spec).progress(progress).batch(batch);
        if threads > 0 {
            runner = runner.threads(threads);
        }
        match runner.run(&mut store) {
            Ok(report) => {
                println!(
                    "cells: {} total, {} skipped (already measured), {} executed",
                    report.total, report.skipped, report.executed
                );
            }
            Err(e) => {
                eprintln!("campaign failed: {e}");
                eprintln!(
                    "(the {} cells committed so far are safe in {store_path}; \
                     rerun `campaign resume` after fixing the problem)",
                    store.len()
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let table = campaign_table(&spec, &store);
    println!("{}", table.render());
    if csv {
        println!("```csv");
        print!("{}", table.to_csv());
        println!("```");
    }
    if curves {
        let mut rendered = 0usize;
        for record in store.records() {
            if let Some(curve) = &record.measurement.contention {
                let table = dradio_analysis::contention_table(
                    format!("contention: {}", record.cell.label()),
                    &[(record.cell.scenario.algorithm.name().to_string(), curve)],
                    dradio_analysis::curves::DEFAULT_BUCKETS,
                );
                println!("{}", table.render());
                rendered += 1;
            }
        }
        if rendered == 0 {
            println!(
                "(no stored measurement carries a contention curve; set \"curve\": true \
                 on a sweep group to stream one)"
            );
        }
    }
    if action == "report" {
        match spec.expand() {
            Ok(cells) => {
                let missing = cells
                    .iter()
                    .filter(|cell| !store.contains(&cell.key()))
                    .count();
                if missing > 0 {
                    println!("({missing} of {} cells not yet measured)", cells.len());
                }
            }
            Err(e) => {
                eprintln!("campaign spec does not expand: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// `campaign fleet`: a check-gated launch banner with a per-shard budget
/// estimate (rounds and topology memory), then the coordinator.
fn fleet_command(
    spec: &CampaignSpec,
    store_path: &str,
    mem_budget: Option<u64>,
    config: FleetConfig,
) -> ExitCode {
    // The coordinator re-checks internally; checking here first prints the
    // warnings the way `campaign check` does and sizes the banner.
    let report = match dradio_campaign::check_with_budget(spec, mem_budget) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("campaign fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !report.is_clean() {
        print!("{report}");
        eprintln!(
            "campaign fleet: the spec has {} check warning(s); fix them (or run \
             single-process `campaign run`) before fanning out across processes",
            report.warnings.len()
        );
        return ExitCode::FAILURE;
    }
    println!("{spec}");
    // Each worker runs `threads.max(1)` cell runners concurrently, and
    // `--batch` retires up to 64 trials per word pass, so the wall-clock
    // proxy is rounds (or word passes) divided across every parallel
    // stream — not one sequential scalar trial stream per worker.
    let streams = (config.workers * config.threads.max(1)) as u64;
    let budget: Option<u64> = if config.batch {
        report.groups.iter().map(|g| g.max_batched_rounds).sum()
    } else {
        report.groups.iter().map(|g| g.max_rounds).sum()
    };
    let unit = if config.batch {
        "word passes"
    } else {
        "rounds"
    };
    match budget {
        Some(total) => println!(
            "fleet: {} workers over {} cells; worst-case budget ≈ {} {unit} per \
             parallel stream (of {total} total across {streams} streams)",
            config.workers,
            report.cells,
            total.div_ceil(streams)
        ),
        None => println!(
            "fleet: {} workers over {} cells (unbounded round budget)",
            config.workers, report.cells
        ),
    }
    // Every worker process builds its own copy of a cell's topology, so the
    // honest per-worker memory proxy is the largest single-cell estimate.
    let peak = report
        .groups
        .iter()
        .filter_map(|g| g.peak_topology)
        .max_by_key(|&(_, bytes)| bytes);
    if let Some((backend, bytes)) = peak {
        let ceiling = mem_budget
            .map(|b| format!(", within the {} budget", dradio_campaign::format_bytes(b)))
            .unwrap_or_default();
        println!(
            "fleet: peak topology estimate ~{} per worker ({backend} backend{ceiling})",
            dradio_campaign::format_bytes(bytes)
        );
    }
    if let Some(plan) = &config.faults {
        let seed = plan
            .seed
            .map(|s| format!(" (seed {s})"))
            .unwrap_or_default();
        println!(
            "fleet: chaos plan armed: {} fault(s){seed} — convergence contract: the merged \
             store must still match a single-process run byte for byte",
            plan.faults.len()
        );
    }
    let workers = config.workers;
    match run_fleet(spec, Path::new(store_path), &config) {
        Ok(report) => {
            println!(
                "cells: {} total, {} skipped (already durable), {} completed, \
                 {} re-assigned, {} lease(s) expired, {} worker(s) restarted, {} worker(s)",
                report.total,
                report.skipped,
                report.completed,
                report.reassigned,
                report.lease_expired,
                report.restarted,
                report.workers
            );
            let shards: Vec<String> = (0..workers)
                .map(|k| shard_store_path(Path::new(store_path), k))
                .filter(|p| p.exists())
                .map(|p| p.display().to_string())
                .collect();
            if shards.is_empty() {
                println!("(no shard stores written — nothing was pending)");
            } else {
                println!(
                    "next: repro campaign merge --campaign <spec> --store {store_path} {}",
                    shards.join(" ")
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("campaign fleet failed: {e}");
            eprintln!(
                "(completed cells are durable in the shard stores next to {store_path}; \
                 rerun `campaign fleet` to resume)"
            );
            ExitCode::FAILURE
        }
    }
}

/// One row of the `repro bench` batch-versus-scalar comparison.
struct BatchBenchRow {
    workload: &'static str,
    n: usize,
    trials: usize,
    rounds: usize,
    scalar_tps: f64,
    batch_tps: f64,
}

impl BatchBenchRow {
    fn speedup(&self) -> f64 {
        if self.scalar_tps > 0.0 {
            self.batch_tps / self.scalar_tps
        } else {
            0.0
        }
    }
}

impl serde::Serialize for BatchBenchRow {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("workload".into(), serde::Value::Str(self.workload.into())),
            ("n".into(), serde::Value::UInt(self.n as u64)),
            ("trials".into(), serde::Value::UInt(self.trials as u64)),
            ("rounds".into(), serde::Value::UInt(self.rounds as u64)),
            (
                "scalar_trials_per_sec".into(),
                serde::Value::Float(self.scalar_tps),
            ),
            (
                "batch_trials_per_sec".into(),
                serde::Value::Float(self.batch_tps),
            ),
            ("speedup".into(), serde::Value::Float(self.speedup())),
        ])
    }
}

/// The `BENCH_batch.json` document: `{"benches": [row, ...]}`.
struct BatchBenchReport<'a> {
    benches: &'a [BatchBenchRow],
}

impl serde::Serialize for BatchBenchReport<'_> {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![(
            "benches".into(),
            serde::Value::Seq(
                self.benches
                    .iter()
                    .map(serde::Serialize::to_value)
                    .collect(),
            ),
        )])
    }
}

/// One row of the `repro bench --scale` report.
struct ScaleBenchRow {
    workload: &'static str,
    n: usize,
    edges: usize,
    backend: String,
    build_secs: f64,
    trials: usize,
    rounds: usize,
    run_secs: f64,
    dense_bytes: Option<u64>,
    csr_bytes: Option<u64>,
    peak_rss_bytes: Option<u64>,
}

impl serde::Serialize for ScaleBenchRow {
    fn to_value(&self) -> serde::Value {
        let opt = |v: Option<u64>| match v {
            Some(b) => serde::Value::UInt(b),
            None => serde::Value::Null,
        };
        serde::Value::Map(vec![
            ("workload".into(), serde::Value::Str(self.workload.into())),
            ("n".into(), serde::Value::UInt(self.n as u64)),
            ("edges".into(), serde::Value::UInt(self.edges as u64)),
            ("backend".into(), serde::Value::Str(self.backend.clone())),
            ("build_secs".into(), serde::Value::Float(self.build_secs)),
            ("trials".into(), serde::Value::UInt(self.trials as u64)),
            ("rounds".into(), serde::Value::UInt(self.rounds as u64)),
            ("run_secs".into(), serde::Value::Float(self.run_secs)),
            ("dense_bytes_estimate".into(), opt(self.dense_bytes)),
            ("csr_bytes_estimate".into(), opt(self.csr_bytes)),
            ("peak_rss_bytes".into(), opt(self.peak_rss_bytes)),
        ])
    }
}

/// The `BENCH_sparse.json` document: `{"scale_n": N, "benches": [row, ...]}`.
struct ScaleBenchReport<'a> {
    scale_n: usize,
    benches: &'a [ScaleBenchRow],
}

impl serde::Serialize for ScaleBenchReport<'_> {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("scale_n".into(), serde::Value::UInt(self.scale_n as u64)),
            (
                "benches".into(),
                serde::Value::Seq(
                    self.benches
                        .iter()
                        .map(serde::Serialize::to_value)
                        .collect(),
                ),
            ),
        ])
    }
}

/// The process's high-water resident set size, from `/proc/self/status`
/// (`VmHWM`). `None` off Linux — the bench still runs, just without the
/// RSS column.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .strip_prefix("VmHWM:")?
        .split_whitespace()
        .next()?
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// `repro bench --scale [--scale-n N]`: broadcast at ~N nodes (default one
/// million) on a grid and a random-geometric network. Both topologies stream
/// straight into the CSR backend above the density threshold — the dense
/// bitmatrix those sizes would need (~116 GiB at 10⁶ nodes) is never
/// allocated — and the report records build/run timings, the dense-vs-CSR
/// memory estimates, and the process's peak RSS. Always writes
/// `BENCH_sparse.json`.
fn scale_bench_command(scale_n: usize) -> ExitCode {
    use dradio_scenario::BackendChoice;

    const ROUNDS: usize = 32;
    const TRIALS: usize = 2;
    const P: f64 = 0.1;

    let side = (scale_n as f64).sqrt().round().max(2.0) as usize;
    // ~8 nodes per unit square: mean reliable degree ~π·8 ≈ 25, safely over
    // the ~ln n ≈ 14 connectivity threshold at a million nodes, while the
    // CSR edge list stays linear in n (the dense bitmatrix would not).
    let geo_side = (scale_n as f64 / 8.0).sqrt().max(1.5);
    let workloads: Vec<(&'static str, TopologySpec, AdversarySpec)> = vec![
        (
            "grid",
            TopologySpec::Grid {
                cols: side,
                rows: side,
            },
            AdversarySpec::StaticNone,
        ),
        (
            "random-geo",
            TopologySpec::RandomGeometric {
                n: scale_n,
                side: geo_side,
                r: 1.5,
                seed: 9,
            },
            AdversarySpec::Iid { p: 0.5 },
        ),
    ];

    let mut rows = Vec::new();
    for (name, spec, adversary) in workloads {
        let dense_bytes = spec
            .memory_estimate(BackendChoice::Dense)
            .map(|(_, bytes)| bytes);
        let csr_bytes = spec
            .memory_estimate(BackendChoice::Csr)
            .map(|(_, bytes)| bytes);

        let t_build = std::time::Instant::now();
        let built = match spec.build() {
            Ok(b) => b,
            Err(e) => {
                eprintln!("repro bench --scale: {name} topology does not build: {e}");
                return ExitCode::FAILURE;
            }
        };
        let build_secs = t_build.elapsed().as_secs_f64();
        let n = built.dual.len();
        let edges = built.dual.g_prime().edge_count();
        let backend = built.dual.graph_backend();

        let mut executor = dradio_bench::engine_executor(&built, &adversary, P, ROUNDS);
        let t_run = std::time::Instant::now();
        let mut deliveries = 0usize;
        for trial in 0..TRIALS as u64 {
            deliveries += executor
                .execute(
                    dradio_sim::derive_stream_seed(0x5CA1E, trial),
                    dradio_scenario::RecordMode::None,
                )
                .metrics
                .deliveries;
        }
        let run_secs = t_run.elapsed().as_secs_f64();
        if deliveries == 0 {
            eprintln!(
                "repro bench --scale: {name}/{n} delivered nothing over \
                 {TRIALS}x{ROUNDS} rounds — the workload is not exercising the network"
            );
            return ExitCode::FAILURE;
        }

        rows.push(ScaleBenchRow {
            workload: name,
            n,
            edges,
            backend: backend.to_string(),
            build_secs,
            trials: TRIALS,
            rounds: ROUNDS,
            run_secs,
            dense_bytes,
            csr_bytes,
            // VmHWM is monotonic, so each row reads the high-water mark as
            // of the end of its own run.
            peak_rss_bytes: peak_rss_bytes(),
        });
    }

    println!("scale bench: ~{scale_n} nodes, {TRIALS} trials x {ROUNDS} rounds, scalar engine");
    println!(
        "{:<12} {:>9} {:>10} {:>8} {:>9} {:>9} {:>12} {:>12} {:>10}",
        "workload", "n", "edges", "backend", "build s", "run s", "dense est", "csr est", "peak RSS"
    );
    let fmt_opt = |v: Option<u64>| match v {
        Some(bytes) => dradio_campaign::format_bytes(bytes),
        None => "-".to_string(),
    };
    for row in &rows {
        println!(
            "{:<12} {:>9} {:>10} {:>8} {:>9.2} {:>9.2} {:>12} {:>12} {:>10}",
            row.workload,
            row.n,
            row.edges,
            row.backend,
            row.build_secs,
            row.run_secs,
            fmt_opt(row.dense_bytes),
            fmt_opt(row.csr_bytes),
            fmt_opt(row.peak_rss_bytes),
        );
    }

    let doc = ScaleBenchReport {
        scale_n,
        benches: &rows,
    };
    let path = Path::new("BENCH_sparse.json");
    match serde_json::to_string_pretty(&doc) {
        Ok(body) => {
            if let Err(e) = std::fs::write(path, body + "\n") {
                eprintln!("repro bench --scale: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", path.display());
        }
        Err(e) => {
            eprintln!("repro bench --scale: JSON serialization failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// `repro bench [--json]`: an in-binary trials/sec comparison of the scalar
/// [`dradio_sim::TrialExecutor`] against the bit-sliced
/// [`dradio_sim::BatchExecutor`] on the engine bench workloads. Unlike the
/// Criterion benches this runs in seconds, prints one table, and with
/// `--json` writes the numbers to `BENCH_batch.json` for CI trend tracking.
fn bench_command(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut trials = 256usize;
    let mut scale = false;
    let mut scale_n = 1_000_000usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--scale" => scale = true,
            "--scale-n" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 4 => scale_n = n,
                _ => {
                    eprintln!("--scale-n requires an integer node count of at least 4");
                    return ExitCode::FAILURE;
                }
            },
            "--trials" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(t) if t > 0 => trials = t,
                _ => {
                    eprintln!("--trials requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!(
                    "unknown bench option {other}; repro bench takes --json, --trials, \
                     --scale, and --scale-n"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if scale {
        return scale_bench_command(scale_n);
    }

    const ROUNDS: usize = 16;
    const P: f64 = 0.1;
    let workloads: Vec<(&'static str, Vec<TopologySpec>, AdversarySpec)> = vec![
        (
            "clique",
            vec![64, 256, 1024]
                .into_iter()
                .map(|n| TopologySpec::Clique { n })
                .collect(),
            AdversarySpec::StaticNone,
        ),
        (
            "grid",
            vec![8, 16, 32]
                .into_iter()
                .map(|side| TopologySpec::Grid {
                    cols: side,
                    rows: side,
                })
                .collect(),
            AdversarySpec::StaticNone,
        ),
        (
            "random-geo",
            vec![64, 256, 1024]
                .into_iter()
                .map(|n| TopologySpec::RandomGeometric {
                    n,
                    side: (n as f64 / 8.0).sqrt().max(1.5),
                    r: 1.5,
                    seed: 9,
                })
                .collect(),
            AdversarySpec::Iid { p: 0.5 },
        ),
    ];

    let mut rows = Vec::new();
    for (name, specs, adversary) in workloads {
        for spec in specs {
            let built = match spec.build() {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("repro bench: {name} topology does not build: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let n = built.dual.len();
            let mut scalar = dradio_bench::engine_executor(&built, &adversary, P, ROUNDS);
            let mut batch = dradio_bench::engine_batch_executor(&built, &adversary, P, ROUNDS);
            let seeds: Vec<u64> = (0..trials as u64)
                .map(|t| dradio_sim::derive_stream_seed(0xBE7C4, t))
                .collect();

            let t0 = std::time::Instant::now();
            let scalar_sum: usize = seeds
                .iter()
                .map(|&s| {
                    scalar
                        .execute(s, dradio_scenario::RecordMode::None)
                        .metrics
                        .deliveries
                })
                .sum();
            let scalar_secs = t0.elapsed().as_secs_f64();

            let t1 = std::time::Instant::now();
            let batch_sum: usize = seeds
                .chunks(dradio_scenario::MAX_LANES)
                .flat_map(|lanes| {
                    batch
                        .execute_group(lanes, dradio_scenario::RecordMode::None)
                        .expect("oblivious bench adversary is batchable")
                })
                .map(|o| o.metrics.deliveries)
                .sum();
            let batch_secs = t1.elapsed().as_secs_f64();

            if scalar_sum != batch_sum {
                eprintln!(
                    "repro bench: batch/scalar outcome divergence on {name}/{n} \
                     ({batch_sum} vs {scalar_sum} deliveries) — refusing to report timings"
                );
                return ExitCode::FAILURE;
            }
            rows.push(BatchBenchRow {
                workload: name,
                n,
                trials,
                rounds: ROUNDS,
                scalar_tps: trials as f64 / scalar_secs.max(1e-9),
                batch_tps: trials as f64 / batch_secs.max(1e-9),
            });
        }
    }

    println!("batch vs scalar trials/sec ({trials} trials x {ROUNDS} rounds, RecordMode::None)");
    println!(
        "{:<12} {:>6} {:>14} {:>14} {:>9}",
        "workload", "n", "scalar t/s", "batch t/s", "speedup"
    );
    for row in &rows {
        println!(
            "{:<12} {:>6} {:>14.0} {:>14.0} {:>8.2}x",
            row.workload,
            row.n,
            row.scalar_tps,
            row.batch_tps,
            row.speedup()
        );
    }

    if json {
        let doc = BatchBenchReport { benches: &rows };
        let path = Path::new("BENCH_batch.json");
        match serde_json::to_string_pretty(&doc) {
            Ok(body) => {
                if let Err(e) = std::fs::write(path, body + "\n") {
                    eprintln!("repro bench: cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("wrote {}", path.display());
            }
            Err(e) => {
                eprintln!("repro bench: JSON serialization failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// `repro lint [--fix-hints]`: the workspace static-analysis pass, from the
/// binary everything else already runs through.
fn lint_command(args: &[String]) -> ExitCode {
    let mut fix_hints = false;
    for arg in args {
        match arg.as_str() {
            "--fix-hints" => fix_hints = true,
            other => {
                eprintln!("unknown lint option {other}; repro lint takes only --fix-hints");
                return ExitCode::FAILURE;
            }
        }
    }
    match dradio_lint::run_check(std::path::Path::new(".")) {
        Ok(report) => {
            print!("{}", report.render(fix_hints));
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("repro lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("campaign") {
        return campaign_command(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("lint") {
        return lint_command(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("bench") {
        return bench_command(&args[1..]);
    }

    let mut cfg = ExperimentConfig::quick();
    let mut only: Option<String> = None;
    let mut csv = false;
    let mut list = false;
    let mut scenario_json: Option<String> = None;
    let mut trials = 8usize;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => cfg = ExperimentConfig::smoke(),
            "--quick" => cfg = ExperimentConfig::quick(),
            "--full" => cfg = ExperimentConfig::full(),
            "--csv" => csv = true,
            "--list" => list = true,
            "--only" => match iter.next() {
                Some(id) => only = Some(id.to_uppercase()),
                None => {
                    eprintln!("--only requires an experiment id (e.g. --only E5)");
                    return ExitCode::FAILURE;
                }
            },
            "--scenario" => match iter.next() {
                Some(json) => scenario_json = Some(json.clone()),
                None => {
                    eprintln!("--scenario requires a ScenarioSpec JSON argument");
                    return ExitCode::FAILURE;
                }
            },
            "--trials" => match iter.next().and_then(|t| t.parse().ok()) {
                Some(t) => trials = t,
                None => {
                    eprintln!("--trials requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--example-scenario" => {
                println!("{}", example_scenario());
                return ExitCode::SUCCESS;
            }
            "--example-campaign" => {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&example_campaign())
                        .expect("campaigns always serialize")
                );
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("repro: regenerate the PODC 2013 reproduction tables");
                println!(
                    "options: --smoke | --quick | --full, --only <ID>, --csv, --list, \
                     --scenario <JSON> [--trials <N>], --example-scenario, --example-campaign"
                );
                println!(
                    "campaigns: campaign <check|run|resume|report|compact> --campaign \
                     <json-or-path> [--store <path>] [--csv] [--progress] [--threads <N>]"
                );
                println!(
                    "fleet: campaign fleet --campaign <json-or-path> [--store <path>] \
                     [--workers <N>] [--threads <N>] [--hang-timeout <secs>] \
                     [--lease-timeout <secs>] [--ready-timeout <secs>] \
                     [--restart-budget <N>] [--chaos <seed|json|path>]; \
                     campaign merge --campaign <json-or-path> --store <out> <shard>...; \
                     campaign fsck --store <path> (read-only shard inspection); \
                     campaign worker (internal, spawned by fleet)"
                );
                println!("lint: repro lint [--fix-hints] (workspace static analysis)");
                println!(
                    "bench: repro bench [--json] [--trials <N>] (batch vs scalar trials/sec; \
                     --json writes BENCH_batch.json); repro bench --scale [--scale-n <N>] \
                     (million-node CSR broadcast; writes BENCH_sparse.json)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown option {other}; try --help");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(json) = scenario_json {
        return run_scenario(&json, trials);
    }

    let registry = experiments::all();
    if list {
        for e in &registry {
            println!("{}  {}", e.id(), e.title());
        }
        return ExitCode::SUCCESS;
    }

    println!("# Reproduction of Ghaffari–Lynch–Newport (PODC 2013), Figure 1");
    println!("# configuration: {cfg:?}");
    println!();

    let mut ran_any = false;
    for experiment in &registry {
        if let Some(only_id) = &only {
            if experiment.id() != only_id {
                continue;
            }
        }
        ran_any = true;
        println!("=== {} — {} ===", experiment.id(), experiment.title());
        println!("paper claim: {}", experiment.paper_claim());
        println!();
        let tables = match experiment.run(&cfg) {
            Ok(tables) => tables,
            Err(e) => {
                eprintln!("{} failed: {e}", experiment.id());
                return ExitCode::FAILURE;
            }
        };
        for table in tables {
            println!("{}", table.render());
            if csv {
                println!("```csv");
                print!("{}", table.to_csv());
                println!("```");
            }
        }
        println!();
    }

    if !ran_any {
        eprintln!("no experiment matched {only:?}; use --list to see the available ids");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
