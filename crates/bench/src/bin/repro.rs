//! `repro` — regenerate every experiment table of the PODC 2013 reproduction,
//! or run an ad-hoc serialized scenario.
//!
//! Usage:
//!
//! ```text
//! cargo run -p dradio-bench --bin repro --release [-- OPTIONS]
//!
//! OPTIONS:
//!     --smoke            tiny sizes, 1 trial (sanity check)
//!     --quick            moderate sizes, 3 trials (default)
//!     --full             larger sizes, 8 trials
//!     --only <ID>        run only the experiment with this id (e.g. E5)
//!     --csv              also print each table as CSV
//!     --list             list experiments and exit
//!     --scenario <JSON>  run a serialized ScenarioSpec instead of the
//!                        experiments (use --trials to repeat it)
//!     --trials <N>       trials for --scenario (default 8)
//!     --example-scenario print a ScenarioSpec JSON template and exit
//! ```

use std::env;
use std::process::ExitCode;

use dradio_analysis::experiments::{self, ExperimentConfig};
use dradio_core::algorithms::GlobalAlgorithm;
use dradio_scenario::{AdversarySpec, ProblemSpec, ScenarioSpec, TopologySpec};

fn run_scenario(json: &str, trials: usize) -> ExitCode {
    let spec: ScenarioSpec = match serde_json::from_str(json) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("could not parse the scenario spec: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scenario = match spec.build() {
        Ok(scenario) => scenario,
        Err(e) => {
            eprintln!("could not build the scenario: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("scenario: {scenario}");
    match scenario.run_trials(trials) {
        Ok(m) => {
            println!("trials:      {trials}");
            println!("rounds:      {}", m.rounds);
            println!("completion:  {:.0}%", m.completion_rate * 100.0);
            println!("collisions:  {:.1} per trial", m.mean_collisions);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("could not run the scenario: {e}");
            ExitCode::FAILURE
        }
    }
}

fn example_scenario() -> String {
    let spec = ScenarioSpec {
        topology: TopologySpec::DualClique { n: 64 },
        algorithm: GlobalAlgorithm::Permuted.into(),
        adversary: AdversarySpec::Iid { p: 0.5 },
        problem: ProblemSpec::GlobalFrom(0),
        seed: 1,
        max_rounds: None,
        collision_detection: false,
    };
    serde_json::to_string_pretty(&spec).expect("specs always serialize")
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut cfg = ExperimentConfig::quick();
    let mut only: Option<String> = None;
    let mut csv = false;
    let mut list = false;
    let mut scenario_json: Option<String> = None;
    let mut trials = 8usize;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => cfg = ExperimentConfig::smoke(),
            "--quick" => cfg = ExperimentConfig::quick(),
            "--full" => cfg = ExperimentConfig::full(),
            "--csv" => csv = true,
            "--list" => list = true,
            "--only" => match iter.next() {
                Some(id) => only = Some(id.to_uppercase()),
                None => {
                    eprintln!("--only requires an experiment id (e.g. --only E5)");
                    return ExitCode::FAILURE;
                }
            },
            "--scenario" => match iter.next() {
                Some(json) => scenario_json = Some(json.clone()),
                None => {
                    eprintln!("--scenario requires a ScenarioSpec JSON argument");
                    return ExitCode::FAILURE;
                }
            },
            "--trials" => match iter.next().and_then(|t| t.parse().ok()) {
                Some(t) => trials = t,
                None => {
                    eprintln!("--trials requires a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--example-scenario" => {
                println!("{}", example_scenario());
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("repro: regenerate the PODC 2013 reproduction tables");
                println!(
                    "options: --smoke | --quick | --full, --only <ID>, --csv, --list, \
                     --scenario <JSON> [--trials <N>], --example-scenario"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown option {other}; try --help");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(json) = scenario_json {
        return run_scenario(&json, trials);
    }

    let registry = experiments::all();
    if list {
        for e in &registry {
            println!("{}  {}", e.id(), e.title());
        }
        return ExitCode::SUCCESS;
    }

    println!("# Reproduction of Ghaffari–Lynch–Newport (PODC 2013), Figure 1");
    println!("# configuration: {cfg:?}");
    println!();

    let mut ran_any = false;
    for experiment in &registry {
        if let Some(only_id) = &only {
            if experiment.id() != only_id {
                continue;
            }
        }
        ran_any = true;
        println!("=== {} — {} ===", experiment.id(), experiment.title());
        println!("paper claim: {}", experiment.paper_claim());
        println!();
        for table in experiment.run(&cfg) {
            println!("{}", table.render());
            if csv {
                println!("```csv");
                print!("{}", table.to_csv());
                println!("```");
            }
        }
        println!();
    }

    if !ran_any {
        eprintln!("no experiment matched {only:?}; use --list to see the available ids");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
