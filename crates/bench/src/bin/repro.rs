//! `repro` — regenerate every experiment table of the PODC 2013 reproduction.
//!
//! Usage:
//!
//! ```text
//! cargo run -p dradio-bench --bin repro --release [-- OPTIONS]
//!
//! OPTIONS:
//!     --smoke          tiny sizes, 1 trial (sanity check)
//!     --quick          moderate sizes, 3 trials (default)
//!     --full           larger sizes, 8 trials
//!     --only <ID>      run only the experiment with this id (e.g. E5)
//!     --csv            also print each table as CSV
//!     --list           list experiments and exit
//! ```

use std::env;
use std::process::ExitCode;

use dradio_analysis::experiments::{self, ExperimentConfig};

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut cfg = ExperimentConfig::quick();
    let mut only: Option<String> = None;
    let mut csv = false;
    let mut list = false;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => cfg = ExperimentConfig::smoke(),
            "--quick" => cfg = ExperimentConfig::quick(),
            "--full" => cfg = ExperimentConfig::full(),
            "--csv" => csv = true,
            "--list" => list = true,
            "--only" => match iter.next() {
                Some(id) => only = Some(id.to_uppercase()),
                None => {
                    eprintln!("--only requires an experiment id (e.g. --only E5)");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("repro: regenerate the PODC 2013 reproduction tables");
                println!("options: --smoke | --quick | --full, --only <ID>, --csv, --list");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown option {other}; try --help");
                return ExitCode::FAILURE;
            }
        }
    }

    let registry = experiments::all();
    if list {
        for e in &registry {
            println!("{}  {}", e.id(), e.title());
        }
        return ExitCode::SUCCESS;
    }

    println!("# Reproduction of Ghaffari–Lynch–Newport (PODC 2013), Figure 1");
    println!("# configuration: {cfg:?}");
    println!();

    let mut ran_any = false;
    for experiment in &registry {
        if let Some(only_id) = &only {
            if experiment.id() != only_id {
                continue;
            }
        }
        ran_any = true;
        println!("=== {} — {} ===", experiment.id(), experiment.title());
        println!("paper claim: {}", experiment.paper_claim());
        println!();
        for table in experiment.run(&cfg) {
            println!("{}", table.render());
            if csv {
                println!("```csv");
                print!("{}", table.to_csv());
                println!("```");
            }
        }
        println!();
    }

    if !ran_any {
        eprintln!("no experiment matched {only:?}; use --list to see the available ids");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
