//! Benchmark support library for the PODC 2013 reproduction.
//!
//! The crate has two entry points:
//!
//! * the `repro` binary (`cargo run -p dradio-bench --bin repro --release`),
//!   which regenerates every experiment table (E1–E8, covering all rows of
//!   the paper's Figure 1 plus the checkable lemmas) and can also run ad-hoc
//!   serialized scenarios (`--scenario <json>`);
//! * the Criterion benches in `benches/` (one per experiment), which time a
//!   representative workload from each experiment so performance regressions
//!   in the simulator or the algorithms are visible.
//!
//! The functions here are the small shared workloads the Criterion benches
//! time, all built through the [`dradio_scenario`] API. They are deliberately
//! compact (single simulation runs, fixed sizes) so `cargo bench` completes
//! in minutes; the full sweeps live in [`dradio_analysis::experiments`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// lint: allow-file(D4) -- bench workloads run fixed known-good specs under a
// timing harness; aborting loudly on a broken fixture is the desired behavior
// (a Result would be swallowed by Criterion's closure signature)

use std::sync::Arc;

use dradio_core::algorithms::{GlobalAlgorithm, LocalAlgorithm};
use dradio_core::global::BgiGlobalBroadcast;
use dradio_core::hitting::{play, HittingGame, SweepPlayer};
use dradio_core::reduction::{run_reduction, ReductionConfig};
use dradio_scenario::{AdversarySpec, ProblemSpec, Scenario, TopologySpec};
use dradio_sim::{
    Action, Assignment, BatchExecutor, BatchProfile, ExecutionOutcome, LinkFactory, Message,
    MessageKind, Process, ProcessContext, ProcessFactory, RecordMode, Round, SimConfig, Simulator,
    StopCondition, TrialExecutor,
};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Message kind used by the [`engine_workload`] broadcasters.
pub const ENGINE_BENCH_KIND: MessageKind = MessageKind::new(40);

/// A process that transmits with a fixed probability every round — the
/// steady-state contention workload the engine benches time. Unlike the real
/// algorithms it never completes, so a fixed horizon measures exactly
/// `horizon` rounds of engine work.
struct UniformBeacon {
    p: f64,
    msg: Message,
}

impl Process for UniformBeacon {
    fn on_round(&mut self, _round: Round, rng: &mut dyn RngCore) -> Action {
        if dradio_sim::sampling::bernoulli(rng, self.p) {
            Action::Transmit(self.msg.clone())
        } else {
            Action::Listen
        }
    }
    fn transmit_probability(&self, _round: Round) -> f64 {
        self.p
    }
    fn name(&self) -> &'static str {
        "uniform-beacon"
    }
    fn batch_profile(&self) -> BatchProfile {
        // One bernoulli draw per round, fixed message, no feedback use —
        // exactly the FixedRate contract, so the batch benches exercise the
        // word-parallel kernel rather than the generic lane path.
        BatchProfile::FixedRate {
            rate: self.p,
            message: Some(self.msg.clone()),
        }
    }
}

/// Runs exactly `rounds` rounds of the engine on a pre-built topology with
/// every node transmitting i.i.d. with probability `p` under `adversary`,
/// and returns the outcome. This is the hot-path microbenchmark workload: it
/// exercises simulator construction, action collection, link filtering,
/// reception, feedback, and recording, with none of the algorithm-level
/// early termination that would make the round count depend on the seed —
/// and none of the topology-generation cost, which callers hoist out of the
/// timed region.
pub fn engine_workload(
    built: &dradio_scenario::BuiltTopology,
    adversary: &AdversarySpec,
    p: f64,
    rounds: usize,
    seed: u64,
    record_mode: RecordMode,
) -> ExecutionOutcome {
    let link = adversary.build(built).expect("bench adversary builds");
    let n = built.dual.len();
    let factory: ProcessFactory = Arc::new(move |ctx: &ProcessContext| {
        Box::new(UniformBeacon {
            p,
            msg: Message::plain(ctx.id, ENGINE_BENCH_KIND, ctx.id.index() as u64),
        }) as Box<dyn Process>
    });
    Simulator::new(
        std::sync::Arc::clone(&built.dual),
        factory,
        Assignment::relays(n),
        link,
        SimConfig::default()
            .with_seed(seed)
            .with_max_rounds(rounds)
            .with_record_mode(record_mode),
    )
    .expect("bench simulator builds")
    .run(StopCondition::max_rounds())
}

/// A reusable [`TrialExecutor`] over the [`engine_workload`] configuration:
/// same processes, adversary recipe, and horizon, but built once so the
/// per-trial cost is the execution alone. `executor.execute(seed, mode)`
/// produces exactly the outcome of `engine_workload(..., seed, mode)`; the
/// trials/sec benches compare the two to measure setup amortization.
pub fn engine_executor(
    built: &dradio_scenario::BuiltTopology,
    adversary: &AdversarySpec,
    p: f64,
    rounds: usize,
) -> TrialExecutor {
    let n = built.dual.len();
    let factory: ProcessFactory = Arc::new(move |ctx: &ProcessContext| {
        Box::new(UniformBeacon {
            p,
            msg: Message::plain(ctx.id, ENGINE_BENCH_KIND, ctx.id.index() as u64),
        }) as Box<dyn Process>
    });
    let spec = adversary.clone();
    let topology = built.clone();
    let link: LinkFactory =
        Arc::new(move || spec.build(&topology).expect("bench adversary builds"));
    TrialExecutor::new(
        Arc::clone(&built.dual),
        factory,
        Assignment::relays(n),
        link,
        StopCondition::max_rounds(),
        SimConfig::default()
            .with_max_rounds(rounds)
            .with_record_mode(RecordMode::None),
    )
    .expect("bench executor builds")
}

/// The bit-sliced counterpart of [`engine_executor`]: the same workload on a
/// [`BatchExecutor`], retiring up to 64 trials per word pass. The
/// [`UniformBeacon`] advertises a `FixedRate` batch profile, so on oblivious
/// adversaries this drives the word-parallel kernel; per-lane outcomes are
/// bit-for-bit those of `engine_executor(...).execute(seed, mode)`.
pub fn engine_batch_executor(
    built: &dradio_scenario::BuiltTopology,
    adversary: &AdversarySpec,
    p: f64,
    rounds: usize,
) -> BatchExecutor {
    let n = built.dual.len();
    let factory: ProcessFactory = Arc::new(move |ctx: &ProcessContext| {
        Box::new(UniformBeacon {
            p,
            msg: Message::plain(ctx.id, ENGINE_BENCH_KIND, ctx.id.index() as u64),
        }) as Box<dyn Process>
    });
    let spec = adversary.clone();
    let topology = built.clone();
    let link: LinkFactory =
        Arc::new(move || spec.build(&topology).expect("bench adversary builds"));
    BatchExecutor::new(
        Arc::clone(&built.dual),
        factory,
        Assignment::relays(n),
        link,
        StopCondition::max_rounds(),
        SimConfig::default()
            .with_max_rounds(rounds)
            .with_record_mode(RecordMode::None),
    )
    .expect("bench batch executor builds")
}

/// Measured cost (rounds to completion, or the budget if censored) of one
/// global broadcast run on a (dual) clique.
pub fn run_global_once(
    n: usize,
    algorithm: GlobalAlgorithm,
    adversary: AdversarySpec,
    static_model: bool,
    seed: u64,
) -> usize {
    let topology = if static_model {
        TopologySpec::Clique { n }
    } else {
        TopologySpec::DualClique { n }
    };
    Scenario::on(topology)
        .algorithm(algorithm)
        .adversary(adversary)
        .problem(ProblemSpec::GlobalFrom(0))
        .seed(seed)
        .max_rounds(200 * n + 2_000)
        .build()
        .expect("valid scenario")
        .run()
        .cost()
}

/// Measured cost of one local broadcast run on a random geometric deployment.
pub fn run_geo_local_once(n: usize, algorithm: LocalAlgorithm, seed: u64) -> usize {
    let side = (n as f64 / 8.0).sqrt().max(1.5);
    Scenario::on(TopologySpec::RandomGeometric {
        n,
        side,
        r: 1.5,
        seed,
    })
    .algorithm(algorithm)
    .adversary(AdversarySpec::Iid { p: 0.5 })
    .problem(ProblemSpec::LocalRandom {
        count: (n / 4).max(1),
        seed: seed + 1,
    })
    .seed(seed)
    .max_rounds(40 * n + 4_000)
    .build()
    .expect("dense deployments connect")
    .run()
    .cost()
}

/// Measured cost of one local broadcast run on the bracelet network under the
/// isolated-broadcast-function attacker.
pub fn run_bracelet_once(k: usize, seed: u64) -> usize {
    let n = 2 * k * k;
    Scenario::on(TopologySpec::Bracelet { k })
        .algorithm(LocalAlgorithm::StaticDecay)
        .adversary(AdversarySpec::BraceletAttack)
        .problem(ProblemSpec::LocalHeadsA)
        .seed(seed)
        .max_rounds(300 + 40 * n)
        .build()
        .expect("valid scenario")
        .run()
        .cost()
}

/// Convenience adversary specs for the benches, by short name.
pub fn adversary(name: &str, n: usize) -> AdversarySpec {
    match name {
        "none" => AdversarySpec::StaticNone,
        "all" => AdversarySpec::StaticAll,
        "iid" => AdversarySpec::Iid { p: 0.5 },
        "decay-aware" => {
            // Assume the source side (the first half of a dual clique) is the
            // transmitting set — the strongest oblivious prediction for the
            // global broadcast workloads these benches run.
            AdversarySpec::DecayAware {
                levels: None,
                assumed_transmitters: (0..n / 2).collect(),
            }
        }
        "online" => AdversarySpec::DenseSparse {
            density_factor: None,
        },
        "offline" => AdversarySpec::Omniscient,
        other => panic!("unknown adversary {other}"),
    }
}

/// One sweep-player hitting game (the E7 baseline workload).
pub fn run_hitting_once(beta: u64, seed: u64) -> usize {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut game = HittingGame::with_random_target(beta, &mut rng).expect("beta >= 2");
    let mut player = SweepPlayer::new(beta);
    play(&mut game, &mut player, beta as usize, &mut rng).unwrap_or(beta as usize)
}

/// One Theorem 3.1 reduction run (the E7 reduction workload).
pub fn run_reduction_once(beta: usize, seed: u64) -> usize {
    let factory = BgiGlobalBroadcast::factory(2 * beta);
    run_reduction(
        beta,
        beta / 2 + 1,
        &factory,
        &ReductionConfig::default(),
        seed,
    )
    .expect("valid game")
    .total_guesses
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_workload_completes() {
        let cost = run_global_once(
            32,
            GlobalAlgorithm::Permuted,
            adversary("iid", 32),
            false,
            1,
        );
        assert!(cost > 0);
        assert!(cost < 200 * 32 + 2_000);
    }

    #[test]
    fn engine_executor_matches_engine_workload() {
        let built = TopologySpec::DualClique { n: 16 }.build().unwrap();
        let adversary = AdversarySpec::Iid { p: 0.5 };
        let mut executor = engine_executor(&built, &adversary, 0.2, 12);
        for seed in 0..5u64 {
            let reused = executor.execute(seed, RecordMode::None);
            let fresh = engine_workload(&built, &adversary, 0.2, 12, seed, RecordMode::None);
            assert_eq!(reused, fresh, "seed {seed}");
        }
    }

    #[test]
    fn engine_batch_executor_matches_scalar_lanes() {
        let built = TopologySpec::DualClique { n: 16 }.build().unwrap();
        let adversary = AdversarySpec::Iid { p: 0.5 };
        let mut batch = engine_batch_executor(&built, &adversary, 0.2, 12);
        assert!(
            batch.has_kernel(),
            "UniformBeacon's FixedRate profile should select the word-parallel kernel"
        );
        let mut scalar = engine_executor(&built, &adversary, 0.2, 12);
        let seeds: Vec<u64> = (0..7).collect();
        let outcomes = batch.execute_group(&seeds, RecordMode::None).unwrap();
        for (seed, outcome) in seeds.iter().zip(outcomes) {
            assert_eq!(
                outcome,
                scalar.execute(*seed, RecordMode::None),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn geo_local_workload_completes() {
        let cost = run_geo_local_once(48, LocalAlgorithm::Geo, 2);
        assert!(cost > 0);
    }

    #[test]
    fn bracelet_workload_runs() {
        let cost = run_bracelet_once(3, 3);
        assert!(cost > 0);
    }

    #[test]
    fn hitting_workloads_run() {
        assert!(run_hitting_once(64, 4) <= 64);
        assert!(run_reduction_once(8, 5) > 0);
    }

    #[test]
    #[should_panic(expected = "unknown adversary")]
    fn unknown_adversary_panics() {
        let _ = adversary("bogus", 8);
    }
}
