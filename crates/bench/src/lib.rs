//! Benchmark support library for the PODC 2013 reproduction.
//!
//! The crate has two entry points:
//!
//! * the `repro` binary (`cargo run -p dradio-bench --bin repro --release`),
//!   which regenerates every experiment table (E1–E8, covering all rows of
//!   the paper's Figure 1 plus the checkable lemmas);
//! * the Criterion benches in `benches/` (one per experiment), which time a
//!   representative workload from each experiment so performance regressions
//!   in the simulator or the algorithms are visible.
//!
//! The functions here are the small shared workloads the Criterion benches
//! time. They are deliberately compact (single simulation runs, fixed sizes)
//! so `cargo bench` completes in minutes; the full sweeps live in
//! [`dradio_analysis::experiments`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dradio_adversary::{BraceletOblivious, DecayAwareOblivious, DenseSparseOnline, IidLinks, OmniscientOffline};
use dradio_core::algorithms::{GlobalAlgorithm, LocalAlgorithm};
use dradio_core::global::BgiGlobalBroadcast;
use dradio_core::hitting::{play, HittingGame, SweepPlayer};
use dradio_core::problem::{GlobalBroadcastProblem, LocalBroadcastProblem};
use dradio_core::reduction::{run_reduction, ReductionConfig};
use dradio_graphs::topology::{self, GeometricConfig};
use dradio_graphs::NodeId;
use dradio_sim::{LinkProcess, SimConfig, Simulator, StaticLinks};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Measured cost (rounds to completion, or the budget if censored) of one
/// global broadcast run.
pub fn run_global_once(
    n: usize,
    algorithm: GlobalAlgorithm,
    link: Box<dyn LinkProcess>,
    static_model: bool,
    seed: u64,
) -> usize {
    let dual = if static_model {
        topology::clique(n)
    } else {
        topology::dual_clique(n).expect("even n")
    };
    let problem = GlobalBroadcastProblem::new(NodeId::new(0));
    Simulator::new(
        dual.clone(),
        algorithm.factory(n, dual.max_degree()),
        problem.assignment(n),
        link,
        SimConfig::default().with_seed(seed).with_max_rounds(200 * n + 2_000),
    )
    .expect("valid simulation")
    .run(problem.stop_condition())
    .cost()
}

/// Measured cost of one local broadcast run on a random geometric deployment.
pub fn run_geo_local_once(n: usize, algorithm: LocalAlgorithm, seed: u64) -> usize {
    let side = (n as f64 / 8.0).sqrt().max(1.5);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dual = topology::random_geometric(&GeometricConfig::new(n, side, 1.5), &mut rng)
        .expect("dense deployments connect");
    let mut rng = ChaCha8Rng::seed_from_u64(seed + 1);
    let problem = LocalBroadcastProblem::random(&dual, (n / 4).max(1), &mut rng);
    Simulator::new(
        dual.clone(),
        algorithm.factory(n, dual.max_degree()),
        problem.assignment(n),
        Box::new(IidLinks::new(0.5)),
        SimConfig::default().with_seed(seed).with_max_rounds(40 * n + 4_000),
    )
    .expect("valid simulation")
    .run(problem.stop_condition(&dual))
    .cost()
}

/// Measured cost of one local broadcast run on the bracelet network under the
/// isolated-broadcast-function attacker.
pub fn run_bracelet_once(k: usize, seed: u64) -> usize {
    let bracelet = topology::bracelet(k).expect("k >= 2");
    let dual = bracelet.dual().clone();
    let n = dual.len();
    let problem = LocalBroadcastProblem::new(bracelet.heads_a());
    Simulator::new(
        dual.clone(),
        LocalAlgorithm::StaticDecay.factory(n, dual.max_degree()),
        problem.assignment(n),
        Box::new(BraceletOblivious::new(&bracelet)),
        SimConfig::default().with_seed(seed).with_max_rounds(300 + 40 * n),
    )
    .expect("valid simulation")
    .run(problem.stop_condition(&dual))
    .cost()
}

/// Convenience constructors for the adversaries used by the benches.
pub fn adversary(name: &str, n: usize) -> Box<dyn LinkProcess> {
    match name {
        "none" => Box::new(StaticLinks::none()),
        "all" => Box::new(StaticLinks::all()),
        "iid" => Box::new(IidLinks::new(0.5)),
        "decay-aware" => {
            // Assume the source side (the first half of a dual clique) is the
            // transmitting set — the strongest oblivious prediction for the
            // global broadcast workloads these benches run.
            let side_a: Vec<NodeId> = (0..n / 2).map(NodeId::new).collect();
            Box::new(DecayAwareOblivious::for_network(n).assuming_transmitters(side_a))
        }
        "online" => Box::new(DenseSparseOnline::default()),
        "offline" => Box::new(OmniscientOffline::new()),
        other => panic!("unknown adversary {other}"),
    }
}

/// One sweep-player hitting game (the E7 baseline workload).
pub fn run_hitting_once(beta: u64, seed: u64) -> usize {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut game = HittingGame::with_random_target(beta, &mut rng).expect("beta >= 2");
    let mut player = SweepPlayer::new(beta);
    play(&mut game, &mut player, beta as usize, &mut rng).unwrap_or(beta as usize)
}

/// One Theorem 3.1 reduction run (the E7 reduction workload).
pub fn run_reduction_once(beta: usize, seed: u64) -> usize {
    let factory = BgiGlobalBroadcast::factory(2 * beta);
    run_reduction(beta, beta / 2 + 1, &factory, &ReductionConfig::default(), seed)
        .expect("valid game")
        .total_guesses
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_workload_completes() {
        let cost = run_global_once(32, GlobalAlgorithm::Permuted, adversary("iid", 32), false, 1);
        assert!(cost > 0);
        assert!(cost < 200 * 32 + 2_000);
    }

    #[test]
    fn geo_local_workload_completes() {
        let cost = run_geo_local_once(48, LocalAlgorithm::Geo, 2);
        assert!(cost > 0);
    }

    #[test]
    fn bracelet_workload_runs() {
        let cost = run_bracelet_once(3, 3);
        assert!(cost > 0);
    }

    #[test]
    fn hitting_workloads_run() {
        assert!(run_hitting_once(64, 4) <= 64);
        assert!(run_reduction_once(8, 5) > 0);
    }

    #[test]
    #[should_panic(expected = "unknown adversary")]
    fn unknown_adversary_panics() {
        let _ = adversary("bogus", 8);
    }
}
