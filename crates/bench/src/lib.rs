//! Benchmark support library for the PODC 2013 reproduction.
//!
//! The crate has two entry points:
//!
//! * the `repro` binary (`cargo run -p dradio-bench --bin repro --release`),
//!   which regenerates every experiment table (E1–E8, covering all rows of
//!   the paper's Figure 1 plus the checkable lemmas) and can also run ad-hoc
//!   serialized scenarios (`--scenario <json>`);
//! * the Criterion benches in `benches/` (one per experiment), which time a
//!   representative workload from each experiment so performance regressions
//!   in the simulator or the algorithms are visible.
//!
//! The functions here are the small shared workloads the Criterion benches
//! time, all built through the [`dradio_scenario`] API. They are deliberately
//! compact (single simulation runs, fixed sizes) so `cargo bench` completes
//! in minutes; the full sweeps live in [`dradio_analysis::experiments`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dradio_core::algorithms::{GlobalAlgorithm, LocalAlgorithm};
use dradio_core::global::BgiGlobalBroadcast;
use dradio_core::hitting::{play, HittingGame, SweepPlayer};
use dradio_core::reduction::{run_reduction, ReductionConfig};
use dradio_scenario::{AdversarySpec, ProblemSpec, Scenario, TopologySpec};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Measured cost (rounds to completion, or the budget if censored) of one
/// global broadcast run on a (dual) clique.
pub fn run_global_once(
    n: usize,
    algorithm: GlobalAlgorithm,
    adversary: AdversarySpec,
    static_model: bool,
    seed: u64,
) -> usize {
    let topology = if static_model {
        TopologySpec::Clique { n }
    } else {
        TopologySpec::DualClique { n }
    };
    Scenario::on(topology)
        .algorithm(algorithm)
        .adversary(adversary)
        .problem(ProblemSpec::GlobalFrom(0))
        .seed(seed)
        .max_rounds(200 * n + 2_000)
        .build()
        .expect("valid scenario")
        .run()
        .cost()
}

/// Measured cost of one local broadcast run on a random geometric deployment.
pub fn run_geo_local_once(n: usize, algorithm: LocalAlgorithm, seed: u64) -> usize {
    let side = (n as f64 / 8.0).sqrt().max(1.5);
    Scenario::on(TopologySpec::RandomGeometric {
        n,
        side,
        r: 1.5,
        seed,
    })
    .algorithm(algorithm)
    .adversary(AdversarySpec::Iid { p: 0.5 })
    .problem(ProblemSpec::LocalRandom {
        count: (n / 4).max(1),
        seed: seed + 1,
    })
    .seed(seed)
    .max_rounds(40 * n + 4_000)
    .build()
    .expect("dense deployments connect")
    .run()
    .cost()
}

/// Measured cost of one local broadcast run on the bracelet network under the
/// isolated-broadcast-function attacker.
pub fn run_bracelet_once(k: usize, seed: u64) -> usize {
    let n = 2 * k * k;
    Scenario::on(TopologySpec::Bracelet { k })
        .algorithm(LocalAlgorithm::StaticDecay)
        .adversary(AdversarySpec::BraceletAttack)
        .problem(ProblemSpec::LocalHeadsA)
        .seed(seed)
        .max_rounds(300 + 40 * n)
        .build()
        .expect("valid scenario")
        .run()
        .cost()
}

/// Convenience adversary specs for the benches, by short name.
pub fn adversary(name: &str, n: usize) -> AdversarySpec {
    match name {
        "none" => AdversarySpec::StaticNone,
        "all" => AdversarySpec::StaticAll,
        "iid" => AdversarySpec::Iid { p: 0.5 },
        "decay-aware" => {
            // Assume the source side (the first half of a dual clique) is the
            // transmitting set — the strongest oblivious prediction for the
            // global broadcast workloads these benches run.
            AdversarySpec::DecayAware {
                levels: None,
                assumed_transmitters: (0..n / 2).collect(),
            }
        }
        "online" => AdversarySpec::DenseSparse {
            density_factor: None,
        },
        "offline" => AdversarySpec::Omniscient,
        other => panic!("unknown adversary {other}"),
    }
}

/// One sweep-player hitting game (the E7 baseline workload).
pub fn run_hitting_once(beta: u64, seed: u64) -> usize {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut game = HittingGame::with_random_target(beta, &mut rng).expect("beta >= 2");
    let mut player = SweepPlayer::new(beta);
    play(&mut game, &mut player, beta as usize, &mut rng).unwrap_or(beta as usize)
}

/// One Theorem 3.1 reduction run (the E7 reduction workload).
pub fn run_reduction_once(beta: usize, seed: u64) -> usize {
    let factory = BgiGlobalBroadcast::factory(2 * beta);
    run_reduction(
        beta,
        beta / 2 + 1,
        &factory,
        &ReductionConfig::default(),
        seed,
    )
    .expect("valid game")
    .total_guesses
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_workload_completes() {
        let cost = run_global_once(
            32,
            GlobalAlgorithm::Permuted,
            adversary("iid", 32),
            false,
            1,
        );
        assert!(cost > 0);
        assert!(cost < 200 * 32 + 2_000);
    }

    #[test]
    fn geo_local_workload_completes() {
        let cost = run_geo_local_once(48, LocalAlgorithm::Geo, 2);
        assert!(cost > 0);
    }

    #[test]
    fn bracelet_workload_runs() {
        let cost = run_bracelet_once(3, 3);
        assert!(cost > 0);
    }

    #[test]
    fn hitting_workloads_run() {
        assert!(run_hitting_once(64, 4) <= 64);
        assert!(run_reduction_once(8, 5) > 0);
    }

    #[test]
    #[should_panic(expected = "unknown adversary")]
    fn unknown_adversary_panics() {
        let _ = adversary("bogus", 8);
    }
}
