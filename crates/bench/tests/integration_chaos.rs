//! Process-level chaos tests: the `repro` binary coordinating real worker
//! processes under deterministic fault injection — kills, torn shard tails,
//! hangs, corrupt frames — then merging the shard stores and comparing
//! bytes against an undisturbed single-process run.
//!
//! These pin the convergence contract of the self-healing fleet: for every
//! seeded fault schedule, supervised restarts plus worker-pull re-assignment
//! plus merge must be invisible in the output bytes, and schedules that kill
//! workers must record at least one restart.

use std::path::{Path, PathBuf};
use std::process::Command;

use dradio_campaign::{CampaignSpec, RoundsRule, SweepGroup, TrialPolicy};
use dradio_core::algorithms::GlobalAlgorithm;
use dradio_scenario::{AdversarySpec, ProblemSpec, TopologySpec};

/// A fresh scratch directory per test (tests run concurrently).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dradio-chaos-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The `repro` binary, run inside `dir`.
fn repro(dir: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.current_dir(dir);
    cmd
}

/// A small check-clean sweep, written to `campaign.json` in `dir`.
fn write_campaign(dir: &Path) -> String {
    let spec = CampaignSpec::named("chaos-it")
        .seed(11)
        .trials(TrialPolicy::Fixed(2))
        .group(
            SweepGroup::product(
                vec![
                    TopologySpec::Clique { n: 8 },
                    TopologySpec::Clique { n: 16 },
                    TopologySpec::DualClique { n: 16 },
                ],
                vec![
                    GlobalAlgorithm::Bgi.into(),
                    GlobalAlgorithm::Permuted.into(),
                ],
                vec![AdversarySpec::StaticNone],
                vec![ProblemSpec::GlobalFrom(0)],
            )
            .rounds(RoundsRule::Fixed(2_000)),
        );
    let json = serde_json::to_string(&spec).unwrap();
    std::fs::write(dir.join("campaign.json"), &json).unwrap();
    "campaign.json".into()
}

/// Runs a command expecting success; panics with its output otherwise.
/// Returns the captured stdout.
fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().unwrap();
    assert!(
        out.status.success(),
        "command failed ({:?}):\nstdout: {}\nstderr: {}",
        cmd,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn read(dir: &Path, name: &str) -> Vec<u8> {
    std::fs::read(dir.join(name)).unwrap()
}

/// Parses `"... N worker(s) restarted ..."` out of the fleet summary line.
fn restarts_reported(stdout: &str) -> usize {
    stdout
        .lines()
        .find(|l| l.contains("worker(s) restarted"))
        .and_then(|line| {
            line.split(", ")
                .find(|part| part.ends_with("worker(s) restarted"))
                .and_then(|part| part.split_whitespace().next())
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or_else(|| panic!("no restart counter in fleet output:\n{stdout}"))
}

/// Merges whichever shard stores a fleet run left behind into `store`, then
/// asserts the merged bytes match the single-process reference store.
fn merge_and_compare(dir: &Path, camp: &str, store: &str, workers: usize) {
    let stem = store.strip_suffix(".jsonl").unwrap();
    let shards: Vec<String> = (0..workers)
        .map(|k| format!("{stem}.shard{k}.jsonl"))
        .filter(|p| dir.join(p).exists())
        .collect();
    assert!(!shards.is_empty(), "a chaos fleet run must leave shards");
    let mut cmd = repro(dir);
    cmd.args(["campaign", "merge", "--campaign", camp, "--store", store]);
    cmd.args(&shards);
    run_ok(&mut cmd);
    assert_eq!(
        read(dir, "single.jsonl"),
        read(dir, store),
        "chaos fleet + merge must reproduce the single-process bytes"
    );
}

#[test]
fn seeded_chaos_schedules_converge_to_the_single_process_bytes() {
    let dir = scratch("seeds");
    let camp = write_campaign(&dir);
    run_ok(repro(&dir).args([
        "campaign",
        "run",
        "--campaign",
        &camp,
        "--store",
        "single.jsonl",
    ]));

    // Every seeded schedule arms a kill-class fault on shard 0, so each of
    // these runs must exercise the supervised-restart path at least once
    // and still converge to the reference bytes.
    for seed in ["1", "2", "3"] {
        let store = format!("chaos-{seed}.jsonl");
        let stdout = run_ok(repro(&dir).args([
            "campaign",
            "fleet",
            "--campaign",
            &camp,
            "--store",
            &store,
            "--workers",
            "3",
            "--chaos",
            seed,
            "--restart-budget",
            "3",
            "--hang-timeout",
            "2",
            "--ready-timeout",
            "10",
            "--progress",
        ]));
        assert!(
            stdout.contains("chaos plan armed"),
            "seed {seed}: the chaos banner must announce the plan:\n{stdout}"
        );
        assert!(
            restarts_reported(&stdout) >= 1,
            "seed {seed}: a kill-class schedule must record a restart:\n{stdout}"
        );
        merge_and_compare(&dir, &camp, &store, 3);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn an_explicit_plan_covering_every_fault_kind_converges() {
    let dir = scratch("kinds");
    let camp = write_campaign(&dir);
    run_ok(repro(&dir).args([
        "campaign",
        "run",
        "--campaign",
        &camp,
        "--store",
        "single.jsonl",
    ]));

    // One fault of each kind, spread across four workers: a crash in the
    // durable-but-unacknowledged window, a torn shard tail, a hang shorter
    // than the hang timeout, and a corrupted acknowledgement stream.
    let plan = r#"{"seed":null,"faults":[
        {"shard":0,"after_cells":1,"kind":"Kill"},
        {"shard":1,"after_cells":1,"kind":{"TornTail":{"tear_bytes":17}}},
        {"shard":2,"after_cells":1,"kind":{"Hang":{"millis":300}}},
        {"shard":3,"after_cells":1,"kind":"CorruptFrame"}
    ]}"#;
    let stdout = run_ok(repro(&dir).args([
        "campaign",
        "fleet",
        "--campaign",
        &camp,
        "--store",
        "kinds.jsonl",
        "--workers",
        "4",
        "--chaos",
        plan,
        "--restart-budget",
        "3",
        "--hang-timeout",
        "2",
        "--ready-timeout",
        "10",
        "--progress",
    ]));
    assert!(
        restarts_reported(&stdout) >= 1,
        "kill-class faults must force restarts:\n{stdout}"
    );
    merge_and_compare(&dir, &camp, "kinds.jsonl", 4);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_budget_exhaustion_degrades_to_reassignment_without_losing_cells() {
    let dir = scratch("budget");
    let camp = write_campaign(&dir);
    run_ok(repro(&dir).args([
        "campaign",
        "run",
        "--campaign",
        &camp,
        "--store",
        "single.jsonl",
    ]));

    // Worker 0 dies after every fresh cell, so with a budget of 1 it burns
    // two incarnations and is then abandoned; the survivor must absorb the
    // rest of the queue and the merged bytes must not change.
    let plan = r#"{"seed":null,"faults":[{"shard":0,"after_cells":1,"kind":"Kill"}]}"#;
    let stdout = run_ok(repro(&dir).args([
        "campaign",
        "fleet",
        "--campaign",
        &camp,
        "--store",
        "budget.jsonl",
        "--workers",
        "2",
        "--chaos",
        plan,
        "--restart-budget",
        "1",
        "--ready-timeout",
        "10",
        "--progress",
    ]));
    assert_eq!(
        restarts_reported(&stdout),
        1,
        "a budget of 1 allows exactly one respawn:\n{stdout}"
    );
    merge_and_compare(&dir, &camp, "budget.jsonl", 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fsck_inspects_a_store_read_only_and_flags_a_torn_tail() {
    let dir = scratch("fsck");
    let camp = write_campaign(&dir);
    run_ok(repro(&dir).args([
        "campaign",
        "run",
        "--campaign",
        &camp,
        "--store",
        "single.jsonl",
    ]));

    // A clean store passes.
    let stdout = run_ok(repro(&dir).args(["campaign", "fsck", "--store", "single.jsonl"]));
    assert!(
        stdout.contains("clean: the store loads as-is"),
        "an intact store must fsck clean:\n{stdout}"
    );

    // Tear bytes off the tail: fsck must locate the tear, exit non-zero,
    // and leave the store untouched.
    let intact = read(&dir, "single.jsonl");
    std::fs::write(dir.join("torn.jsonl"), &intact[..intact.len() - 9]).unwrap();
    let out = repro(&dir)
        .args(["campaign", "fsck", "--store", "torn.jsonl"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "a torn store must fsck non-zero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("torn tail:"),
        "fsck must name the torn tail:\n{stdout}"
    );
    assert_eq!(
        read(&dir, "torn.jsonl").len(),
        intact.len() - 9,
        "fsck must never modify the store"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
