//! Process-level fleet tests: the `repro` binary coordinating real worker
//! processes (itself, re-invoked as `campaign worker`), then merging the
//! shard stores and comparing bytes against a single-process run.
//!
//! These are the acceptance checks for distributed campaigns: fan-out plus
//! merge must be invisible in the output bytes, even when a worker is
//! killed mid-run.

use std::path::{Path, PathBuf};
use std::process::Command;

use dradio_campaign::{CampaignSpec, RoundsRule, SweepGroup, TrialPolicy};
use dradio_core::algorithms::GlobalAlgorithm;
use dradio_scenario::{AdversarySpec, ProblemSpec, TopologySpec};

/// A fresh scratch directory per test (tests run concurrently).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dradio-fleet-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The `repro` binary, run inside `dir`.
fn repro(dir: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.current_dir(dir);
    cmd
}

/// A small check-clean sweep, written to `campaign.json` in `dir`.
fn write_campaign(dir: &Path) -> String {
    let spec = CampaignSpec::named("fleet-it")
        .seed(11)
        .trials(TrialPolicy::Fixed(2))
        .group(
            SweepGroup::product(
                vec![
                    TopologySpec::Clique { n: 8 },
                    TopologySpec::Clique { n: 16 },
                    TopologySpec::DualClique { n: 16 },
                ],
                vec![
                    GlobalAlgorithm::Bgi.into(),
                    GlobalAlgorithm::Permuted.into(),
                ],
                vec![AdversarySpec::StaticNone],
                vec![ProblemSpec::GlobalFrom(0)],
            )
            .rounds(RoundsRule::Fixed(2_000)),
        );
    let json = serde_json::to_string(&spec).unwrap();
    std::fs::write(dir.join("campaign.json"), &json).unwrap();
    "campaign.json".into()
}

/// Runs a command expecting success; panics with its output otherwise.
fn run_ok(cmd: &mut Command) {
    let out = cmd.output().unwrap();
    assert!(
        out.status.success(),
        "command failed ({:?}):\nstdout: {}\nstderr: {}",
        cmd,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

fn read(dir: &Path, name: &str) -> Vec<u8> {
    std::fs::read(dir.join(name)).unwrap()
}

#[test]
fn fleet_plus_merge_is_byte_identical_to_a_single_process_run() {
    let dir = scratch("bytes");
    let camp = write_campaign(&dir);

    run_ok(repro(&dir).args([
        "campaign",
        "run",
        "--campaign",
        &camp,
        "--store",
        "single.jsonl",
    ]));
    run_ok(repro(&dir).args([
        "campaign",
        "fleet",
        "--campaign",
        &camp,
        "--store",
        "fleet.jsonl",
        "--workers",
        "2",
    ]));
    assert!(dir.join("fleet.shard0.jsonl").exists());
    assert!(dir.join("fleet.shard1.jsonl").exists());
    assert!(
        !dir.join("fleet.jsonl").exists(),
        "the fleet writes shards; only merge writes the output store"
    );
    run_ok(repro(&dir).args([
        "campaign",
        "merge",
        "--campaign",
        &camp,
        "--store",
        "fleet.jsonl",
        "fleet.shard0.jsonl",
        "fleet.shard1.jsonl",
    ]));

    assert_eq!(
        read(&dir, "single.jsonl"),
        read(&dir, "fleet.jsonl"),
        "fleet + merge must be invisible in the output bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_worker_killed_mid_run_still_converges_to_the_same_bytes() {
    let dir = scratch("kill");
    let camp = write_campaign(&dir);

    run_ok(repro(&dir).args([
        "campaign",
        "run",
        "--campaign",
        &camp,
        "--store",
        "single.jsonl",
    ]));

    // Worker 0 aborts right after its first durable append, before the
    // acknowledgement — the worst crash window. The coordinator re-assigns
    // its cells to the survivor.
    run_ok(repro(&dir).args([
        "campaign",
        "fleet",
        "--campaign",
        &camp,
        "--store",
        "fleet.jsonl",
        "--workers",
        "2",
        "--worker-exit-after",
        "1",
    ]));
    // A second (no-fault) pass proves the shard stores resume cleanly; with
    // everything already durable it must launch no workers.
    let out = repro(&dir)
        .args([
            "campaign",
            "fleet",
            "--campaign",
            &camp,
            "--store",
            "fleet.jsonl",
            "--workers",
            "2",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("6 skipped (already durable)"),
        "resume must skip everything: {stdout}"
    );

    run_ok(repro(&dir).args([
        "campaign",
        "merge",
        "--campaign",
        &camp,
        "--store",
        "fleet.jsonl",
        "fleet.shard0.jsonl",
        "fleet.shard1.jsonl",
    ]));
    assert_eq!(
        read(&dir, "single.jsonl"),
        read(&dir, "fleet.jsonl"),
        "a killed worker must not change the merged bytes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fleet_refuses_a_spec_that_fails_check() {
    let dir = scratch("refuse");
    // Two identical groups: expansion-level duplicates, a check warning.
    let dup = CampaignSpec::named("fleet-it-dup")
        .seed(11)
        .trials(TrialPolicy::Fixed(1))
        .group(
            SweepGroup::cell(
                TopologySpec::Clique { n: 8 },
                GlobalAlgorithm::Bgi,
                AdversarySpec::StaticNone,
                ProblemSpec::GlobalFrom(0),
            )
            .rounds(RoundsRule::Fixed(2_000)),
        )
        .group(
            SweepGroup::cell(
                TopologySpec::Clique { n: 8 },
                GlobalAlgorithm::Bgi,
                AdversarySpec::StaticNone,
                ProblemSpec::GlobalFrom(0),
            )
            .rounds(RoundsRule::Fixed(2_000)),
        );
    std::fs::write(dir.join("dup.json"), serde_json::to_string(&dup).unwrap()).unwrap();

    let out = repro(&dir)
        .args([
            "campaign",
            "fleet",
            "--campaign",
            "dup.json",
            "--store",
            "dup.jsonl",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "a warned spec must not launch");
    assert!(
        !dir.join("dup.shard0.jsonl").exists(),
        "no shard store may be created for a refused spec"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_without_shard_paths_is_a_usage_error() {
    let dir = scratch("usage");
    let camp = write_campaign(&dir);
    let out = repro(&dir)
        .args([
            "campaign",
            "merge",
            "--campaign",
            &camp,
            "--store",
            "out.jsonl",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("at least one shard store"),
        "the error must say shard paths are missing"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
