//! Static campaign-spec validation: `repro campaign check`.
//!
//! Everything here is computable from the spec alone — no cell is executed,
//! no topology is built. The check catches the mistakes that otherwise only
//! surface hours into a sweep:
//!
//! * duplicate cell keys (within a group's product, or across groups) —
//!   expansion silently keeps the first, so a duplicated cell is almost
//!   always a spec typo;
//! * effectively-fixed adaptive policies (`min == max`), which pay the
//!   adaptive bookkeeping without ever adapting;
//! * **unreachable** completion-targeted stop rules: a Wilson half-width
//!   target tighter than the interval can mathematically reach at `max`
//!   trials means the rule always runs to `max` — the precision request is
//!   a no-op;
//! * a per-group and total budget estimate (cells, worst-case trials,
//!   worst-case simulated rounds), so the cost of a sweep is visible before
//!   it starts.

use std::fmt;

use dradio_scenario::{AdversaryClass, BackendChoice, Completion, GraphBackend, MAX_LANES};

use crate::error::Result;
use crate::spec::{CampaignSpec, CellSpec, TrialPolicy};

/// The worst-case budget of one sweep group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupBudget {
    /// Group position in the spec.
    pub index: usize,
    /// Distinct cells the group expands to (duplicates within the group
    /// already removed).
    pub cells: usize,
    /// Worst-case trials across the group (`max` for adaptive policies).
    pub max_trials: usize,
    /// Worst-case simulated rounds across the group: Σ over cells of
    /// `max_trials · round_budget`. `None` when some round budget is not
    /// derivable from the spec (custom-sized topology under a default rule).
    pub max_rounds: Option<u64>,
    /// Worst-case *executor round passes* under bit-sliced batch execution
    /// (`--batch`): batchable cells advance up to 64 trials per pass, so
    /// they contribute `⌈max_trials / 64⌉ · round_budget`; unbatchable cells
    /// (adaptive or custom adversaries, history-recording modes) fall back
    /// to scalar and contribute `max_trials · round_budget`. The honest
    /// wall-clock proxy for a batched run — `max_rounds` stays the simulated
    /// total. `None` exactly when `max_rounds` is.
    pub max_batched_rounds: Option<u64>,
    /// The largest estimated topology footprint among the group's cells:
    /// the storage backend the group's [`BackendChoice`] resolves to for
    /// that cell, and the estimated bytes for both network layers
    /// ([`dradio_scenario::TopologySpec::memory_estimate`]). `None` when no
    /// cell's size is derivable from its spec.
    pub peak_topology: Option<(GraphBackend, u64)>,
}

/// A non-fatal spec smell: the campaign runs, but not the way the author
/// probably meant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckWarning {
    /// Group the warning concerns (`None` for campaign-wide warnings).
    pub group: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

/// The result of statically checking a campaign spec.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckReport {
    /// Campaign name.
    pub name: String,
    /// Per-group budgets, in declaration order.
    pub groups: Vec<GroupBudget>,
    /// Distinct cells across the whole campaign.
    pub cells: usize,
    /// Spec smells (duplicates, unreachable targets, degenerate policies).
    pub warnings: Vec<CheckWarning>,
}

impl CheckReport {
    /// Whether the spec is clean (valid and without warnings).
    pub fn is_clean(&self) -> bool {
        self.warnings.is_empty()
    }
}

/// Statically checks `spec` (see the module docs for the checklist).
///
/// # Errors
///
/// [`crate::CampaignError::Spec`] for everything expansion itself rejects:
/// empty axes, zero-trial policies, degenerate widths, unresolvable round
/// budgets. Warnings, by contrast, are returned in the report.
pub fn check(spec: &CampaignSpec) -> Result<CheckReport> {
    check_with_budget(spec, None)
}

/// [`check`] with a per-cell topology memory budget in bytes: any cell whose
/// estimated topology footprint (under the backend its group forces, or the
/// auto heuristic) exceeds `mem_budget` draws a warning — with a pointer at
/// the CSR backend when switching would bring the cell back under budget.
///
/// # Errors
///
/// Exactly [`check`]'s.
pub fn check_with_budget(spec: &CampaignSpec, mem_budget: Option<u64>) -> Result<CheckReport> {
    // Expansion validates the spec and is the source of truth for keys.
    let all_cells = spec.expand()?;
    let mut warnings = Vec::new();
    let mut groups = Vec::new();

    // Re-expand each group in isolation to attribute keys and budgets.
    let mut seen: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for (index, group) in spec.groups.iter().enumerate() {
        let mut sub = CampaignSpec::named(&spec.name);
        sub.seed = spec.seed;
        sub.trials = spec.trials;
        sub.groups = vec![group.clone()];
        let cells = sub.expand()?;

        let product = group.topologies.len()
            * group.algorithms.len()
            * group.adversaries.len()
            * group.problems.len();
        if cells.len() < product {
            warnings.push(CheckWarning {
                group: Some(index),
                message: format!(
                    "group {index} expands to {} distinct cells from a product of {product}; \
                     {} duplicate cell(s) inside the group collapse silently",
                    cells.len(),
                    product - cells.len()
                ),
            });
        }
        for cell in &cells {
            if let Some(first) = seen.get(&cell.key()) {
                if *first != index {
                    warnings.push(CheckWarning {
                        group: Some(index),
                        message: format!(
                            "group {index} repeats cell {} ({}) already produced by group \
                             {first}; only the first copy is measured",
                            cell.key(),
                            cell.label()
                        ),
                    });
                }
            } else {
                seen.insert(cell.key(), index);
            }
        }

        let policy = group.trials.unwrap_or(spec.trials);
        check_policy(index, policy, &mut warnings);

        let max_trials = match policy {
            TrialPolicy::Fixed(n) => n,
            TrialPolicy::Adaptive { max, .. } => max,
        };
        // Worst-case rounds: every trial of every cell runs to its budget.
        // The batched estimate packs a batchable cell's trials into 64-wide
        // lane groups, each advancing one round per executor pass.
        let mut rounds_total: Option<u64> = Some(0);
        let mut batched_total: Option<u64> = Some(0);
        for cell in &cells {
            let budget = match cell.scenario.max_rounds {
                Some(rounds) => Some(rounds as u64),
                None => cell
                    .scenario
                    .topology
                    .node_count()
                    .map(|n| 200 * n as u64 + 2_000),
            };
            let batched_trials = if batchable(cell) {
                (max_trials as u64).div_ceil(MAX_LANES as u64)
            } else {
                max_trials as u64
            };
            rounds_total = match (rounds_total, budget) {
                (Some(total), Some(b)) => Some(total.saturating_add(b * max_trials as u64)),
                _ => None,
            };
            batched_total = match (batched_total, budget) {
                (Some(total), Some(b)) => Some(total.saturating_add(b * batched_trials)),
                _ => None,
            };
        }
        // Peak topology footprint across the group's cells, and the budget
        // warning for the worst offender (one warning per group, not per
        // cell — a sweep over 50 oversized sizes is one mistake, not 50).
        let mut peak: Option<(GraphBackend, u64)> = None;
        let mut worst_over: Option<(&CellSpec, GraphBackend, u64)> = None;
        for cell in &cells {
            let Some((backend, bytes)) = cell.scenario.topology.memory_estimate(cell.backend)
            else {
                continue;
            };
            if peak.is_none_or(|(_, b)| bytes > b) {
                peak = Some((backend, bytes));
            }
            if mem_budget.is_some_and(|budget| bytes > budget)
                && worst_over.is_none_or(|(_, _, b)| bytes > b)
            {
                worst_over = Some((cell, backend, bytes));
            }
        }
        if let (Some(budget), Some((cell, backend, bytes))) = (mem_budget, worst_over) {
            let csr_fit = if backend == GraphBackend::Dense {
                cell.scenario
                    .topology
                    .memory_estimate(BackendChoice::Csr)
                    .map(|(_, b)| b)
                    .filter(|b| *b <= budget)
            } else {
                None
            };
            let hint = match csr_fit {
                Some(csr_bytes) => format!(
                    "; forcing the csr backend on the group brings it to ~{}",
                    format_bytes(csr_bytes)
                ),
                None => String::new(),
            };
            warnings.push(CheckWarning {
                group: Some(index),
                message: format!(
                    "group {index}: topology {} needs ~{} as {backend} — over the {} \
                     memory budget{hint}",
                    cell.scenario.topology.label(),
                    format_bytes(bytes),
                    format_bytes(budget),
                ),
            });
        }
        groups.push(GroupBudget {
            index,
            cells: cells.len(),
            max_trials,
            max_rounds: rounds_total,
            max_batched_rounds: batched_total,
            peak_topology: peak,
        });
    }

    Ok(CheckReport {
        name: spec.name.clone(),
        groups,
        cells: all_cells.len(),
        warnings,
    })
}

/// Whether a cell can run on the bit-sliced batch executor: oblivious
/// adversary (adaptive and custom classes cannot be replayed lane-wise) and
/// no history recording. Mirrors `Scenario::is_batchable` — spec-level, so
/// the budget estimate needs no built components.
fn batchable(cell: &CellSpec) -> bool {
    cell.scenario.adversary.class() == Some(AdversaryClass::Oblivious)
        && !cell.record_mode.records_history()
}

/// Policy-level smells: degenerate adaptivity and unreachable stop targets.
fn check_policy(index: usize, policy: TrialPolicy, warnings: &mut Vec<CheckWarning>) {
    let TrialPolicy::Adaptive {
        min,
        max,
        relative_width,
        stop,
    } = policy
    else {
        return;
    };
    if min == max {
        warnings.push(CheckWarning {
            group: Some(index),
            message: format!(
                "group {index}: adaptive policy has min == max == {max}; it can never \
                 adapt — a Fixed({max}) policy says the same thing honestly"
            ),
        });
    }
    if stop == crate::spec::StopRule::CompletionCi {
        // The Wilson half-width at n trials is minimized at the boundary
        // rates (all completed / none completed); if even that floor exceeds
        // the requested width, the stop target is unreachable and the policy
        // degenerates to "always run max trials".
        let floor = Completion {
            completed: max,
            trials: max,
        }
        .wilson_half_width();
        if relative_width < floor {
            warnings.push(CheckWarning {
                group: Some(index),
                message: format!(
                    "group {index}: completion-CI target ±{relative_width} is unreachable — \
                     at max {max} trials the tightest achievable Wilson half-width is \
                     ±{floor:.4}; the policy will always run all {max} trials (raise max to \
                     at least {} or relax the width)",
                    trials_for_width(relative_width)
                ),
            });
        }
    }
}

/// The smallest trial count whose boundary-rate Wilson half-width fits under
/// `width` — the "raise max to at least this" hint. Derived by doubling from
/// 1 (the adaptive runner also doubles, so the hint lands on a count the
/// policy can actually reach).
fn trials_for_width(width: f64) -> usize {
    let mut n = 1usize;
    while n < 1 << 30 {
        let floor = Completion {
            completed: n,
            trials: n,
        }
        .wilson_half_width();
        if floor <= width {
            return n;
        }
        n *= 2;
    }
    n
}

/// Formats a byte count with a binary-unit suffix (B, KiB, MiB, GiB, TiB),
/// one decimal place — the shape budget banners and check reports print.
pub fn format_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "campaign {:?}: {} distinct cells", self.name, self.cells)?;
        for g in &self.groups {
            let rounds = match (g.max_rounds, g.max_batched_rounds) {
                (Some(r), Some(b)) if b < r => {
                    format!("<= {r} simulated rounds (<= {b} word passes with --batch)")
                }
                (Some(r), _) => format!("<= {r} simulated rounds"),
                (None, _) => String::from("round budget not derivable from the spec"),
            };
            let memory = match g.peak_topology {
                Some((backend, bytes)) => {
                    format!(", peak topology ~{} ({backend})", format_bytes(bytes))
                }
                None => String::new(),
            };
            writeln!(
                f,
                "  group {}: {} cells x up to {} trials, {rounds}{memory}",
                g.index, g.cells, g.max_trials
            )?;
        }
        if self.warnings.is_empty() {
            writeln!(f, "no warnings")?;
        } else {
            for w in &self.warnings {
                writeln!(f, "warning: {}", w.message)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{StopRule, SweepGroup};
    use dradio_scenario::{AdversarySpec, AlgorithmSpec, ProblemSpec, TopologySpec};

    fn cell_group(n: usize) -> SweepGroup {
        SweepGroup::cell(
            TopologySpec::Clique { n },
            AlgorithmSpec::Global(dradio_core::GlobalAlgorithm::Bgi),
            AdversarySpec::StaticNone,
            ProblemSpec::GlobalFrom(0),
        )
    }

    fn campaign() -> CampaignSpec {
        let mut spec = CampaignSpec::named("check-test");
        spec.trials = TrialPolicy::Fixed(4);
        spec.groups.push(cell_group(8));
        spec
    }

    #[test]
    fn a_clean_spec_reports_budgets_and_no_warnings() {
        let report = check(&campaign()).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.cells, 1);
        assert_eq!(report.groups.len(), 1);
        assert_eq!(report.groups[0].max_trials, 4);
        // One cell, 4 trials, default budget 200·8 + 2000.
        assert_eq!(report.groups[0].max_rounds, Some(4 * (200 * 8 + 2_000)));
    }

    #[test]
    fn duplicates_within_and_across_groups_are_warned() {
        let mut spec = campaign();
        // Same cell again in a second group.
        spec.groups.push(cell_group(8));
        // And a group whose product repeats an axis entry.
        let mut doubled = cell_group(16);
        doubled.problems.push(ProblemSpec::GlobalFrom(0));
        spec.groups.push(doubled);
        let report = check(&spec).unwrap();
        assert_eq!(report.cells, 2, "duplicates collapse in the real expansion");
        let messages: Vec<&str> = report.warnings.iter().map(|w| w.message.as_str()).collect();
        assert!(
            messages
                .iter()
                .any(|m| m.contains("already produced by group 0")),
            "{messages:?}"
        );
        assert!(
            messages.iter().any(|m| m.contains("collapse silently")),
            "{messages:?}"
        );
    }

    #[test]
    fn degenerate_and_unreachable_adaptive_policies_are_warned() {
        let mut spec = campaign();
        spec.trials = TrialPolicy::Adaptive {
            min: 8,
            max: 8,
            relative_width: 0.05,
            stop: StopRule::MeanCostCi,
        };
        let report = check(&spec).unwrap();
        assert!(report
            .warnings
            .iter()
            .any(|w| w.message.contains("min == max")));

        // ±0.01 needs far more than 16 trials: the Wilson floor at n=16 is
        // ~0.1, so the target is unreachable and the hint must say how many
        // trials would suffice.
        spec.trials = TrialPolicy::Adaptive {
            min: 4,
            max: 16,
            relative_width: 0.01,
            stop: StopRule::CompletionCi,
        };
        let report = check(&spec).unwrap();
        let unreachable = report
            .warnings
            .iter()
            .find(|w| w.message.contains("unreachable"))
            .expect("unreachable target must be warned");
        let hint = trials_for_width(0.01);
        assert!(
            unreachable.message.contains(&format!("at least {hint}")),
            "{}",
            unreachable.message
        );
        // The hint is self-consistent: that count actually reaches the width.
        let floor = Completion {
            completed: hint,
            trials: hint,
        }
        .wilson_half_width();
        assert!(floor <= 0.01 && hint > 16);

        // A reachable completion target stays quiet.
        spec.trials = TrialPolicy::Adaptive {
            min: 4,
            max: 4096,
            relative_width: 0.1,
            stop: StopRule::CompletionCi,
        };
        let report = check(&spec).unwrap();
        assert!(
            !report
                .warnings
                .iter()
                .any(|w| w.message.contains("unreachable")),
            "{:?}",
            report.warnings
        );
    }

    #[test]
    fn batched_budget_packs_lane_groups_only_for_batchable_cells() {
        // 100 trials over a batchable (oblivious, history-free) cell: the
        // batched estimate packs them into ⌈100/64⌉ = 2 lane groups.
        let mut spec = CampaignSpec::named("batched-budget");
        spec.trials = TrialPolicy::Fixed(100);
        spec.groups
            .push(cell_group(8).rounds(crate::spec::RoundsRule::Fixed(1_000)));
        let report = check(&spec).unwrap();
        assert_eq!(report.groups[0].max_rounds, Some(100 * 1_000));
        assert_eq!(report.groups[0].max_batched_rounds, Some(2 * 1_000));
        let text = report.to_string();
        assert!(text.contains("<= 2000 word passes with --batch"), "{text}");

        // An adaptive adversary cannot batch: both estimates agree, and the
        // display drops the batch hint.
        let mut adaptive = cell_group(8).rounds(crate::spec::RoundsRule::Fixed(1_000));
        adaptive.adversaries = vec![AdversarySpec::GreedyCollision];
        spec.groups = vec![adaptive];
        let report = check(&spec).unwrap();
        assert_eq!(report.groups[0].max_rounds, Some(100 * 1_000));
        assert_eq!(report.groups[0].max_batched_rounds, Some(100 * 1_000));
        assert!(!report.to_string().contains("--batch"));

        // Full recording blocks batching too.
        let mut recorded = cell_group(8).rounds(crate::spec::RoundsRule::Fixed(1_000));
        recorded.record_mode = dradio_scenario::RecordMode::Full;
        spec.groups = vec![recorded];
        let report = check(&spec).unwrap();
        assert_eq!(report.groups[0].max_batched_rounds, Some(100 * 1_000));
    }

    #[test]
    fn memory_budgets_warn_on_oversized_dense_cells() {
        // A million-node grid under the auto heuristic resolves to CSR and
        // fits comfortably in a 1 GiB budget: report stays clean, and the
        // peak-topology estimate names the backend it resolved.
        let mut spec = CampaignSpec::named("mem-budget");
        spec.trials = TrialPolicy::Fixed(1);
        let big = SweepGroup::cell(
            TopologySpec::Grid {
                cols: 1000,
                rows: 1000,
            },
            AlgorithmSpec::Global(dradio_core::GlobalAlgorithm::Bgi),
            AdversarySpec::StaticNone,
            ProblemSpec::GlobalFrom(0),
        )
        .rounds(crate::spec::RoundsRule::Fixed(10));
        spec.groups.push(big.clone());
        let budget = 1u64 << 30;
        let report = check_with_budget(&spec, Some(budget)).unwrap();
        assert!(report.is_clean(), "{report}");
        let (backend, bytes) = report.groups[0].peak_topology.unwrap();
        assert_eq!(backend, GraphBackend::Csr);
        assert!(bytes < budget, "CSR grid estimate must fit: {bytes}");
        assert!(report.to_string().contains("peak topology"), "{report}");

        // Forcing the dense backend on the same group blows the budget
        // (~116 GiB of bitmatrix per layer) and the warning points back at
        // the CSR backend that would fit.
        spec.groups = vec![big.backend(BackendChoice::Dense)];
        let report = check_with_budget(&spec, Some(budget)).unwrap();
        let (backend, bytes) = report.groups[0].peak_topology.unwrap();
        assert_eq!(backend, GraphBackend::Dense);
        assert!(bytes > 100u64 << 30, "dense estimate is huge: {bytes}");
        let warning = report
            .warnings
            .iter()
            .find(|w| w.message.contains("memory budget"))
            .expect("over-budget dense cell must be warned");
        assert!(warning.message.contains("dense"), "{}", warning.message);
        assert!(
            warning.message.contains("forcing the csr backend"),
            "{}",
            warning.message
        );

        // Without a budget the same spec checks clean — estimates are
        // informational unless the caller sets a ceiling.
        let report = check(&spec).unwrap();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn expansion_errors_propagate_as_errors_not_warnings() {
        let mut spec = campaign();
        spec.trials = TrialPolicy::Fixed(0);
        assert!(check(&spec).is_err());
    }

    #[test]
    fn display_summarizes_groups_and_warnings() {
        let report = check(&campaign()).unwrap();
        let text = report.to_string();
        assert!(text.contains("1 distinct cells"));
        assert!(text.contains("group 0: 1 cells x up to 4 trials"));
        assert!(text.contains("no warnings"));
    }
}
