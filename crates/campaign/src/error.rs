//! Errors produced while expanding, storing, or running a campaign.

use std::fmt;

use dradio_scenario::ScenarioError;

/// Everything that can go wrong in the campaign engine.
#[derive(Debug)]
pub enum CampaignError {
    /// The campaign spec is malformed (empty axis, zero-trial policy, …).
    /// Misconfiguration is a spec-validation error, never a panic: a campaign
    /// asking for zero trials surfaces here before any cell runs.
    Spec {
        /// Human-readable explanation.
        reason: String,
    },
    /// A cell failed to build or run (incompatible components, rejected
    /// topology parameters, …). Carries the offending cell's label.
    Cell {
        /// Display label of the failing cell.
        cell: String,
        /// The underlying scenario error.
        source: ScenarioError,
    },
    /// A cell's execution panicked on a worker thread — a bug in a lower
    /// layer, captured so the campaign fails cleanly instead of wedging the
    /// in-order committer on a slot that would never fill.
    CellPanicked {
        /// Display label of the panicking cell.
        cell: String,
        /// The panic payload, if it was a string.
        reason: String,
    },
    /// A scenario operation failed outside any campaign cell (e.g. an
    /// experiment's bespoke non-campaign path building a scenario).
    Scenario(ScenarioError),
    /// The result store could not be read, parsed, or written.
    Store {
        /// Human-readable explanation (path + cause).
        reason: String,
    },
}

impl CampaignError {
    /// Creates a spec-validation error.
    pub fn spec(reason: impl Into<String>) -> Self {
        CampaignError::Spec {
            reason: reason.into(),
        }
    }

    /// Creates a store error.
    pub fn store(reason: impl Into<String>) -> Self {
        CampaignError::Store {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Spec { reason } => write!(f, "invalid campaign spec: {reason}"),
            CampaignError::Cell { cell, source } => {
                write!(f, "campaign cell [{cell}] failed: {source}")
            }
            CampaignError::CellPanicked { cell, reason } => {
                write!(f, "campaign cell [{cell}] panicked: {reason}")
            }
            CampaignError::Scenario(source) => write!(f, "scenario failed: {source}"),
            CampaignError::Store { reason } => write!(f, "campaign result store: {reason}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Cell { source, .. } | CampaignError::Scenario(source) => Some(source),
            _ => None,
        }
    }
}

impl From<ScenarioError> for CampaignError {
    fn from(source: ScenarioError) -> Self {
        CampaignError::Scenario(source)
    }
}

/// Convenient result alias for fallible campaign operations.
pub type Result<T> = std::result::Result<T, CampaignError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases = vec![
            (CampaignError::spec("no groups"), "invalid campaign spec"),
            (
                CampaignError::Cell {
                    cell: "clique(8) × bgi".into(),
                    source: ScenarioError::NoTrials,
                },
                "campaign cell [clique(8) × bgi]",
            ),
            (
                CampaignError::CellPanicked {
                    cell: "clique(8) × bgi".into(),
                    reason: "index out of bounds".into(),
                },
                "panicked: index out of bounds",
            ),
            (
                CampaignError::Scenario(ScenarioError::NoTrials),
                "scenario failed",
            ),
            (CampaignError::store("short read"), "result store"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err} missing {needle}");
        }
    }

    #[test]
    fn scenario_errors_convert() {
        let err: CampaignError = ScenarioError::NoTrials.into();
        assert!(matches!(err, CampaignError::Scenario(_)));
        assert!(std::error::Error::source(&err).is_some());
    }
}
