//! Declarative measurement campaigns over [`dradio_scenario`] sweeps, with a
//! persistent, resumable result store.
//!
//! The experiments of the PODC 2013 reproduction are *sweeps*: round
//! complexity measured across network size, density, adversary class, and
//! algorithm. This crate turns one sweep into a first-class value and gives
//! it durability:
//!
//! * [`CampaignSpec`] — a serializable description of a grid of cells: one or
//!   more [`SweepGroup`]s, each a cartesian product of topology × algorithm ×
//!   adversary × problem axes, plus trial counts ([`TrialPolicy`]) and round
//!   budgets ([`RoundsRule`]). [`CampaignSpec::expand`] turns it into a
//!   deterministic, duplicate-free cell list; every [`CellSpec`] carries a
//!   content-hash key.
//! * [`ResultStore`] — an append-only JSONL store of [`CellRecord`]s keyed by
//!   those content hashes; tolerant of the torn final line a killed run
//!   leaves behind.
//! * [`CampaignRunner`] — executes the cells missing from a store with
//!   work-stealing parallelism across cells and commits measurements in
//!   expansion order, so *partial run + resume* produces a store
//!   byte-for-byte identical to one uninterrupted run.
//! * Adaptive trial allocation — [`TrialPolicy::Adaptive`] keeps adding
//!   trials to a cell (doubling, up to a cap) until its [`StopRule`]'s
//!   target statistic is tighter than a requested width: the 95% confidence
//!   interval of the mean cost, or the Wilson score interval of the
//!   completion rate (the right target for lower-bound experiments).
//! * Typed multi-statistic measurements — cells record a rounds summary,
//!   exact completion counts, and (with [`SweepGroup::curve`]) a streamed
//!   mean contention-over-time curve from `CollisionsOnly` recording;
//!   stores written before these fields existed load, resume, and
//!   re-serialize byte-identically.
//!
//! # Example
//!
//! ```
//! use dradio_campaign::{CampaignRunner, CampaignSpec, RoundsRule, SweepGroup, TrialPolicy};
//! use dradio_core::algorithms::GlobalAlgorithm;
//! use dradio_scenario::{AdversarySpec, ProblemSpec, TopologySpec};
//!
//! let campaign = CampaignSpec::named("clique-sweep")
//!     .seed(1)
//!     .trials(TrialPolicy::Fixed(2))
//!     .group(
//!         SweepGroup::product(
//!             vec![TopologySpec::Clique { n: 8 }, TopologySpec::Clique { n: 16 }],
//!             vec![GlobalAlgorithm::Bgi.into(), GlobalAlgorithm::Permuted.into()],
//!             vec![AdversarySpec::StaticNone],
//!             vec![ProblemSpec::GlobalFrom(0)],
//!         )
//!         .rounds(RoundsRule::PerNode { per_node: 200, base: 0, min_nodes: 16 }),
//!     );
//!
//! let store = CampaignRunner::new(&campaign).run_in_memory()?;
//! assert_eq!(store.len(), 4);
//! // Rerunning skips everything — the store already holds every cell.
//! # let mut store = store;
//! let report = CampaignRunner::new(&campaign).run(&mut store)?;
//! assert_eq!(report.executed, 0);
//! # Ok::<(), dradio_campaign::CampaignError>(())
//! ```
//!
//! File-backed stores work the same way through [`ResultStore::open`]; the
//! `repro` binary's `campaign run/resume/report` subcommands are thin
//! wrappers over this API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod error;
pub mod runner;
pub mod spec;
pub mod store;

pub use check::{check, check_with_budget, format_bytes, CheckReport, CheckWarning, GroupBudget};
pub use error::{CampaignError, Result};
pub use runner::{execute_cell, execute_cell_batched, CampaignRunner, RunReport};
pub use spec::{CampaignSpec, CellSpec, RoundsRule, StopRule, SweepGroup, TrialPolicy};
pub use store::{CellRecord, CompactReport, FsckReport, MergeReport, ResultStore};
