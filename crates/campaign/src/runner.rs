//! Executing a campaign: work-stealing across cells, streaming committed
//! results to the store in deterministic order.
//!
//! # Execution model
//!
//! Pending cells (those whose key is absent from the store) are claimed by
//! worker threads off a shared atomic counter — dynamic self-scheduling, so a
//! slow cell never idles the other workers. Finished measurements are handed
//! to a committer that appends them to the [`ResultStore`] strictly in
//! cell-expansion order. Two consequences:
//!
//! * **Determinism** — the store's byte content depends only on the campaign
//!   spec, never on thread scheduling (measurements are deterministic per
//!   cell; commit order is fixed).
//! * **Resumability** — a killed run leaves a clean expansion-order prefix
//!   (plus at most one torn line the store discards), and a resumed run
//!   appends exactly the missing suffix, reproducing the uninterrupted store
//!   byte for byte.
//!
//! Trials *within* a cell run sequentially when cells run in parallel (the
//! cell fan-out already saturates the cores); when only one cell is pending
//! the runner drops to the scenario layer's parallel trial runner instead.
//! Both modes produce identical measurements by the scenario runner's
//! parallel-equals-sequential guarantee. Curve-streaming cells
//! ([`CellSpec::curve`]) always run their trials sequentially through one
//! executor so each trial's collision curve folds straight into the
//! measurement — their scalar statistics are identical either way.
//!
//! # Topology residency
//!
//! Distinct topologies are built at most once per run and shared by every
//! cell that sweeps over them, but the cache is *scoped*: each topology is
//! built lazily when its first cell runs and dropped as soon as its **last
//! pending cell commits** (a per-topology reference count), so a campaign
//! sweeping many large distinct networks holds only the graphs its in-flight
//! window actually needs instead of all of them until the run ends. The
//! cache is invisible in the results — keys, measurements, and store bytes
//! are identical with and without it (pinned by this module's tests).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
// lint: allow(D2) -- wall-clock time feeds only the stderr progress meter,
// never a measurement or store byte
use std::time::Instant;

use dradio_scenario::{
    BuiltTopology, Measurement, Scenario, ScenarioBuilder, ScenarioRunner, TopologySpec,
    TrialAccumulator,
};

use crate::error::{CampaignError, Result};
use crate::spec::{CampaignSpec, CellSpec, StopRule, TrialPolicy};
use crate::store::{CellRecord, ResultStore};

/// What a [`CampaignRunner::run`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunReport {
    /// Total cells in the campaign's expansion.
    pub total: usize,
    /// Cells skipped because the store already held them.
    pub skipped: usize,
    /// Cells executed (and appended) by this call.
    pub executed: usize,
}

/// Executes the cells of a [`CampaignSpec`] against a [`ResultStore`].
#[derive(Debug, Clone, Copy)]
pub struct CampaignRunner<'a> {
    spec: &'a CampaignSpec,
    threads: Option<usize>,
    progress: bool,
    batch: bool,
}

impl<'a> CampaignRunner<'a> {
    /// Creates a runner over `spec` with automatic thread-count selection.
    pub fn new(spec: &'a CampaignSpec) -> Self {
        CampaignRunner {
            spec,
            threads: None,
            progress: false,
            batch: false,
        }
    }

    /// Overrides the worker thread count (`1` forces fully sequential cell
    /// execution; measurements are identical either way).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Enables a per-commit progress line on stderr (`cells done/total,
    /// cells/sec, ETA`). Off by default so captured output stays stable;
    /// stdout and the store are never touched.
    pub fn progress(mut self, enabled: bool) -> Self {
        self.progress = enabled;
        self
    }

    /// Requests bit-sliced batch trial execution for every cell of this run,
    /// regardless of the per-cell [`CellSpec::batch`] flag (which still
    /// applies on its own). A pure execution strategy: unbatchable cells
    /// fall back to the scalar path, and batched cells produce bit-for-bit
    /// the scalar measurements, so the store bytes are identical either way.
    pub fn batch(mut self, enabled: bool) -> Self {
        self.batch = enabled;
        self
    }

    /// Runs every cell not already present in `store`, appending results in
    /// cell-expansion order.
    ///
    /// # Errors
    ///
    /// * [`CampaignError::Spec`] if the campaign fails to validate or expand.
    /// * [`CampaignError::Cell`] if a cell fails to build or run; cells
    ///   committed before the failure remain in the store, so a fixed spec
    ///   can resume past them.
    /// * [`CampaignError::Store`] on store I/O failures.
    pub fn run(&self, store: &mut ResultStore) -> Result<RunReport> {
        let cells = self.spec.expand()?;
        let total = cells.len();
        let pending: Vec<CellSpec> = cells
            .into_iter()
            .filter(|cell| !store.contains(&cell.key()))
            .collect();
        let skipped = total - pending.len();
        if pending.is_empty() {
            return Ok(RunReport {
                total,
                skipped,
                executed: 0,
            });
        }

        // One scoped cache for the whole run: each distinct topology is
        // built once, on first use, and dropped when its last pending cell
        // commits.
        let topologies = TopologyCache::for_pending(&pending);

        let threads = self
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            })
            .min(pending.len());

        let meter = self
            .progress
            .then(|| ProgressMeter::new(pending.len(), skipped));
        let executed = if threads <= 1 {
            // Sequential cells: let each cell parallelize its own trials.
            let mut executed = 0;
            let mut trials_done = 0;
            for cell in &pending {
                let record = run_cell(cell, true, &topologies, self.batch)?;
                trials_done += record.trials_run;
                store.append(record)?;
                topologies.committed(&cell.scenario.topology);
                executed += 1;
                if let Some(meter) = &meter {
                    meter.tick(executed, trials_done);
                }
            }
            executed
        } else {
            self.run_parallel(&pending, threads, store, meter.as_ref(), &topologies)?
        };

        Ok(RunReport {
            total,
            skipped,
            executed,
        })
    }

    /// Convenience: runs the whole campaign into a fresh in-memory store.
    ///
    /// # Errors
    ///
    /// See [`CampaignRunner::run`].
    pub fn run_in_memory(&self) -> Result<ResultStore> {
        let mut store = ResultStore::in_memory();
        self.run(&mut store)?;
        Ok(store)
    }

    /// Work-stealing execution: workers claim cell indices off an atomic
    /// counter; the calling thread commits results in expansion order as they
    /// become available.
    fn run_parallel(
        &self,
        pending: &[CellSpec],
        threads: usize,
        store: &mut ResultStore,
        meter: Option<&ProgressMeter>,
        topologies: &TopologyCache,
    ) -> Result<usize> {
        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let slots: Mutex<Vec<Option<Result<CellRecord>>>> =
            Mutex::new((0..pending.len()).map(|_| None).collect());
        let ready = Condvar::new();

        let mut executed = 0usize;
        let mut trials_done = 0usize;
        let mut failure: Option<CampaignError> = None;

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= pending.len() {
                        break;
                    }
                    // Trials run sequentially here — the cell fan-out owns
                    // the cores. Panics are captured into the slot: an empty
                    // slot would wedge the in-order committer forever.
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run_cell(&pending[i], false, topologies, self.batch)
                    }))
                    .unwrap_or_else(|payload| {
                        Err(CampaignError::CellPanicked {
                            cell: pending[i].label(),
                            reason: panic_reason(payload.as_ref()),
                        })
                    });
                    let mut slots = ready_lock(&slots);
                    slots[i] = Some(result);
                    drop(slots);
                    ready.notify_all();
                });
            }

            // In-order committer: wait for slot `commit`, append, advance.
            for commit in 0..pending.len() {
                let result = {
                    let mut slots = ready_lock(&slots);
                    loop {
                        if let Some(result) = slots[commit].take() {
                            break result;
                        }
                        slots = ready
                            .wait(slots)
                            // lint: allow(D4) -- workers publish results, they
                            // never panic while holding the slot lock
                            .expect("campaign workers do not poison the slot lock");
                    }
                };
                let trials_run = result.as_ref().map(|r| r.trials_run).unwrap_or(0);
                match result.and_then(|record| store.append(record)) {
                    Ok(()) => {
                        // The committed cell releases its topology
                        // reference; the last release drops the graph. Any
                        // still-pending cell sharing the topology holds a
                        // reference of its own, and cells commit strictly
                        // in expansion order, so nothing evicted here can
                        // be needed again.
                        topologies.committed(&pending[commit].scenario.topology);
                        executed += 1;
                        trials_done += trials_run;
                        if let Some(meter) = meter {
                            meter.tick(executed, trials_done);
                        }
                    }
                    Err(e) => {
                        // Stop claiming new cells; in-flight cells finish and
                        // are discarded. The store keeps the committed prefix.
                        stop.store(true, Ordering::Relaxed);
                        failure = Some(e);
                        break;
                    }
                }
            }
            // Unblock any worker between claim and publish.
            stop.store(true, Ordering::Relaxed);
        });

        match failure {
            Some(e) => Err(e),
            None => Ok(executed),
        }
    }
}

/// Stderr progress reporting for long campaign runs. The runner commits in
/// expansion order, so "cells committed" is an honest prefix of the work and
/// the throughput estimate is simply commits over elapsed wall time.
#[derive(Debug)]
struct ProgressMeter {
    started: Instant, // lint: allow(D2) -- progress display only
    pending: usize,
    skipped: usize,
}

impl ProgressMeter {
    fn new(pending: usize, skipped: usize) -> Self {
        ProgressMeter {
            // lint: allow(D2) -- progress display only
            started: Instant::now(),
            pending,
            skipped,
        }
    }

    /// Reports `done` of the pending cells as committed, with `trials` total
    /// trials executed so far across them.
    fn tick(&self, done: usize, trials: usize) {
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        let trial_rate = if elapsed > 0.0 {
            trials as f64 / elapsed
        } else {
            0.0
        };
        let remaining = self.pending.saturating_sub(done);
        let eta = if rate > 0.0 {
            format!("{:.0}s", remaining as f64 / rate)
        } else {
            String::from("?")
        };
        eprintln!(
            "campaign: {done}/{} cells done ({} skipped), {rate:.2} cells/s, \
             {trial_rate:.1} trials/s, ETA {eta}",
            self.pending, self.skipped
        );
    }
}

fn ready_lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock()
        // lint: allow(D4) -- trial panics are caught per-worker before they
        // can poison the slot lock
        .expect("campaign workers do not poison the slot lock")
}

fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("non-string panic payload")
    }
}

/// One topology's slot in the scoped cache.
#[derive(Debug, Default)]
struct CacheEntry {
    /// Pending cells that still reference this topology (committed cells
    /// have released theirs). The graph is dropped when this reaches zero.
    remaining: AtomicUsize,
    /// The built topology, present between first use and last commit.
    slot: Mutex<Option<BuiltTopology>>,
}

/// A run-scoped cache of built topologies, keyed by the canonical JSON
/// serialization of the [`TopologySpec`] (specs carry their own seeds, so
/// equal content means equal network).
///
/// Each distinct topology is built **lazily** — by whichever worker first
/// runs a cell referencing it (later cells of the same topology share the
/// built graph, whose network is an `Arc<DualGraph>`, so the handoff is a
/// pointer copy) — and **evicted eagerly**: the in-order committer releases
/// one reference per committed cell, and the release that drops the count to
/// zero drops the graph. Peak residency is therefore bounded by the
/// topologies of the cells between the commit frontier and the claim
/// frontier, not by the campaign's full topology axis.
///
/// The cache is invisible in the results: a cell built from a cached
/// topology has the same spec, key, seeds, and measurement as one that
/// rebuilt the network itself, and eviction cannot affect any of them
/// (pinned by this module's tests). A topology whose generator fails is
/// simply never cached: the cells using it fail through their own per-cell
/// build, at their position in commit order — so earlier cells still run
/// and commit, and a corrected spec can resume past the committed prefix.
#[derive(Debug, Default)]
struct TopologyCache {
    entries: BTreeMap<String, CacheEntry>,
}

impl TopologyCache {
    /// An empty cache: every cell falls back to building its own topology.
    #[cfg(test)]
    fn empty() -> Self {
        TopologyCache::default()
    }

    /// Prepares reference counts for every distinct topology of `cells`
    /// (one reference per pending cell). Nothing is built yet.
    fn for_pending(cells: &[CellSpec]) -> Self {
        let mut entries: BTreeMap<String, CacheEntry> = BTreeMap::new();
        for cell in cells {
            entries
                .entry(Self::key(&cell.scenario.topology))
                .or_default()
                .remaining
                .fetch_add(1, Ordering::Relaxed);
        }
        TopologyCache { entries }
    }

    fn key(spec: &TopologySpec) -> String {
        // lint: allow(D4) -- spec serialization is infallible (no floats are
        // NaN by construction, pinned by the scenario serde tests)
        serde_json::to_string(spec).expect("topology specs always serialize")
    }

    /// The built topology for `spec`, building it on first use. `None` when
    /// the spec is not tracked (tests) or its generator fails — the caller
    /// then builds (and fails) through its own scenario build.
    fn get(&self, spec: &TopologySpec) -> Option<BuiltTopology> {
        let entry = self.entries.get(&Self::key(spec))?;
        let mut slot = entry
            .slot
            .lock()
            // lint: allow(D4) -- builders run no user code that can panic
            // while the cache lock is held
            .expect("topology builders do not poison the cache lock");
        if slot.is_none() {
            *slot = spec.build().ok();
        }
        slot.clone()
    }

    /// Releases one reference after a cell over `spec` committed; the last
    /// release drops the built graph.
    fn committed(&self, spec: &TopologySpec) {
        let Some(entry) = self.entries.get(&Self::key(spec)) else {
            return;
        };
        if entry.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            *entry
                .slot
                .lock()
                // lint: allow(D4) -- builders run no user code that can panic
                // while the cache lock is held
                .expect("topology builders do not poison the cache lock") = None;
        }
    }

    /// How many built topologies are currently resident (for the eviction
    /// tests).
    #[cfg(test)]
    fn resident(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.slot.lock().unwrap().is_some())
            .count()
    }
}

/// Builds and measures one cell in isolation — the entry point fleet worker
/// processes use for the cells a coordinator assigns them.
///
/// Equivalent to the cell's slot in a full [`CampaignRunner`] run: same key,
/// same measurement, same serialized bytes (the runner's topology cache is
/// invisible in results, pinned by this module's tests), so shard stores
/// written from `execute_cell` records merge byte-identically with a
/// single-process store. `parallel_trials` mirrors the runner's two modes:
/// `true` lets the cell's trials fan out across cores (right when the caller
/// runs cells one at a time), `false` runs them sequentially (right when the
/// caller runs many cells concurrently) — both produce identical
/// measurements by the scenario runner's parallel-equals-sequential
/// guarantee.
///
/// # Errors
///
/// [`CampaignError::Cell`] if the cell fails to build or run.
pub fn execute_cell(cell: &CellSpec, parallel_trials: bool) -> Result<CellRecord> {
    execute_cell_batched(cell, parallel_trials, false)
}

/// [`execute_cell`] with an execution-level batch request on top of the
/// cell's own [`CellSpec::batch`] flag — what a `--batch` fleet worker runs.
/// The record (and its serialized bytes) is identical either way.
///
/// # Errors
///
/// [`CampaignError::Cell`] if the cell fails to build or run.
pub fn execute_cell_batched(
    cell: &CellSpec,
    parallel_trials: bool,
    batch: bool,
) -> Result<CellRecord> {
    // A default (empty) cache tracks nothing, so the cell builds its own
    // topology — correct for a worker that sees cells one at a time.
    run_cell(cell, parallel_trials, &TopologyCache::default(), batch)
}

/// Builds and measures one cell, sharing the campaign's built topology when
/// the cache tracks it. `batch` forces a bit-sliced trial fan-out on top of
/// the cell's own flag (unbatchable cells still fall back to scalar).
fn run_cell(
    cell: &CellSpec,
    parallel_trials: bool,
    topologies: &TopologyCache,
    batch: bool,
) -> Result<CellRecord> {
    let at_cell = |source| CampaignError::Cell {
        cell: cell.label(),
        source,
    };
    let mut builder = ScenarioBuilder::from_spec(cell.scenario.clone());
    if cell.backend != dradio_scenario::BackendChoice::Auto {
        // A forced backend skips the shared cache: the cache holds networks
        // built under the auto heuristic, and converting a cached network
        // per-cell would defeat the sharing anyway.
        builder = builder.backend(cell.backend);
    } else if let Some(topology) = topologies.get(&cell.scenario.topology) {
        builder = builder.with_topology(topology);
    }
    let scenario: Scenario = builder.build().map_err(at_cell)?;
    let runner = if parallel_trials {
        ScenarioRunner::new(&scenario)
    } else {
        ScenarioRunner::new(&scenario).sequential()
    }
    .record_mode(cell.record_mode)
    .curve(cell.curve)
    .batch(cell.batch || batch);
    let (measurement, trials_run) = match cell.trials {
        TrialPolicy::Fixed(trials) => {
            let measurement = if cell.curve {
                // Stream each trial's collision curve into the measurement:
                // trial-index order, no per-trial retention. The runner's
                // curve path does exactly that (through one scalar executor,
                // or lane groups of up to 64 trials when batching).
                runner.run_trials(trials).map_err(at_cell)?
            } else {
                Measurement::from_trials(&runner.collect_trials(trials).map_err(at_cell)?)
                    .map_err(at_cell)?
            };
            (measurement, trials)
        }
        TrialPolicy::Adaptive {
            min,
            max,
            relative_width,
            stop,
        } => {
            let measurement =
                adaptive_trials(&runner, min, max, relative_width, stop).map_err(at_cell)?;
            let trials_run = measurement.rounds.count;
            (measurement, trials_run)
        }
    };
    Ok(CellRecord {
        key: cell.key(),
        cell: cell.clone(),
        trials_run,
        measurement,
    })
}

/// Evaluates an adaptive stop rule against the running aggregates.
fn stop_satisfied(acc: &TrialAccumulator, stop: StopRule, relative_width: f64) -> bool {
    match stop {
        StopRule::MeanCostCi => acc.cost_moments().relative_ci95() <= relative_width,
        StopRule::CompletionCi => acc.completion().wilson_half_width() <= relative_width,
    }
}

/// Adaptive allocation: run `min` trials, then keep doubling (capped at
/// `max`) until the [`StopRule`]'s target statistic is tighter than
/// `relative_width` — the mean-cost ~95% CI relative to the mean, or the
/// Wilson ~95% half-width of the completion rate.
///
/// Trial `t` always runs with `runner.trial_seed(t)`, and the stopping rule
/// is evaluated on the prefix of outcomes in index order — so the allocated
/// count, like the outcomes themselves, is a pure function of the cell spec.
///
/// Incremental on both axes: all doubling trials run through one reused
/// [`TrialExecutor`](dradio_scenario::TrialExecutor), and the stopping rule
/// reads the [`TrialAccumulator`]'s running aggregates (Welford cost
/// moments, integer completion counts), so each doubling costs O(new
/// trials) instead of re-summarizing the full cost vector. The module tests
/// pin that the stopping decisions match a full recompute. (Welford and the
/// summary's two-pass variance can differ in the last ULPs, so a cost
/// series whose relative CI lands *exactly* on the requested width could in
/// principle stop differently — the pinned cases and the CI store-stability
/// check guard the realistic range; the stored `Measurement` itself is
/// always the exact full-vector summary, unchanged.)
///
/// On a curve-streaming runner ([`ScenarioRunner::curve`]) every trial —
/// including the first batch — runs sequentially through the executor so its
/// collision curve folds into the measurement as it completes.
fn adaptive_trials(
    runner: &ScenarioRunner<'_>,
    min: usize,
    max: usize,
    relative_width: f64,
    stop: StopRule,
) -> dradio_scenario::Result<Measurement> {
    let first = min.min(max);
    if first == 0 {
        return Err(dradio_scenario::ScenarioError::NoTrials);
    }
    let mut acc = runner.accumulator();
    let mut executor = runner.executor();
    if runner.has_curve() {
        // Curves stream trial by trial; the fan-out path cannot fold them.
        for t in 0..first {
            runner.run_trial_into(&mut executor, t, &mut acc);
        }
    } else {
        // First batch through the runner's own fan-out (parallel when the
        // cell owns the cores), folded into the running aggregates after.
        for outcome in runner.collect_trials(first)? {
            acc.push(&outcome.metrics);
        }
    }
    if acc.len() >= max || stop_satisfied(&acc, stop, relative_width) {
        return acc.finish();
    }
    // Doublings run through the reused executor; each new trial is one O(1)
    // aggregate update plus the execution itself.
    loop {
        let target = (acc.len() * 2).min(max);
        for t in acc.len()..target {
            runner.run_trial_into(&mut executor, t, &mut acc);
        }
        if acc.len() >= max || stop_satisfied(&acc, stop, relative_width) {
            return acc.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{RoundsRule, SweepGroup};
    use dradio_core::algorithms::GlobalAlgorithm;
    use dradio_scenario::{AdversarySpec, ProblemSpec, RecordMode, TopologySpec, TrialOutcome};

    fn small_campaign() -> CampaignSpec {
        CampaignSpec::named("runner-test")
            .seed(5)
            .trials(TrialPolicy::Fixed(3))
            .group(
                SweepGroup::product(
                    vec![
                        TopologySpec::Clique { n: 8 },
                        TopologySpec::Clique { n: 16 },
                    ],
                    vec![
                        GlobalAlgorithm::Bgi.into(),
                        GlobalAlgorithm::Permuted.into(),
                    ],
                    vec![AdversarySpec::StaticNone],
                    vec![ProblemSpec::GlobalFrom(0)],
                )
                .rounds(RoundsRule::Fixed(2_000)),
            )
    }

    #[test]
    fn runs_every_cell_once_in_expansion_order() {
        let campaign = small_campaign();
        let store = CampaignRunner::new(&campaign).run_in_memory().unwrap();
        let cells = campaign.expand().unwrap();
        assert_eq!(store.len(), cells.len());
        for (record, cell) in store.records().iter().zip(&cells) {
            assert_eq!(record.key, cell.key());
            assert_eq!(&record.cell, cell);
            assert_eq!(record.trials_run, 3);
            assert_eq!(record.measurement.rounds.count, 3);
        }
    }

    #[test]
    fn parallel_and_sequential_cell_execution_agree() {
        let campaign = small_campaign();
        let parallel = CampaignRunner::new(&campaign)
            .threads(4)
            .run_in_memory()
            .unwrap();
        let sequential = CampaignRunner::new(&campaign)
            .threads(1)
            .run_in_memory()
            .unwrap();
        assert_eq!(parallel.records(), sequential.records());
    }

    #[test]
    fn campaign_measurements_match_direct_scenario_runs() {
        let campaign = small_campaign();
        let store = CampaignRunner::new(&campaign).run_in_memory().unwrap();
        for record in store.records() {
            let direct = record
                .cell
                .scenario
                .clone()
                .build()
                .unwrap()
                .run_trials(3)
                .unwrap();
            assert_eq!(record.measurement, direct, "{}", record.cell.label());
        }
    }

    #[test]
    fn full_recording_cells_measure_identically() {
        // The fast default (RecordMode::None) and full recording produce the
        // same stored records — recording only changes what the engine
        // retains, never what it measures.
        let fast = small_campaign();
        let mut recorded = small_campaign();
        for group in &mut recorded.groups {
            group.record_mode = RecordMode::Full;
        }
        let a = CampaignRunner::new(&fast).run_in_memory().unwrap();
        let b = CampaignRunner::new(&recorded).run_in_memory().unwrap();
        assert_eq!(a.records().len(), b.records().len());
        for (x, y) in a.records().iter().zip(b.records()) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.measurement, y.measurement);
            assert_eq!(x.trials_run, y.trials_run);
        }
    }

    #[test]
    fn curve_cells_add_contention_without_changing_scalars() {
        let plain = small_campaign();
        let mut curved = small_campaign();
        for group in &mut curved.groups {
            group.curve = true;
        }
        let a = CampaignRunner::new(&plain).run_in_memory().unwrap();
        let b = CampaignRunner::new(&curved).run_in_memory().unwrap();
        assert_eq!(a.records().len(), b.records().len());
        for (x, y) in a.records().iter().zip(b.records()) {
            // Same identity: a curve is presentation, not measurement.
            assert_eq!(x.key, y.key, "curve must not change cell keys");
            assert_eq!(x.trials_run, y.trials_run);
            // Scalar statistics identical; only the curve is new.
            assert_eq!(x.measurement.rounds, y.measurement.rounds);
            assert_eq!(x.measurement.completion, y.measurement.completion);
            assert_eq!(x.measurement.mean_collisions, y.measurement.mean_collisions);
            assert!(x.measurement.contention.is_none());
            let curve = y.measurement.contention.as_ref().expect("curve requested");
            assert_eq!(curve.trials(), y.trials_run);
            assert_eq!(
                curve.len(),
                y.measurement.rounds.max as usize,
                "the curve spans the longest trial"
            );
            // The curve came from CollisionsOnly recording, not Full.
            assert_eq!(y.cell.record_mode, RecordMode::CollisionsOnly);
            assert!(y.cell.curve);
        }
        // Parallel and sequential cell execution agree for curve cells too.
        let c = CampaignRunner::new(&curved)
            .threads(1)
            .run_in_memory()
            .unwrap();
        assert_eq!(b.records(), c.records());
    }

    #[test]
    fn execute_cell_matches_the_full_campaign_run() {
        // The worker-process entry point must be indistinguishable from the
        // cell's slot in a campaign run — keys, measurements, trial counts,
        // and serialized bytes — in both trial-parallelism modes.
        let campaign = small_campaign();
        let store = CampaignRunner::new(&campaign).run_in_memory().unwrap();
        for (record, cell) in store.records().iter().zip(campaign.expand().unwrap()) {
            for parallel_trials in [false, true] {
                let solo = execute_cell(&cell, parallel_trials).unwrap();
                assert_eq!(&solo, record, "{}", cell.label());
                assert_eq!(
                    serde_json::to_string(&solo).unwrap(),
                    serde_json::to_string(record).unwrap(),
                );
            }
        }
    }

    #[test]
    fn resume_skips_present_cells() {
        let campaign = small_campaign();
        let mut store = ResultStore::in_memory();
        // Pre-commit the first two cells.
        let cells = campaign.expand().unwrap();
        for cell in &cells[..2] {
            store
                .append(run_cell(cell, false, &TopologyCache::empty(), false).unwrap())
                .unwrap();
        }
        let report = CampaignRunner::new(&campaign).run(&mut store).unwrap();
        assert_eq!(report.total, 4);
        assert_eq!(report.skipped, 2);
        assert_eq!(report.executed, 2);
        // Identical to an uninterrupted run.
        let fresh = CampaignRunner::new(&campaign).run_in_memory().unwrap();
        assert_eq!(store.records(), fresh.records());
        // A second resume is a no-op.
        let again = CampaignRunner::new(&campaign).run(&mut store).unwrap();
        assert_eq!(again.executed, 0);
        assert_eq!(again.skipped, 4);
    }

    #[test]
    fn failing_cells_keep_the_committed_prefix() {
        // Second group's problem references an out-of-range node, so its
        // cells fail to build while the first group's cells succeed.
        let campaign = CampaignSpec::named("failing")
            .trials(TrialPolicy::Fixed(1))
            .group(SweepGroup::cell(
                TopologySpec::Clique { n: 8 },
                GlobalAlgorithm::Bgi,
                AdversarySpec::StaticNone,
                ProblemSpec::GlobalFrom(0),
            ))
            .group(SweepGroup::cell(
                TopologySpec::Clique { n: 8 },
                GlobalAlgorithm::Bgi,
                AdversarySpec::StaticNone,
                ProblemSpec::GlobalFrom(99),
            ));
        let mut store = ResultStore::in_memory();
        let err = CampaignRunner::new(&campaign).run(&mut store).unwrap_err();
        assert!(matches!(err, CampaignError::Cell { .. }), "{err}");
        assert_eq!(store.len(), 1, "the good cell was committed");
    }

    #[test]
    fn adaptive_allocation_is_deterministic_and_bounded() {
        let campaign = CampaignSpec::named("adaptive")
            .seed(11)
            .trials(TrialPolicy::Adaptive {
                min: 2,
                max: 32,
                relative_width: 0.05,
                stop: StopRule::MeanCostCi,
            })
            .group(
                SweepGroup::cell(
                    TopologySpec::DualClique { n: 16 },
                    GlobalAlgorithm::Permuted,
                    AdversarySpec::Iid { p: 0.5 },
                    ProblemSpec::GlobalFrom(0),
                )
                .rounds(RoundsRule::Fixed(20_000)),
            );
        let a = CampaignRunner::new(&campaign).run_in_memory().unwrap();
        let b = CampaignRunner::new(&campaign).run_in_memory().unwrap();
        assert_eq!(a.records(), b.records());
        let record = &a.records()[0];
        assert!(record.trials_run >= 2 && record.trials_run <= 32);
        assert_eq!(record.measurement.rounds.count, record.trials_run);
        // Either the precision target was met or the budget was exhausted.
        assert!(
            record.measurement.rounds.relative_ci95() <= 0.05 || record.trials_run == 32,
            "stopped at {} trials with relative CI {}",
            record.trials_run,
            record.measurement.rounds.relative_ci95(),
        );
    }

    #[test]
    fn completion_ci_adaptive_stops_on_wilson_width() {
        // A deterministic always-completing cell: the mean-cost CI collapses
        // at 2 trials, but the Wilson half-width at p̂ = 1 is z²/(2(n + z²)),
        // which first dips under 0.2 at n = 6 — so doubling from 2 stops at
        // 8, not 2. The two stop rules are thereby demonstrably different,
        // and the completion rule demonstrably tracks the Wilson width.
        let cell = |stop| {
            CampaignSpec::named("completion-adaptive")
                .trials(TrialPolicy::Adaptive {
                    min: 2,
                    max: 64,
                    relative_width: 0.2,
                    stop,
                })
                .group(
                    SweepGroup::cell(
                        TopologySpec::Clique { n: 8 },
                        GlobalAlgorithm::RoundRobin,
                        AdversarySpec::StaticNone,
                        ProblemSpec::GlobalFrom(0),
                    )
                    .rounds(RoundsRule::Fixed(1_000)),
                )
        };
        let mean = CampaignRunner::new(&cell(StopRule::MeanCostCi))
            .run_in_memory()
            .unwrap();
        assert_eq!(mean.records()[0].trials_run, 2, "cost CI collapses at min");

        let completion = CampaignRunner::new(&cell(StopRule::CompletionCi))
            .run_in_memory()
            .unwrap();
        let record = &completion.records()[0];
        assert_eq!(
            record.trials_run, 8,
            "doubling stops at the first count whose Wilson half-width \
             is within 0.2"
        );
        assert_eq!(record.measurement.completion_rate(), 1.0);
        assert!(record.measurement.completion.wilson_half_width() <= 0.2);
        // The preceding doubling (4 trials) was genuinely too wide.
        let four = dradio_scenario::Completion {
            completed: 4,
            trials: 4,
        };
        assert!(four.wilson_half_width() > 0.2);
        // Different stop rules are different measurements: distinct keys.
        let mean_cells = cell(StopRule::MeanCostCi).expand().unwrap();
        let completion_cells = cell(StopRule::CompletionCi).expand().unwrap();
        assert_ne!(mean_cells[0].key(), completion_cells[0].key());
        // Determinism across runs.
        let again = CampaignRunner::new(&cell(StopRule::CompletionCi))
            .run_in_memory()
            .unwrap();
        assert_eq!(completion.records(), again.records());
    }

    #[test]
    fn completion_ci_adaptive_with_curve_streams_both() {
        let campaign = CampaignSpec::named("completion-curve")
            .trials(TrialPolicy::Adaptive {
                min: 2,
                max: 16,
                relative_width: 0.25,
                stop: StopRule::CompletionCi,
            })
            .group(
                SweepGroup::cell(
                    TopologySpec::DualClique { n: 16 },
                    GlobalAlgorithm::Permuted,
                    AdversarySpec::Iid { p: 0.5 },
                    ProblemSpec::GlobalFrom(0),
                )
                .rounds(RoundsRule::Fixed(2_000))
                .curve(true),
            );
        let store = CampaignRunner::new(&campaign).run_in_memory().unwrap();
        let record = &store.records()[0];
        let curve = record.measurement.contention.as_ref().expect("curve");
        assert_eq!(curve.trials(), record.trials_run);
        assert_eq!(record.cell.record_mode, RecordMode::CollisionsOnly);
        assert!(
            record.trials_run == 16 || record.measurement.completion.wilson_half_width() <= 0.25
        );
    }

    #[test]
    fn failing_topology_cells_keep_the_committed_prefix() {
        // The second group's topology generator rejects its parameters (a
        // dual clique needs even n). The topology cache must not turn that
        // into an up-front abort: the first group's cell still runs and
        // commits, and the failure surfaces at the bad cell's own position.
        let campaign = CampaignSpec::named("failing-topology")
            .trials(TrialPolicy::Fixed(1))
            .group(SweepGroup::cell(
                TopologySpec::Clique { n: 8 },
                GlobalAlgorithm::Bgi,
                AdversarySpec::StaticNone,
                ProblemSpec::GlobalFrom(0),
            ))
            .group(SweepGroup::cell(
                TopologySpec::DualClique { n: 7 },
                GlobalAlgorithm::Bgi,
                AdversarySpec::StaticNone,
                ProblemSpec::GlobalFrom(0),
            ));
        let mut store = ResultStore::in_memory();
        let err = CampaignRunner::new(&campaign).run(&mut store).unwrap_err();
        assert!(matches!(err, CampaignError::Cell { .. }), "{err}");
        assert_eq!(store.len(), 1, "the good cell was committed");
    }

    #[test]
    fn topology_cache_preserves_keys_measurements_and_store_bytes() {
        // Many cells over few topologies — the configuration the cache
        // exists for. The cached run must be indistinguishable from one
        // where every cell rebuilds its own network.
        let campaign = CampaignSpec::named("cache-equivalence")
            .seed(13)
            .trials(TrialPolicy::Fixed(2))
            .group(
                SweepGroup::product(
                    vec![
                        TopologySpec::DualClique { n: 16 },
                        TopologySpec::RandomGeometric {
                            n: 24,
                            side: 2.0,
                            r: 1.5,
                            seed: 4,
                        },
                    ],
                    vec![
                        GlobalAlgorithm::Bgi.into(),
                        GlobalAlgorithm::Permuted.into(),
                        GlobalAlgorithm::RoundRobin.into(),
                    ],
                    vec![AdversarySpec::StaticNone, AdversarySpec::Iid { p: 0.5 }],
                    vec![ProblemSpec::GlobalFrom(0)],
                )
                .rounds(RoundsRule::Fixed(2_000)),
            );
        let cells = campaign.expand().unwrap();
        let cached = CampaignRunner::new(&campaign).run_in_memory().unwrap();

        // Reference: per-cell topology builds, bypassing the cache entirely.
        let mut fresh = ResultStore::in_memory();
        for cell in &cells {
            fresh
                .append(run_cell(cell, false, &TopologyCache::empty(), false).unwrap())
                .unwrap();
        }

        assert_eq!(cached.records(), fresh.records());
        for (a, b) in cached.records().iter().zip(fresh.records()) {
            assert_eq!(a.key, b.key, "{}", a.cell.label());
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap(),
                "store line bytes diverged for {}",
                a.cell.label()
            );
        }
    }

    #[test]
    fn scoped_cache_builds_lazily_and_evicts_on_last_commit() {
        let campaign = small_campaign();
        let cells = campaign.expand().unwrap();
        // 4 cells over 2 topologies, 2 cells each, in topology-major order.
        let cache = TopologyCache::for_pending(&cells);
        assert_eq!(cache.resident(), 0, "nothing is built before first use");

        // First use builds; second use shares the same network.
        let first = cache.get(&cells[0].scenario.topology).expect("tracked");
        assert_eq!(cache.resident(), 1);
        let again = cache.get(&cells[1].scenario.topology).expect("tracked");
        assert!(
            std::sync::Arc::ptr_eq(&first.dual, &again.dual),
            "cells over one topology share one graph"
        );

        // One commit keeps the graph (a pending cell still references it);
        // the second — last — commit drops it.
        cache.committed(&cells[0].scenario.topology);
        assert_eq!(cache.resident(), 1);
        cache.committed(&cells[1].scenario.topology);
        assert_eq!(cache.resident(), 0, "last commit evicts the topology");

        // The second topology is untouched by the first one's lifecycle.
        let _second = cache.get(&cells[2].scenario.topology).expect("tracked");
        assert_eq!(cache.resident(), 1);
        cache.committed(&cells[2].scenario.topology);
        cache.committed(&cells[3].scenario.topology);
        assert_eq!(cache.resident(), 0);

        // Untracked specs (and the empty cache) fall back to per-cell
        // builds without panicking.
        let empty = TopologyCache::empty();
        assert!(empty.get(&cells[0].scenario.topology).is_none());
        empty.committed(&cells[0].scenario.topology);
    }

    #[test]
    fn scoped_cache_does_not_cache_failing_generators() {
        let bad = TopologySpec::DualClique { n: 7 }; // needs even n
        let cell = CellSpec {
            scenario: dradio_scenario::ScenarioSpec {
                topology: bad.clone(),
                algorithm: GlobalAlgorithm::Bgi.into(),
                adversary: AdversarySpec::StaticNone,
                problem: ProblemSpec::GlobalFrom(0),
                seed: 0,
                max_rounds: Some(100),
                collision_detection: false,
            },
            trials: TrialPolicy::Fixed(1),
            record_mode: RecordMode::None,
            curve: false,
            batch: false,
            backend: dradio_scenario::BackendChoice::Auto,
        };
        let cache = TopologyCache::for_pending(std::slice::from_ref(&cell));
        assert!(cache.get(&bad).is_none(), "failed builds are not cached");
        assert_eq!(cache.resident(), 0);
        // The cell itself fails through its own build, like before.
        assert!(run_cell(&cell, false, &cache, false).is_err());
    }

    /// The pre-incremental adaptive allocator, kept verbatim as the
    /// reference: full `Measurement` recompute per doubling, fresh simulator
    /// per appended trial.
    fn reference_adaptive(
        runner: &ScenarioRunner<'_>,
        min: usize,
        max: usize,
        relative_width: f64,
    ) -> Vec<TrialOutcome> {
        let mut outcomes = runner.collect_trials(min.min(max)).unwrap();
        loop {
            let summary = Measurement::from_trials(&outcomes).unwrap().rounds;
            if outcomes.len() >= max || summary.relative_ci95() <= relative_width {
                return outcomes;
            }
            let target = (outcomes.len() * 2).min(max);
            for t in outcomes.len()..target {
                outcomes.push(runner.run_trial(t));
            }
        }
    }

    #[test]
    fn incremental_adaptive_matches_full_recompute() {
        // Across several cells (noisy and degenerate cost series, different
        // widths), the Welford-moments stopping rule allocates exactly the
        // trials the full-recompute rule allocated, with identical outcomes.
        let cases = vec![
            (
                SweepGroup::cell(
                    TopologySpec::DualClique { n: 16 },
                    GlobalAlgorithm::Permuted,
                    AdversarySpec::Iid { p: 0.5 },
                    ProblemSpec::GlobalFrom(0),
                )
                .rounds(RoundsRule::Fixed(20_000)),
                (2usize, 64usize, 0.05f64),
                7u64,
            ),
            (
                SweepGroup::cell(
                    TopologySpec::DualClique { n: 16 },
                    GlobalAlgorithm::Bgi,
                    AdversarySpec::GilbertElliott {
                        p_fail: 0.2,
                        p_recover: 0.3,
                    },
                    ProblemSpec::GlobalFrom(0),
                )
                .rounds(RoundsRule::Fixed(20_000)),
                (3, 48, 0.10),
                11,
            ),
            (
                // Deterministic costs: the CI collapses immediately.
                SweepGroup::cell(
                    TopologySpec::Clique { n: 8 },
                    GlobalAlgorithm::RoundRobin,
                    AdversarySpec::StaticNone,
                    ProblemSpec::GlobalFrom(0),
                )
                .rounds(RoundsRule::Fixed(1_000)),
                (2, 64, 0.10),
                0,
            ),
        ];
        for (group, (min, max, width), seed) in cases {
            let campaign = CampaignSpec::named("adaptive-pin").seed(seed).group(group);
            let cells = campaign.expand().unwrap();
            let scenario = cells[0].scenario.clone().build().unwrap();
            let runner = ScenarioRunner::new(&scenario).sequential();
            let incremental =
                adaptive_trials(&runner, min, max, width, StopRule::MeanCostCi).unwrap();
            let reference = reference_adaptive(&runner, min, max, width);
            assert_eq!(
                incremental.rounds.count,
                reference.len(),
                "{}: allocated trial counts diverged",
                cells[0].label()
            );
            assert_eq!(
                incremental,
                Measurement::from_trials(&reference).unwrap(),
                "{}",
                cells[0].label()
            );
        }
    }

    #[test]
    fn adaptive_stops_early_on_tight_series() {
        // A deterministic broadcast (no randomness in cost): the CI collapses
        // to zero immediately, so allocation stops at min.
        let campaign = CampaignSpec::named("tight")
            .trials(TrialPolicy::Adaptive {
                min: 2,
                max: 64,
                relative_width: 0.10,
                stop: StopRule::MeanCostCi,
            })
            .group(
                SweepGroup::cell(
                    TopologySpec::Clique { n: 8 },
                    GlobalAlgorithm::RoundRobin,
                    AdversarySpec::StaticNone,
                    ProblemSpec::GlobalFrom(0),
                )
                .rounds(RoundsRule::Fixed(1_000)),
            );
        let store = CampaignRunner::new(&campaign).run_in_memory().unwrap();
        assert_eq!(store.records()[0].trials_run, 2);
    }
}
