//! Declarative campaign specifications and their deterministic expansion.
//!
//! A [`CampaignSpec`] is a pure value — serializable, diffable, printable —
//! describing a *sweep*: one or more [`SweepGroup`]s, each the cartesian
//! product of four axes (topologies × algorithms × adversaries × problems),
//! plus the trial policy and round budgets the cells run with. Expansion into
//! [`CellSpec`]s is deterministic and duplicate-free, and every cell carries
//! a content-hash [`CellSpec::key`] that the result store uses to recognise
//! already-measured cells across restarts.

use std::fmt;

use dradio_scenario::{
    AdversarySpec, AlgorithmSpec, BackendChoice, ProblemSpec, RecordMode, ScenarioSpec,
    TopologySpec,
};
use serde::{Deserialize, Serialize, Value};

use crate::error::{CampaignError, Result};

/// Which statistic an adaptive trial policy targets with its stopping rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StopRule {
    /// Stop when the ~95% CI for the *mean cost* is tighter than
    /// `relative_width · mean` — the classic precision target for
    /// upper-bound experiments, and the rule every pre-`StopRule` spec ran
    /// with. The default.
    #[default]
    MeanCostCi,
    /// Stop when the half-width of the ~95% **Wilson score interval** for
    /// the *completion rate* is at most `relative_width` (an absolute
    /// half-width on a probability; e.g. `0.1` for ±10 percentage points).
    /// The right target for lower-bound experiments whose claim is "the
    /// algorithm cannot finish", where mean-cost precision says little.
    CompletionCi,
}

serde::serde_enum!(StopRule {
    MeanCostCi,
    CompletionCi,
});

/// How many trials a cell runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrialPolicy {
    /// Exactly this many trials.
    Fixed(usize),
    /// Adaptive allocation: run at least `min` trials, then keep doubling the
    /// trial count (capped at `max`) until the [`StopRule`]'s target
    /// statistic is tighter than `relative_width`.
    ///
    /// Stopping is evaluated on the deterministic per-trial outcomes in index
    /// order, so the allocated count — like the measurements themselves —
    /// depends only on the cell spec, never on scheduling.
    Adaptive {
        /// Minimum trials before the first stopping check.
        min: usize,
        /// Hard upper bound on trials.
        max: usize,
        /// Requested precision: relative CI half-width for
        /// [`StopRule::MeanCostCi`] (e.g. `0.05` for ±5%), absolute Wilson
        /// half-width for [`StopRule::CompletionCi`].
        relative_width: f64,
        /// The targeted statistic (defaults to [`StopRule::MeanCostCi`],
        /// and is omitted from the serialized form at that default so every
        /// pre-`StopRule` spec keeps its exact bytes — and therefore its
        /// [`CellSpec::key`]).
        stop: StopRule,
    },
}

// Hand-written (instead of `serde_enum!`) so the default stop rule
// serializes to the exact pre-`StopRule` bytes: `{"Adaptive":{"min":..,
// "max":..,"relative_width":..}}`, with a `"stop"` key appended only for
// non-default rules. Cell keys hash this serialization, so the default
// must stay byte-identical forever.
impl Serialize for TrialPolicy {
    fn to_value(&self) -> Value {
        match self {
            TrialPolicy::Fixed(trials) => Value::Map(vec![("Fixed".into(), trials.to_value())]),
            TrialPolicy::Adaptive {
                min,
                max,
                relative_width,
                stop,
            } => {
                let mut fields = vec![
                    ("min".into(), min.to_value()),
                    ("max".into(), max.to_value()),
                    ("relative_width".into(), relative_width.to_value()),
                ];
                if *stop != StopRule::default() {
                    fields.push(("stop".into(), stop.to_value()));
                }
                Value::Map(vec![("Adaptive".into(), Value::Map(fields))])
            }
        }
    }
}

impl Deserialize for TrialPolicy {
    fn from_value(value: &Value) -> std::result::Result<Self, serde::Error> {
        let (name, payload) = value
            .as_variant()
            .ok_or_else(|| serde::Error::expected("a TrialPolicy variant", value))?;
        let payload =
            payload.ok_or_else(|| serde::Error::new(format!("{name} needs a payload")))?;
        match name {
            "Fixed" => Ok(TrialPolicy::Fixed(usize::from_value(payload)?)),
            "Adaptive" => {
                let field = |field: &str| {
                    payload.get(field).ok_or_else(|| {
                        serde::Error::new(format!(
                            "TrialPolicy::Adaptive is missing field {field:?}"
                        ))
                    })
                };
                Ok(TrialPolicy::Adaptive {
                    min: usize::from_value(field("min")?)?,
                    max: usize::from_value(field("max")?)?,
                    relative_width: f64::from_value(field("relative_width")?)?,
                    stop: match payload.get("stop") {
                        Some(v) => StopRule::from_value(v)?,
                        None => StopRule::default(),
                    },
                })
            }
            other => Err(serde::Error::new(format!(
                "unknown TrialPolicy variant {other:?}"
            ))),
        }
    }
}

impl TrialPolicy {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Spec`] on zero-trial or degenerate configurations —
    /// asking for zero trials is a spec error, surfaced before any cell runs.
    pub fn validate(&self) -> Result<()> {
        match *self {
            TrialPolicy::Fixed(0) => Err(CampaignError::spec(
                "trial policy asks for zero trials; a cell needs at least one",
            )),
            TrialPolicy::Fixed(_) => Ok(()),
            TrialPolicy::Adaptive {
                min,
                max,
                relative_width,
                stop,
            } => {
                if min == 0 {
                    Err(CampaignError::spec(
                        "adaptive trial policy needs min >= 1 trials",
                    ))
                } else if max < min {
                    Err(CampaignError::spec(format!(
                        "adaptive trial policy has max ({max}) below min ({min})"
                    )))
                } else if !relative_width.is_finite() || relative_width <= 0.0 {
                    Err(CampaignError::spec(format!(
                        "adaptive trial policy needs a positive finite relative width, \
                         got {relative_width}"
                    )))
                } else if stop == StopRule::CompletionCi && relative_width >= 1.0 {
                    Err(CampaignError::spec(format!(
                        "a completion-targeted stop rule needs a Wilson half-width target \
                         below 1 (a probability half-width), got {relative_width}"
                    )))
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// How a group derives each cell's round budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoundsRule {
    /// Leave the budget to the scenario default (`200·n + 2000`).
    #[default]
    ScenarioDefault,
    /// The same explicit budget for every cell of the group.
    Fixed(usize),
    /// An affine budget in the network size: `per_node · max(n, min_nodes) +
    /// base`, with `n` taken from [`TopologySpec::node_count`].
    PerNode {
        /// Rounds per node.
        per_node: usize,
        /// Constant offset.
        base: usize,
        /// Lower clamp on the node count entering the formula.
        min_nodes: usize,
    },
}

serde::serde_enum!(RoundsRule {
    ScenarioDefault,
    Fixed(usize),
    PerNode { per_node: usize, base: usize, min_nodes: usize },
});

impl RoundsRule {
    /// Resolves the rule against a topology into the scenario's
    /// `max_rounds` field.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Spec`] for a zero budget, or a [`RoundsRule::PerNode`]
    /// rule applied to a topology whose size is not derivable from its spec.
    pub fn resolve(&self, topology: &TopologySpec) -> Result<Option<usize>> {
        match *self {
            RoundsRule::ScenarioDefault => Ok(None),
            RoundsRule::Fixed(0) => Err(CampaignError::spec(
                "round budget rule fixes a zero budget; the simulator needs at least one round",
            )),
            RoundsRule::Fixed(rounds) => Ok(Some(rounds)),
            RoundsRule::PerNode {
                per_node,
                base,
                min_nodes,
            } => {
                let n = topology.node_count().ok_or_else(|| {
                    CampaignError::spec(format!(
                        "a per-node round budget needs a topology with a derivable size, \
                         but {} has none",
                        topology.label()
                    ))
                })?;
                let budget = per_node
                    .saturating_mul(n.max(min_nodes))
                    .saturating_add(base);
                if budget == 0 {
                    return Err(CampaignError::spec(
                        "per-node round budget resolves to zero rounds",
                    ));
                }
                Ok(Some(budget))
            }
        }
    }
}

/// One cartesian-product block of a campaign: every combination of the four
/// axes, sharing a seed, trial policy, and round-budget rule.
///
/// A group with four singleton axes is a single explicit cell, so irregular
/// sweeps (per-size budgets, per-block seeds) are expressed as a list of
/// small groups — still pure data.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGroup {
    /// The topology axis.
    pub topologies: Vec<TopologySpec>,
    /// The algorithm axis.
    pub algorithms: Vec<AlgorithmSpec>,
    /// The adversary axis.
    pub adversaries: Vec<AdversarySpec>,
    /// The problem axis.
    pub problems: Vec<ProblemSpec>,
    /// Scenario seed override for this group (`None` inherits the campaign
    /// seed).
    pub seed: Option<u64>,
    /// Trial policy override for this group (`None` inherits the campaign
    /// policy).
    pub trials: Option<TrialPolicy>,
    /// Round-budget rule for this group's cells.
    pub rounds: RoundsRule,
    /// Diagnostic collision-detection mode.
    pub collision_detection: bool,
    /// How much of each trial execution the engine retains (default
    /// [`RecordMode::None`]: cells only keep aggregate measurements, so
    /// recording history per trial is pure overhead). Not part of a cell's
    /// identity — measurements are identical under every mode.
    pub record_mode: RecordMode,
    /// Whether this group's cells stream a mean contention-over-time curve
    /// into their measurements. Requesting a curve auto-promotes a
    /// [`RecordMode::None`] cell to [`RecordMode::CollisionsOnly`] at
    /// expansion time (per-round counts are needed; full history is not).
    /// Like the record mode, this is **not** part of a cell's identity: the
    /// scalar statistics are identical with and without the curve.
    pub curve: bool,
    /// Whether this group's cells request bit-sliced batch trial execution
    /// (up to 64 trials per word pass; see
    /// [`ScenarioRunner::batch`](dradio_scenario::ScenarioRunner::batch)).
    /// A pure execution strategy: cells that cannot batch (adaptive or
    /// custom adversaries, history-recording modes) fall back to the scalar
    /// path, and batched cells produce bit-for-bit the scalar measurements —
    /// so, like the record mode, this is **not** part of a cell's identity.
    pub batch: bool,
    /// Which graph storage backend this group's cells build their topologies
    /// with (default [`BackendChoice::Auto`]: dense for small networks, CSR
    /// once the dense bitmatrix would dwarf the edge list). A pure memory/
    /// layout decision — every backend yields structurally identical networks
    /// and bit-identical measurements — so, like the record mode, this is
    /// **not** part of a cell's identity.
    pub backend: BackendChoice,
}

impl SweepGroup {
    /// A group over the full product of the four axes.
    pub fn product(
        topologies: Vec<TopologySpec>,
        algorithms: Vec<AlgorithmSpec>,
        adversaries: Vec<AdversarySpec>,
        problems: Vec<ProblemSpec>,
    ) -> Self {
        SweepGroup {
            topologies,
            algorithms,
            adversaries,
            problems,
            seed: None,
            trials: None,
            rounds: RoundsRule::ScenarioDefault,
            collision_detection: false,
            record_mode: RecordMode::None,
            curve: false,
            batch: false,
            backend: BackendChoice::Auto,
        }
    }

    /// A single explicit cell (all four axes singleton).
    pub fn cell(
        topology: TopologySpec,
        algorithm: impl Into<AlgorithmSpec>,
        adversary: AdversarySpec,
        problem: ProblemSpec,
    ) -> Self {
        SweepGroup::product(
            vec![topology],
            vec![algorithm.into()],
            vec![adversary],
            vec![problem],
        )
    }

    /// Overrides the scenario seed for this group.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Overrides the trial policy for this group.
    pub fn trials(mut self, trials: TrialPolicy) -> Self {
        self.trials = Some(trials);
        self
    }

    /// Sets the round-budget rule for this group.
    pub fn rounds(mut self, rounds: RoundsRule) -> Self {
        self.rounds = rounds;
        self
    }

    /// Enables the diagnostic collision-detection mode for this group.
    pub fn collision_detection(mut self, enabled: bool) -> Self {
        self.collision_detection = enabled;
        self
    }

    /// Overrides the record mode this group's cells run with (default
    /// [`RecordMode::None`]).
    pub fn record_mode(mut self, record_mode: RecordMode) -> Self {
        self.record_mode = record_mode;
        self
    }

    /// Requests a mean contention-over-time curve in this group's
    /// measurements (default off).
    pub fn curve(mut self, enabled: bool) -> Self {
        self.curve = enabled;
        self
    }

    /// Requests bit-sliced batch trial execution for this group's cells
    /// (default off; unbatchable cells silently fall back to scalar).
    pub fn batch(mut self, enabled: bool) -> Self {
        self.batch = enabled;
        self
    }

    /// Forces a graph storage backend for this group's cells (default
    /// [`BackendChoice::Auto`]; structurally and measurement-wise a no-op —
    /// purely a memory/layout knob for very large topologies).
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    fn validate(&self, index: usize) -> Result<()> {
        let check_axis = |name: &str, len: usize| {
            if len == 0 {
                Err(CampaignError::spec(format!(
                    "group {index} has an empty {name} axis; every axis needs at least one entry"
                )))
            } else {
                Ok(())
            }
        };
        check_axis("topology", self.topologies.len())?;
        check_axis("algorithm", self.algorithms.len())?;
        check_axis("adversary", self.adversaries.len())?;
        check_axis("problem", self.problems.len())?;
        if let Some(t) = self.topologies.iter().find_map(|t| match t {
            TopologySpec::Custom { name } => Some(name),
            _ => None,
        }) {
            return Err(CampaignError::spec(format!(
                "group {index} sweeps the custom topology {t:?}; campaigns are fully \
                 declarative and cannot carry runtime-attached components"
            )));
        }
        if let Some(a) = self.algorithms.iter().find_map(|a| match a {
            AlgorithmSpec::Custom { name } => Some(name),
            _ => None,
        }) {
            return Err(CampaignError::spec(format!(
                "group {index} sweeps the custom algorithm {a:?}; campaigns are fully \
                 declarative and cannot carry runtime-attached components"
            )));
        }
        if let Some(a) = self.adversaries.iter().find_map(|a| match a {
            AdversarySpec::Custom { name } => Some(name),
            _ => None,
        }) {
            return Err(CampaignError::spec(format!(
                "group {index} sweeps the custom adversary {a:?}; campaigns are fully \
                 declarative and cannot carry runtime-attached components"
            )));
        }
        if let Some(t) = &self.trials {
            t.validate()?;
        }
        Ok(())
    }
}

impl Serialize for SweepGroup {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("topologies".into(), self.topologies.to_value()),
            ("algorithms".into(), self.algorithms.to_value()),
            ("adversaries".into(), self.adversaries.to_value()),
            ("problems".into(), self.problems.to_value()),
            ("seed".into(), self.seed.to_value()),
            ("trials".into(), self.trials.to_value()),
            ("rounds".into(), self.rounds.to_value()),
            (
                "collision_detection".into(),
                self.collision_detection.to_value(),
            ),
            ("record_mode".into(), self.record_mode.to_value()),
            ("curve".into(), self.curve.to_value()),
        ];
        // Only-when-true, so pre-batch spec files keep their exact bytes.
        if self.batch {
            fields.push(("batch".into(), self.batch.to_value()));
        }
        // Only-when-forced, so pre-backend spec files keep their exact bytes.
        if self.backend != BackendChoice::Auto {
            fields.push(("backend".into(), self.backend.to_value()));
        }
        Value::Map(fields)
    }
}

impl Deserialize for SweepGroup {
    fn from_value(value: &Value) -> std::result::Result<Self, serde::Error> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| serde::Error::new(format!("SweepGroup is missing {name:?}")))
        };
        Ok(SweepGroup {
            topologies: Vec::from_value(field("topologies")?)?,
            algorithms: Vec::from_value(field("algorithms")?)?,
            adversaries: Vec::from_value(field("adversaries")?)?,
            problems: Vec::from_value(field("problems")?)?,
            seed: match value.get("seed") {
                Some(v) => Option::from_value(v)?,
                None => None,
            },
            trials: match value.get("trials") {
                Some(v) => Option::from_value(v)?,
                None => None,
            },
            rounds: match value.get("rounds") {
                Some(v) => RoundsRule::from_value(v)?,
                None => RoundsRule::ScenarioDefault,
            },
            collision_detection: match value.get("collision_detection") {
                Some(v) => bool::from_value(v)?,
                None => false,
            },
            record_mode: match value.get("record_mode") {
                Some(v) => RecordMode::from_value(v)?,
                None => RecordMode::None,
            },
            curve: match value.get("curve") {
                Some(v) => bool::from_value(v)?,
                None => false,
            },
            batch: match value.get("batch") {
                Some(v) => bool::from_value(v)?,
                None => false,
            },
            backend: match value.get("backend") {
                Some(v) => BackendChoice::from_value(v)?,
                None => BackendChoice::Auto,
            },
        })
    }
}

/// A whole measurement campaign: named, seeded, and built from groups.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (used for default store paths and report titles).
    pub name: String,
    /// Default scenario seed for groups without an override.
    pub seed: u64,
    /// Default trial policy for groups without an override.
    pub trials: TrialPolicy,
    /// The sweep groups, expanded in declaration order.
    pub groups: Vec<SweepGroup>,
}

impl CampaignSpec {
    /// Starts an empty campaign with seed 0 and a single-trial policy.
    pub fn named(name: impl Into<String>) -> Self {
        CampaignSpec {
            name: name.into(),
            seed: 0,
            trials: TrialPolicy::Fixed(1),
            groups: Vec::new(),
        }
    }

    /// Sets the default scenario seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the default trial policy.
    pub fn trials(mut self, trials: TrialPolicy) -> Self {
        self.trials = trials;
        self
    }

    /// Appends a sweep group.
    pub fn group(mut self, group: SweepGroup) -> Self {
        self.groups.push(group);
        self
    }

    /// Validates the campaign without expanding it.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Spec`] on an empty campaign, an empty axis, a custom
    /// component on an axis, or a degenerate trial policy.
    pub fn validate(&self) -> Result<()> {
        if self.groups.is_empty() {
            return Err(CampaignError::spec(format!(
                "campaign {:?} has no sweep groups",
                self.name
            )));
        }
        self.trials.validate()?;
        for (i, group) in self.groups.iter().enumerate() {
            group.validate(i)?;
        }
        Ok(())
    }

    /// Expands the campaign into its cells: groups in declaration order, and
    /// within a group the product in topology-major order (topology →
    /// algorithm → adversary → problem, last axis fastest). Duplicate cells
    /// (identical content keys) are dropped, keeping the first occurrence, so
    /// the expansion is duplicate-free and order-stable: the same spec always
    /// yields the same cell list.
    ///
    /// # Errors
    ///
    /// Everything [`CampaignSpec::validate`] rejects, plus round-budget rules
    /// that cannot be resolved against a topology.
    pub fn expand(&self) -> Result<Vec<CellSpec>> {
        self.validate()?;
        let mut cells = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for group in &self.groups {
            let seed = group.seed.unwrap_or(self.seed);
            let trials = group.trials.unwrap_or(self.trials);
            for topology in &group.topologies {
                let max_rounds = group.rounds.resolve(topology)?;
                for algorithm in &group.algorithms {
                    for adversary in &group.adversaries {
                        for problem in &group.problems {
                            // A curve needs per-round collision counts:
                            // promote the history-free mode to
                            // CollisionsOnly (never to Full).
                            let record_mode =
                                if group.curve && !group.record_mode.records_collisions() {
                                    RecordMode::CollisionsOnly
                                } else {
                                    group.record_mode
                                };
                            let cell = CellSpec {
                                scenario: ScenarioSpec {
                                    topology: topology.clone(),
                                    algorithm: algorithm.clone(),
                                    adversary: adversary.clone(),
                                    problem: problem.clone(),
                                    seed,
                                    max_rounds,
                                    collision_detection: group.collision_detection,
                                },
                                trials,
                                record_mode,
                                curve: group.curve,
                                batch: group.batch,
                                backend: group.backend,
                            };
                            if seen.insert(cell.key()) {
                                cells.push(cell);
                            }
                        }
                    }
                }
            }
        }
        Ok(cells)
    }
}

impl Serialize for CampaignSpec {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("name".into(), self.name.to_value()),
            ("seed".into(), self.seed.to_value()),
            ("trials".into(), self.trials.to_value()),
            ("groups".into(), self.groups.to_value()),
        ])
    }
}

impl Deserialize for CampaignSpec {
    fn from_value(value: &Value) -> std::result::Result<Self, serde::Error> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| serde::Error::new(format!("CampaignSpec is missing {name:?}")))
        };
        Ok(CampaignSpec {
            name: String::from_value(field("name")?)?,
            seed: match value.get("seed") {
                Some(v) => u64::from_value(v)?,
                None => 0,
            },
            trials: match value.get("trials") {
                Some(v) => TrialPolicy::from_value(v)?,
                None => TrialPolicy::Fixed(1),
            },
            groups: Vec::from_value(field("groups")?)?,
        })
    }
}

impl fmt::Display for CampaignSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "campaign {:?} (seed {}, {} groups)",
            self.name,
            self.seed,
            self.groups.len()
        )
    }
}

/// One expanded unit of work: a scenario plus the trial policy it runs under.
///
/// The cell's [`key`](CellSpec::key) is a content hash of its canonical JSON
/// serialization, so two cells are "the same measurement" exactly when their
/// declarative content matches — across processes, restarts, and reorderings
/// of the surrounding campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// The scenario to measure.
    pub scenario: ScenarioSpec,
    /// How many trials to run.
    pub trials: TrialPolicy,
    /// How much of each trial execution the engine retains. **Not part of
    /// the cell's identity**: measurements are identical under every mode
    /// (pinned by the equivalence tests), so two cells differing only in
    /// record mode are the same measurement and share a store record.
    pub record_mode: RecordMode,
    /// Whether the cell streams a contention-over-time curve into its
    /// measurement. Also **not part of the cell's identity** (the scalar
    /// statistics are unchanged), and omitted from the serialized form when
    /// off so pre-curve stores keep their exact bytes.
    pub curve: bool,
    /// Whether the cell requests bit-sliced batch trial execution. A pure
    /// execution strategy — batched cells produce bit-for-bit the scalar
    /// measurements, and unbatchable cells fall back to scalar — so also
    /// **not part of the cell's identity**, and omitted from the serialized
    /// form when off so pre-batch stores keep their exact bytes.
    pub batch: bool,
    /// Which graph storage backend the cell builds its topology with. A pure
    /// memory/layout decision — every backend yields structurally identical
    /// networks and bit-identical measurements — so also **not part of the
    /// cell's identity**, and omitted from the serialized form when
    /// [`BackendChoice::Auto`] so pre-backend stores keep their exact bytes.
    pub backend: BackendChoice,
}

impl CellSpec {
    /// The content-hash key of this cell: FNV-1a 64 over the canonical
    /// (compact) JSON serialization of its *identity* — the scenario and the
    /// trial policy, deliberately excluding the record mode (see the field
    /// documentation) — hex-encoded.
    ///
    /// Stable across processes — the serialization is deterministic (ordered
    /// maps, shortest-round-trip floats) and the hash has no random state.
    pub fn key(&self) -> String {
        /// The slice of a [`CellSpec`] that defines "the same measurement".
        struct CellIdentity<'a>(&'a CellSpec);
        impl Serialize for CellIdentity<'_> {
            fn to_value(&self) -> Value {
                Value::Map(vec![
                    ("scenario".into(), self.0.scenario.to_value()),
                    ("trials".into(), self.0.trials.to_value()),
                ])
            }
        }
        let canonical =
            // lint: allow(D4) -- identity serialization is infallible: every
            // field is a plain spec value (pinned by the serde round-trip tests)
            serde_json::to_string(&CellIdentity(self)).expect("cell specs always serialize");
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in canonical.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        format!("{hash:016x}")
    }

    /// A short human-readable label for errors and progress lines.
    pub fn label(&self) -> String {
        self.scenario.to_string()
    }
}

impl Serialize for CellSpec {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("scenario".into(), self.scenario.to_value()),
            ("trials".into(), self.trials.to_value()),
            ("record_mode".into(), self.record_mode.to_value()),
        ];
        if self.curve {
            fields.push(("curve".into(), self.curve.to_value()));
        }
        if self.batch {
            fields.push(("batch".into(), self.batch.to_value()));
        }
        if self.backend != BackendChoice::Auto {
            fields.push(("backend".into(), self.backend.to_value()));
        }
        Value::Map(fields)
    }
}

impl Deserialize for CellSpec {
    fn from_value(value: &Value) -> std::result::Result<Self, serde::Error> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| serde::Error::new(format!("CellSpec is missing {name:?}")))
        };
        Ok(CellSpec {
            scenario: ScenarioSpec::from_value(field("scenario")?)?,
            trials: TrialPolicy::from_value(field("trials")?)?,
            // Absent in stores written before record modes existed.
            record_mode: match value.get("record_mode") {
                Some(v) => RecordMode::from_value(v)?,
                None => RecordMode::None,
            },
            // Absent in stores written before curves existed.
            curve: match value.get("curve") {
                Some(v) => bool::from_value(v)?,
                None => false,
            },
            // Absent in stores written before batch execution existed.
            batch: match value.get("batch") {
                Some(v) => bool::from_value(v)?,
                None => false,
            },
            // Absent in stores written before storage backends existed.
            backend: match value.get("backend") {
                Some(v) => BackendChoice::from_value(v)?,
                None => BackendChoice::Auto,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dradio_core::algorithms::GlobalAlgorithm;

    fn sample_campaign() -> CampaignSpec {
        CampaignSpec::named("sample")
            .seed(7)
            .trials(TrialPolicy::Fixed(3))
            .group(SweepGroup::product(
                vec![
                    TopologySpec::Clique { n: 8 },
                    TopologySpec::DualClique { n: 8 },
                ],
                vec![
                    GlobalAlgorithm::Bgi.into(),
                    GlobalAlgorithm::Permuted.into(),
                ],
                vec![AdversarySpec::StaticNone, AdversarySpec::Iid { p: 0.5 }],
                vec![ProblemSpec::GlobalFrom(0)],
            ))
    }

    #[test]
    fn expansion_is_the_full_product_in_declared_order() {
        let cells = sample_campaign().expand().unwrap();
        assert_eq!(cells.len(), 2 * 2 * 2);
        // Topology-major: the first four cells share the first topology.
        for cell in &cells[..4] {
            assert_eq!(cell.scenario.topology, TopologySpec::Clique { n: 8 });
        }
        // Problem/adversary/algorithm vary fastest-to-slowest.
        assert_eq!(cells[0].scenario.adversary, AdversarySpec::StaticNone);
        assert_eq!(cells[1].scenario.adversary, AdversarySpec::Iid { p: 0.5 });
        assert_eq!(cells[0].scenario.seed, 7);
        assert_eq!(cells[0].trials, TrialPolicy::Fixed(3));
    }

    #[test]
    fn duplicate_cells_are_dropped_keeping_the_first() {
        let base = sample_campaign();
        let doubled = base.clone().group(base.groups[0].clone());
        let cells = doubled.expand().unwrap();
        assert_eq!(cells.len(), base.expand().unwrap().len());
    }

    #[test]
    fn group_overrides_beat_campaign_defaults() {
        let campaign = CampaignSpec::named("overrides").seed(1).group(
            SweepGroup::cell(
                TopologySpec::Clique { n: 8 },
                GlobalAlgorithm::Bgi,
                AdversarySpec::StaticNone,
                ProblemSpec::GlobalFrom(0),
            )
            .seed(99)
            .trials(TrialPolicy::Fixed(5))
            .rounds(RoundsRule::Fixed(1234)),
        );
        let cells = campaign.expand().unwrap();
        assert_eq!(cells[0].scenario.seed, 99);
        assert_eq!(cells[0].trials, TrialPolicy::Fixed(5));
        assert_eq!(cells[0].scenario.max_rounds, Some(1234));
    }

    #[test]
    fn per_node_budgets_scale_with_the_spec_size() {
        let rule = RoundsRule::PerNode {
            per_node: 200,
            base: 100,
            min_nodes: 16,
        };
        assert_eq!(
            rule.resolve(&TopologySpec::Clique { n: 8 }).unwrap(),
            Some(200 * 16 + 100)
        );
        assert_eq!(
            rule.resolve(&TopologySpec::Bracelet { k: 4 }).unwrap(),
            Some(200 * 32 + 100)
        );
        assert!(rule
            .resolve(&TopologySpec::Custom { name: "x".into() })
            .is_err());
    }

    #[test]
    fn misconfigurations_surface_as_spec_errors() {
        // Empty campaign.
        assert!(CampaignSpec::named("empty").expand().is_err());
        // Zero trials — the error-propagating replacement for the old
        // panicking measure path.
        let zero = sample_campaign().trials(TrialPolicy::Fixed(0));
        assert!(matches!(
            zero.expand().unwrap_err(),
            CampaignError::Spec { .. }
        ));
        // Degenerate adaptive policies.
        for bad in [
            TrialPolicy::Adaptive {
                min: 0,
                max: 4,
                relative_width: 0.1,
                stop: StopRule::MeanCostCi,
            },
            TrialPolicy::Adaptive {
                min: 4,
                max: 2,
                relative_width: 0.1,
                stop: StopRule::MeanCostCi,
            },
            TrialPolicy::Adaptive {
                min: 1,
                max: 4,
                relative_width: 0.0,
                stop: StopRule::MeanCostCi,
            },
            TrialPolicy::Adaptive {
                min: 1,
                max: 4,
                relative_width: f64::NAN,
                stop: StopRule::MeanCostCi,
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should be rejected");
        }
        // Empty axis.
        let empty_axis = CampaignSpec::named("axis").group(SweepGroup::product(
            vec![],
            vec![GlobalAlgorithm::Bgi.into()],
            vec![AdversarySpec::StaticNone],
            vec![ProblemSpec::GlobalFrom(0)],
        ));
        assert!(empty_axis.expand().is_err());
        // Custom components cannot be swept.
        let custom = CampaignSpec::named("custom").group(SweepGroup::cell(
            TopologySpec::Custom { name: "x".into() },
            GlobalAlgorithm::Bgi,
            AdversarySpec::StaticNone,
            ProblemSpec::GlobalFrom(0),
        ));
        assert!(custom.expand().is_err());
    }

    #[test]
    fn record_mode_is_not_part_of_cell_identity() {
        let fast = sample_campaign();
        let mut recorded = sample_campaign();
        recorded.groups[0].record_mode = RecordMode::Full;
        let fast_cells = fast.expand().unwrap();
        let recorded_cells = recorded.expand().unwrap();
        for (a, b) in fast_cells.iter().zip(&recorded_cells) {
            assert_eq!(a.record_mode, RecordMode::None);
            assert_eq!(b.record_mode, RecordMode::Full);
            assert_eq!(a.key(), b.key(), "record mode must not change the key");
        }
        // And the serialized cell still round-trips the mode.
        let json = serde_json::to_string(&recorded_cells[0]).unwrap();
        let back: CellSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.record_mode, RecordMode::Full);
        // Stores written before record modes existed deserialize to the
        // default fast mode.
        let legacy = serde_json::to_string(&fast_cells[0])
            .unwrap()
            .replace(",\"record_mode\":\"None\"", "");
        let back: CellSpec = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.record_mode, RecordMode::None);
        assert_eq!(back.key(), fast_cells[0].key());
    }

    #[test]
    fn default_stop_rule_keeps_the_legacy_policy_bytes() {
        // The exact serialization every pre-StopRule spec produced — cell
        // keys hash it, so it must never change for the default rule.
        let legacy = TrialPolicy::Adaptive {
            min: 2,
            max: 8,
            relative_width: 0.2,
            stop: StopRule::MeanCostCi,
        };
        assert_eq!(
            serde_json::to_string(&legacy).unwrap(),
            "{\"Adaptive\":{\"min\":2,\"max\":8,\"relative_width\":0.2}}"
        );
        assert_eq!(
            serde_json::to_string(&TrialPolicy::Fixed(3)).unwrap(),
            "{\"Fixed\":3}"
        );
        // A non-default rule appends the stop key...
        let completion = TrialPolicy::Adaptive {
            min: 2,
            max: 8,
            relative_width: 0.2,
            stop: StopRule::CompletionCi,
        };
        assert_eq!(
            serde_json::to_string(&completion).unwrap(),
            "{\"Adaptive\":{\"min\":2,\"max\":8,\"relative_width\":0.2,\"stop\":\"CompletionCi\"}}"
        );
        // ...and every shape round-trips, including legacy values without
        // the key.
        for policy in [legacy, completion, TrialPolicy::Fixed(3)] {
            let json = serde_json::to_string(&policy).unwrap();
            let back: TrialPolicy = serde_json::from_str(&json).unwrap();
            assert_eq!(back, policy);
        }
        let old: TrialPolicy =
            serde_json::from_str("{\"Adaptive\":{\"min\":1,\"max\":4,\"relative_width\":0.5}}")
                .unwrap();
        assert_eq!(
            old,
            TrialPolicy::Adaptive {
                min: 1,
                max: 4,
                relative_width: 0.5,
                stop: StopRule::MeanCostCi,
            }
        );
    }

    #[test]
    fn completion_stop_rules_change_cell_keys_but_defaults_do_not() {
        let base = sample_campaign().trials(TrialPolicy::Adaptive {
            min: 2,
            max: 8,
            relative_width: 0.2,
            stop: StopRule::MeanCostCi,
        });
        let completion = sample_campaign().trials(TrialPolicy::Adaptive {
            min: 2,
            max: 8,
            relative_width: 0.2,
            stop: StopRule::CompletionCi,
        });
        for (a, b) in base
            .expand()
            .unwrap()
            .iter()
            .zip(&completion.expand().unwrap())
        {
            assert_ne!(
                a.key(),
                b.key(),
                "a different stop rule allocates different trials — a \
                 different measurement"
            );
        }
        // Degenerate completion widths are rejected up front.
        assert!(TrialPolicy::Adaptive {
            min: 1,
            max: 4,
            relative_width: 1.0,
            stop: StopRule::CompletionCi,
        }
        .validate()
        .is_err());
        assert!(TrialPolicy::Adaptive {
            min: 1,
            max: 4,
            relative_width: 1.0,
            stop: StopRule::MeanCostCi,
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn curve_groups_promote_history_free_cells_to_collisions_only() {
        let mut campaign = sample_campaign();
        campaign.groups[0].curve = true;
        let cells = campaign.expand().unwrap();
        for cell in &cells {
            assert!(cell.curve);
            assert_eq!(
                cell.record_mode,
                RecordMode::CollisionsOnly,
                "a curve needs per-round counts — and must not promote to Full"
            );
        }
        // An explicit Full mode is left alone; the builder sets the flag.
        let mut full = sample_campaign();
        full.groups[0] = full.groups[0]
            .clone()
            .curve(true)
            .record_mode(RecordMode::Full);
        for cell in &full.expand().unwrap() {
            assert_eq!(cell.record_mode, RecordMode::Full);
        }
        // Like record mode, the curve flag is not part of the identity...
        let plain_cells = sample_campaign().expand().unwrap();
        for (a, b) in plain_cells.iter().zip(&cells) {
            assert_eq!(a.key(), b.key(), "curve must not change the key");
        }
        // ...and it round-trips through cell serde, with absence meaning
        // off (pre-curve stores).
        let json = serde_json::to_string(&cells[0]).unwrap();
        assert!(json.contains("\"curve\":true"));
        let back: CellSpec = serde_json::from_str(&json).unwrap();
        assert!(back.curve);
        let plain_json = serde_json::to_string(&plain_cells[0]).unwrap();
        assert!(
            !plain_json.contains("curve"),
            "curve-less cells keep the pre-curve bytes: {plain_json}"
        );
        let back: CellSpec = serde_json::from_str(&plain_json).unwrap();
        assert!(!back.curve);
    }

    #[test]
    fn batch_flag_stays_off_the_wire_and_out_of_keys_when_false() {
        let mut campaign = sample_campaign();
        campaign.groups[0] = campaign.groups[0].clone().batch(true);
        let batched_cells = campaign.expand().unwrap();
        let plain_cells = sample_campaign().expand().unwrap();
        for (a, b) in plain_cells.iter().zip(&batched_cells) {
            assert!(!a.batch);
            assert!(b.batch);
            // A pure execution strategy: batching must not change what the
            // cell measures, so it must not change the key either.
            assert_eq!(a.key(), b.key(), "batch must not change the key");
        }
        // Batched cells round-trip the flag...
        let json = serde_json::to_string(&batched_cells[0]).unwrap();
        assert!(json.contains("\"batch\":true"));
        let back: CellSpec = serde_json::from_str(&json).unwrap();
        assert!(back.batch);
        // ...while batch-less cells keep the exact pre-batch store bytes,
        // so `--batch` re-runs of old campaigns compare byte-for-byte.
        let plain_json = serde_json::to_string(&plain_cells[0]).unwrap();
        assert!(
            !plain_json.contains("batch"),
            "batch-less cells keep the pre-batch bytes: {plain_json}"
        );
        let back: CellSpec = serde_json::from_str(&plain_json).unwrap();
        assert!(!back.batch);
        // Groups serialize the flag only when set, too.
        let group_json = serde_json::to_string(&sample_campaign().groups[0]).unwrap();
        assert!(!group_json.contains("batch"));
        let back: SweepGroup = serde_json::from_str(&group_json).unwrap();
        assert!(!back.batch);
    }

    #[test]
    fn backend_knob_stays_off_the_wire_and_out_of_keys_when_auto() {
        let mut campaign = sample_campaign();
        campaign.groups[0] = campaign.groups[0].clone().backend(BackendChoice::Csr);
        let forced_cells = campaign.expand().unwrap();
        let plain_cells = sample_campaign().expand().unwrap();
        for (a, b) in plain_cells.iter().zip(&forced_cells) {
            assert_eq!(a.backend, BackendChoice::Auto);
            assert_eq!(b.backend, BackendChoice::Csr);
            // A pure memory/layout decision: the backend must not change
            // what the cell measures, so it must not change the key either.
            assert_eq!(a.key(), b.key(), "backend must not change the key");
        }
        // Forced cells round-trip the knob...
        let json = serde_json::to_string(&forced_cells[0]).unwrap();
        assert!(json.contains("\"backend\":\"Csr\""));
        let back: CellSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.backend, BackendChoice::Csr);
        // ...while auto cells keep the exact pre-backend store bytes, so
        // backend-forced re-runs of old campaigns compare byte-for-byte.
        let plain_json = serde_json::to_string(&plain_cells[0]).unwrap();
        assert!(
            !plain_json.contains("backend"),
            "auto cells keep the pre-backend bytes: {plain_json}"
        );
        let back: CellSpec = serde_json::from_str(&plain_json).unwrap();
        assert_eq!(back.backend, BackendChoice::Auto);
        // Groups serialize the knob only when forced, too.
        let group_json = serde_json::to_string(&sample_campaign().groups[0]).unwrap();
        assert!(!group_json.contains("backend"));
        let back: SweepGroup = serde_json::from_str(&group_json).unwrap();
        assert_eq!(back.backend, BackendChoice::Auto);
        let forced_group_json = serde_json::to_string(&campaign.groups[0]).unwrap();
        assert!(forced_group_json.contains("\"backend\":\"Csr\""));
        let back: SweepGroup = serde_json::from_str(&forced_group_json).unwrap();
        assert_eq!(back.backend, BackendChoice::Csr);
    }

    #[test]
    fn cell_keys_depend_only_on_content() {
        let cells = sample_campaign().expand().unwrap();
        let again = sample_campaign().expand().unwrap();
        for (a, b) in cells.iter().zip(&again) {
            assert_eq!(a.key(), b.key());
        }
        let mut keys: Vec<String> = cells.iter().map(CellSpec::key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), cells.len(), "distinct cells hash distinctly");
    }

    #[test]
    fn campaign_spec_serde_round_trips() {
        let campaign = sample_campaign().group(
            SweepGroup::cell(
                TopologySpec::Bracelet { k: 3 },
                dradio_core::algorithms::LocalAlgorithm::StaticDecay,
                AdversarySpec::BraceletAttack,
                ProblemSpec::LocalHeadsA,
            )
            .trials(TrialPolicy::Adaptive {
                min: 2,
                max: 16,
                relative_width: 0.25,
                stop: StopRule::MeanCostCi,
            })
            .rounds(RoundsRule::PerNode {
                per_node: 40,
                base: 300,
                min_nodes: 0,
            }),
        );
        let json = serde_json::to_string_pretty(&campaign).unwrap();
        let back: CampaignSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(campaign, back);
        // Expansion of the round-tripped spec matches cell for cell.
        let a = campaign.expand().unwrap();
        let b = back.expand().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn display_is_compact() {
        let shown = sample_campaign().to_string();
        assert!(shown.contains("sample"));
        assert!(shown.contains("1 groups"));
    }
}
