//! The append-only, truncation-tolerant JSONL result store.
//!
//! One line per measured cell:
//!
//! ```json
//! {"key":"<16-hex content hash>","cell":{...},"trials_run":8,"measurement":{...}}
//! ```
//!
//! The store is the campaign engine's unit of durability. Records are
//! appended — never rewritten — in cell-expansion order, each with its own
//! `write` call, so a killed run leaves a valid prefix plus at most one
//! half-written final line. [`ResultStore::open`] recovers by parsing the
//! intact prefix and truncating the damaged tail; resuming then re-runs
//! exactly the missing cells, which (because measurements and the trial-seed
//! derivation are deterministic) reproduces the uninterrupted store byte for
//! byte.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use dradio_scenario::{Measurement, ScenarioSpec};
use serde::{Deserialize, Serialize, Value};

use crate::error::{CampaignError, Result};
use crate::spec::{CampaignSpec, CellSpec};

/// One stored measurement: the cell, how many trials actually ran (relevant
/// under adaptive allocation), and the aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// The cell's content-hash key ([`CellSpec::key`]).
    pub key: String,
    /// The measured cell.
    pub cell: CellSpec,
    /// Number of trials the measurement aggregates.
    pub trials_run: usize,
    /// The aggregated measurement.
    pub measurement: Measurement,
}

impl Serialize for CellRecord {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("key".into(), self.key.to_value()),
            ("cell".into(), self.cell.to_value()),
            ("trials_run".into(), self.trials_run.to_value()),
            ("measurement".into(), self.measurement.to_value()),
        ])
    }
}

impl Deserialize for CellRecord {
    fn from_value(value: &Value) -> std::result::Result<Self, serde::Error> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| serde::Error::new(format!("CellRecord is missing {name:?}")))
        };
        Ok(CellRecord {
            key: String::from_value(field("key")?)?,
            cell: CellSpec::from_value(field("cell")?)?,
            trials_run: usize::from_value(field("trials_run")?)?,
            measurement: Measurement::from_value(field("measurement")?)?,
        })
    }
}

/// The campaign result store: an in-memory index over an (optional)
/// append-only JSONL file.
#[derive(Debug)]
pub struct ResultStore {
    records: Vec<CellRecord>,
    index: BTreeMap<String, usize>,
    file: Option<File>,
    path: Option<PathBuf>,
    repaired_tail: usize,
}

impl ResultStore {
    /// A purely in-memory store (no persistence) — what the experiment
    /// harness uses.
    pub fn in_memory() -> Self {
        ResultStore {
            records: Vec::new(),
            index: BTreeMap::new(),
            file: None,
            path: None,
            repaired_tail: 0,
        }
    }

    /// Opens (or creates) a file-backed store.
    ///
    /// An existing file is loaded as the resume state. A half-written final
    /// line — the signature of a killed run — is discarded and truncated away
    /// so subsequent appends continue from the last intact record.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Store`] on I/O failures, malformed non-final lines,
    /// or records whose stored key does not match their cell content (a
    /// hand-edited or format-drifted store).
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| CampaignError::store(format!("cannot open {}: {e}", path.display())))?;
        let mut text = String::new();
        file.read_to_string(&mut text)
            .map_err(|e| CampaignError::store(format!("cannot read {}: {e}", path.display())))?;

        let mut records: Vec<CellRecord> = Vec::new();
        let mut valid_bytes = 0usize;
        let mut lines = text.split_inclusive('\n').peekable();
        while let Some(line) = lines.next() {
            let is_last = lines.peek().is_none();
            let terminated = line.ends_with('\n');
            match serde_json::from_str::<CellRecord>(line.trim_end_matches('\n')) {
                Ok(record) if terminated => {
                    if record.cell.key() != record.key {
                        return Err(CampaignError::store(format!(
                            "{}: record {} has key {} but its cell hashes to {}; \
                             the store was edited or the format drifted",
                            path.display(),
                            records.len(),
                            record.key,
                            record.cell.key(),
                        )));
                    }
                    valid_bytes += line.len();
                    records.push(record);
                }
                // Only an *unterminated* final line can be the torn tail of
                // a killed append: each record is written with its trailing
                // newline in a single call, and JSON lines carry no raw
                // newlines. Drop it and let resume re-measure that cell.
                _ if is_last && !terminated => break,
                // A newline-terminated line that fails to parse — anywhere,
                // including the last line — is external corruption, never a
                // torn append; refuse to silently destroy it.
                Err(e) => {
                    return Err(CampaignError::store(format!(
                        "{}: malformed record on line {}: {e}",
                        path.display(),
                        records.len() + 1,
                    )));
                }
                // split_inclusive only leaves the final line unterminated.
                Ok(_) => unreachable!("unterminated interior line"),
            }
        }
        let repaired_tail = text.len() - valid_bytes;
        if repaired_tail > 0 {
            file.set_len(valid_bytes as u64).map_err(|e| {
                CampaignError::store(format!(
                    "cannot truncate torn tail of {}: {e}",
                    path.display()
                ))
            })?;
        }

        let index = records
            .iter()
            .enumerate()
            .map(|(i, r)| (r.key.clone(), i))
            .collect();
        Ok(ResultStore {
            records,
            index,
            file: Some(file),
            path: Some(path),
            repaired_tail,
        })
    }

    /// Torn-tail bytes [`ResultStore::open`] truncated away to recover this
    /// store — nonzero exactly when the previous writer died mid-append.
    /// Always `0` for in-memory stores.
    pub fn repaired_tail_bytes(&self) -> usize {
        self.repaired_tail
    }

    /// The backing file path, if the store is persistent.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records, in append (= cell-expansion) order.
    pub fn records(&self) -> &[CellRecord] {
        &self.records
    }

    /// Whether a cell key is already measured.
    pub fn contains(&self, key: &str) -> bool {
        self.index.contains_key(key)
    }

    /// Looks a record up by cell key.
    pub fn get(&self, key: &str) -> Option<&CellRecord> {
        self.index.get(key).map(|&i| &self.records[i])
    }

    /// Looks a record up by the scenario it measured (linear scan; stores are
    /// small). Table-rendering code uses this to fetch measurements in
    /// presentation order, independent of expansion order.
    pub fn for_scenario(&self, scenario: &ScenarioSpec) -> Option<&CellRecord> {
        self.records.iter().find(|r| &r.cell.scenario == scenario)
    }

    /// Appends a record (and persists it, for file-backed stores).
    ///
    /// # Errors
    ///
    /// [`CampaignError::Store`] on duplicate keys or write failures.
    pub fn append(&mut self, record: CellRecord) -> Result<()> {
        if self.contains(&record.key) {
            return Err(CampaignError::store(format!(
                "duplicate append of cell {} ({})",
                record.key,
                record.cell.label(),
            )));
        }
        if let Some(file) = &mut self.file {
            // lint: allow(D4) -- record serialization is infallible: every
            // field round-trips through the pinned store serde tests
            let mut line = serde_json::to_string(&record).expect("records always serialize");
            line.push('\n');
            // One write call per record: a kill can tear at most the final
            // line, which open() knows how to discard.
            file.write_all(line.as_bytes()).map_err(|e| {
                CampaignError::store(format!("cannot append record {}: {e}", record.key))
            })?;
        }
        self.index.insert(record.key.clone(), self.records.len());
        self.records.push(record);
        Ok(())
    }

    /// Compacts a file-backed store against a campaign spec: rewrites the
    /// file keeping only the records in `spec`'s expansion, in expansion
    /// order. Records from superseded campaign versions (keys no longer in
    /// the expansion) are dropped; kept record lines are carried over **as
    /// their original bytes** (not re-serialized), so reports over the
    /// compacted store are identical and compaction is idempotent.
    ///
    /// The rewrite goes through a sibling temp file that atomically replaces
    /// the original, and the original is **never truncated on failure**: the
    /// store must exist and load cleanly first — a key-integrity failure (or
    /// any other load error) aborts the compaction with the file untouched.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Store`] if the store is missing, fails to load, or
    /// fails to rewrite, and [`CampaignError::Spec`] if the campaign fails
    /// to expand.
    pub fn compact(spec: &CampaignSpec, path: impl AsRef<Path>) -> Result<CompactReport> {
        let path = path.as_ref();
        // `open` would create a missing file; compacting nothing into an
        // empty store silently would hide a typo'd path.
        if !path.exists() {
            return Err(CampaignError::store(format!(
                "cannot compact {}: the store does not exist",
                path.display()
            )));
        }
        // Refuses corrupted or tampered stores before any byte is written.
        let store = ResultStore::open(path)?;
        let cells = spec.expand()?;

        // The kept lines are the original bytes: open() leaves the file as
        // one newline-terminated line per loaded record (any torn tail was
        // truncated away), so lines and records zip one to one.
        let text = std::fs::read_to_string(path)
            .map_err(|e| CampaignError::store(format!("cannot read {}: {e}", path.display())))?;
        let lines: Vec<&str> = text.split_inclusive('\n').collect();
        debug_assert_eq!(lines.len(), store.len());

        let mut kept_lines = String::new();
        let mut kept = 0usize;
        let mut missing = 0usize;
        for cell in &cells {
            match store.index.get(&cell.key()) {
                Some(&i) => {
                    kept_lines.push_str(lines[i]);
                    kept += 1;
                }
                None => missing += 1,
            }
        }
        let dropped = store.len() - kept;
        drop(store);

        let tmp_path = {
            let mut p = path.as_os_str().to_owned();
            p.push(".compact-tmp");
            PathBuf::from(p)
        };
        std::fs::write(&tmp_path, kept_lines).map_err(|e| {
            CampaignError::store(format!("cannot write {}: {e}", tmp_path.display()))
        })?;
        std::fs::rename(&tmp_path, path).map_err(|e| {
            CampaignError::store(format!(
                "cannot replace {} with its compaction: {e}",
                path.display()
            ))
        })?;
        Ok(CompactReport {
            cells: cells.len(),
            kept,
            dropped,
            missing,
        })
    }

    /// Merges shard stores into `out`: unions the keyed records of every
    /// input (plus `out` itself, when it already exists — so a merge is
    /// resumable and idempotent) and writes them in `spec`'s expansion
    /// order, each kept line carried over **as its original bytes**. Because
    /// measurements are pure functions of their cell spec, the fleet's
    /// shard stores union into exactly the store a single-process run
    /// writes, byte for byte.
    ///
    /// Overlapping shards are fine as long as they agree: byte-identical
    /// duplicate records deduplicate (a cell re-assigned after a worker
    /// crash lands in two shards), while two records for the same key with
    /// different bytes are a hard error — that means non-deterministic or
    /// tampered inputs, and silently picking one would hide it. Each input
    /// loads through [`ResultStore::open`], so torn tails are truncated
    /// like any killed-run store and key-integrity failures refuse the
    /// merge before `out` is touched. The rewrite goes through a sibling
    /// temp file that atomically replaces `out`.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Store`] when `inputs` is empty, an input is missing,
    /// an input fails its load-time integrity checks, two inputs conflict on
    /// a key, or the rewrite fails; [`CampaignError::Spec`] if the campaign
    /// fails to expand.
    pub fn merge(
        spec: &CampaignSpec,
        out: impl AsRef<Path>,
        inputs: &[impl AsRef<Path>],
    ) -> Result<MergeReport> {
        let out = out.as_ref();
        if inputs.is_empty() {
            return Err(CampaignError::store(
                "merge needs at least one input shard store",
            ));
        }
        let mut sources: Vec<PathBuf> = Vec::new();
        if out.exists() {
            sources.push(out.to_path_buf());
        }
        for input in inputs {
            let input = input.as_ref();
            // `open` would create a missing file; merging a typo'd shard
            // path as an empty store would silently lose its records.
            if !input.exists() {
                return Err(CampaignError::store(format!(
                    "cannot merge {}: the shard store does not exist",
                    input.display()
                )));
            }
            sources.push(input.to_path_buf());
        }

        // key -> (original line bytes, first source holding it).
        let mut lines_by_key: BTreeMap<String, (String, PathBuf)> = BTreeMap::new();
        let mut duplicates = 0usize;
        for source in &sources {
            // Load-time integrity: key checks reject tampered shards, torn
            // tails truncate exactly as a resume would.
            let store = ResultStore::open(source)?;
            let text = std::fs::read_to_string(source).map_err(|e| {
                CampaignError::store(format!("cannot read {}: {e}", source.display()))
            })?;
            let lines: Vec<&str> = text.split_inclusive('\n').collect();
            debug_assert_eq!(lines.len(), store.len());
            for (record, line) in store.records().iter().zip(&lines) {
                match lines_by_key.get(&record.key) {
                    None => {
                        lines_by_key.insert(record.key.clone(), (line.to_string(), source.clone()));
                    }
                    Some((kept, _)) if kept == line => duplicates += 1,
                    Some((_, first)) => {
                        return Err(CampaignError::store(format!(
                            "conflicting records for cell {} ({}): {} and {} disagree \
                             byte-for-byte; refusing to pick one",
                            record.key,
                            record.cell.label(),
                            first.display(),
                            source.display(),
                        )));
                    }
                }
            }
        }

        let cells = spec.expand()?;
        let mut kept_lines = String::new();
        let mut merged = 0usize;
        let mut missing = 0usize;
        for cell in &cells {
            match lines_by_key.get(&cell.key()) {
                Some((line, _)) => {
                    kept_lines.push_str(line);
                    merged += 1;
                }
                None => missing += 1,
            }
        }
        let stale = lines_by_key.len() - merged;

        let tmp_path = {
            let mut p = out.as_os_str().to_owned();
            p.push(".merge-tmp");
            PathBuf::from(p)
        };
        std::fs::write(&tmp_path, kept_lines).map_err(|e| {
            CampaignError::store(format!("cannot write {}: {e}", tmp_path.display()))
        })?;
        std::fs::rename(&tmp_path, out).map_err(|e| {
            CampaignError::store(format!(
                "cannot replace {} with the merge: {e}",
                out.display()
            ))
        })?;
        Ok(MergeReport {
            cells: cells.len(),
            shards: inputs.len(),
            merged,
            duplicates,
            stale,
            missing,
        })
    }

    /// Read-only integrity inspection of a store file: locates a torn tail,
    /// verifies key integrity line by line, and finds duplicate keys and
    /// malformed records — reporting without modifying a byte (unlike
    /// [`ResultStore::open`], which truncates the tail in place). Operators
    /// run it as `repro campaign fsck --store <path>` to inspect shard
    /// stores before a `merge`.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Store`] only when the file is missing or unreadable;
    /// every *finding* lands in the report instead of erroring.
    pub fn fsck(path: impl AsRef<Path>) -> Result<FsckReport> {
        let path = path.as_ref();
        if !path.exists() {
            return Err(CampaignError::store(format!(
                "cannot fsck {}: the store does not exist",
                path.display()
            )));
        }
        let text = std::fs::read_to_string(path)
            .map_err(|e| CampaignError::store(format!("cannot read {}: {e}", path.display())))?;

        let mut report = FsckReport::default();
        let mut seen: BTreeMap<String, usize> = BTreeMap::new();
        let mut offset = 0u64;
        let mut line_no = 0usize;
        let mut lines = text.split_inclusive('\n').peekable();
        while let Some(line) = lines.next() {
            line_no += 1;
            let is_last = lines.peek().is_none();
            let terminated = line.ends_with('\n');
            match serde_json::from_str::<CellRecord>(line.trim_end_matches('\n')) {
                Ok(record) if terminated => {
                    if record.cell.key() != record.key {
                        report.key_mismatches.push(format!(
                            "line {line_no}: stored key {} but the cell hashes to {}",
                            record.key,
                            record.cell.key()
                        ));
                    }
                    if let Some(first) = seen.insert(record.key.clone(), line_no) {
                        report.duplicate_keys.push(format!(
                            "line {line_no}: key {} already stored on line {first}",
                            record.key
                        ));
                    }
                    report.records += 1;
                }
                // The signature of a killed append: open() would truncate
                // exactly these bytes.
                _ if is_last && !terminated => {
                    report.torn_tail_bytes = line.len();
                    report.torn_tail_offset = Some(offset);
                }
                // Terminated-but-unparseable is external corruption; open()
                // refuses such stores outright.
                Err(_) => report.malformed_lines.push(line_no),
                // split_inclusive only leaves the final line unterminated.
                Ok(_) => unreachable!("unterminated interior line"),
            }
            offset += line.len() as u64;
        }
        Ok(report)
    }
}

/// What a [`ResultStore::fsck`] inspection found. `Default` is a clean
/// report over an empty store.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FsckReport {
    /// Intact, newline-terminated records.
    pub records: usize,
    /// Bytes in an unterminated torn tail (`0`: none).
    pub torn_tail_bytes: usize,
    /// Byte offset where the torn tail starts, when one exists.
    pub torn_tail_offset: Option<u64>,
    /// Duplicate-key findings, one rendered line each.
    pub duplicate_keys: Vec<String>,
    /// Key-integrity findings (stored key ≠ cell content hash), one
    /// rendered line each.
    pub key_mismatches: Vec<String>,
    /// 1-based line numbers of newline-terminated lines that do not parse
    /// as records.
    pub malformed_lines: Vec<usize>,
}

impl FsckReport {
    /// No findings: [`ResultStore::open`] would load this store unchanged.
    pub fn is_clean(&self) -> bool {
        self.torn_tail_bytes == 0
            && self.duplicate_keys.is_empty()
            && self.key_mismatches.is_empty()
            && self.malformed_lines.is_empty()
    }

    /// Total findings across every category.
    pub fn findings(&self) -> usize {
        usize::from(self.torn_tail_bytes > 0)
            + self.duplicate_keys.len()
            + self.key_mismatches.len()
            + self.malformed_lines.len()
    }
}

impl fmt::Display for FsckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} intact record(s)", self.records)?;
        if let Some(offset) = self.torn_tail_offset {
            writeln!(
                f,
                "torn tail: {} byte(s) starting at offset {offset} — a killed append; \
                 open() truncates it and resume re-measures that cell",
                self.torn_tail_bytes
            )?;
        }
        for finding in &self.key_mismatches {
            writeln!(f, "key mismatch: {finding}")?;
        }
        for finding in &self.duplicate_keys {
            writeln!(f, "duplicate key: {finding}")?;
        }
        for line in &self.malformed_lines {
            writeln!(f, "malformed record on line {line}")?;
        }
        if self.is_clean() {
            write!(f, "clean: the store loads as-is")
        } else {
            write!(f, "{} finding(s)", self.findings())
        }
    }
}

/// What a [`ResultStore::compact`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactReport {
    /// Cells in the campaign's expansion.
    pub cells: usize,
    /// Records kept (present in both the store and the expansion).
    pub kept: usize,
    /// Records dropped (stored, but no longer in the expansion).
    pub dropped: usize,
    /// Expansion cells with no stored record yet (left for a future run).
    pub missing: usize,
}

impl fmt::Display for CompactReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kept {} of {} cells, dropped {} stale records, {} not yet measured",
            self.kept, self.cells, self.dropped, self.missing
        )
    }
}

/// What a [`ResultStore::merge`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MergeReport {
    /// Cells in the campaign's expansion.
    pub cells: usize,
    /// Input shard stores unioned (not counting an existing output store).
    pub shards: usize,
    /// Expansion cells written to the merged store.
    pub merged: usize,
    /// Byte-identical duplicate records collapsed across inputs.
    pub duplicates: usize,
    /// Distinct records dropped because their key left the expansion.
    pub stale: usize,
    /// Expansion cells no input had measured yet.
    pub missing: usize,
}

impl fmt::Display for MergeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "merged {} of {} cells from {} shards ({} duplicates collapsed, \
             {} stale records dropped, {} not yet measured)",
            self.merged, self.cells, self.shards, self.duplicates, self.stale, self.missing
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TrialPolicy;
    use dradio_core::algorithms::GlobalAlgorithm;
    use dradio_scenario::{AdversarySpec, Completion, ProblemSpec, Summary, TopologySpec};

    fn record(n: usize) -> CellRecord {
        let cell = CellSpec {
            scenario: ScenarioSpec {
                topology: TopologySpec::Clique { n },
                algorithm: GlobalAlgorithm::Bgi.into(),
                adversary: AdversarySpec::StaticNone,
                problem: ProblemSpec::GlobalFrom(0),
                seed: 1,
                max_rounds: Some(100),
                collision_detection: false,
            },
            trials: TrialPolicy::Fixed(2),
            record_mode: dradio_scenario::RecordMode::None,
            curve: false,
            batch: false,
            backend: dradio_scenario::BackendChoice::Auto,
        };
        CellRecord {
            key: cell.key(),
            cell,
            trials_run: 2,
            measurement: Measurement {
                rounds: Summary::from_counts(&[n, n + 2]),
                completion: Completion {
                    completed: 2,
                    trials: 2,
                },
                mean_collisions: 0.5,
                contention: None,
            },
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "dradio-campaign-store-{tag}-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn in_memory_stores_index_by_key() {
        let mut store = ResultStore::in_memory();
        assert!(store.is_empty());
        let r = record(8);
        let key = r.key.clone();
        store.append(r.clone()).unwrap();
        assert_eq!(store.len(), 1);
        assert!(store.contains(&key));
        assert_eq!(store.get(&key), Some(&r));
        assert_eq!(store.for_scenario(&r.cell.scenario), Some(&r));
        assert!(store.for_scenario(&record(16).cell.scenario).is_none());
        // Duplicate appends are programming errors, not silent overwrites.
        assert!(store.append(r).is_err());
    }

    #[test]
    fn file_backed_store_round_trips() {
        let path = temp_path("roundtrip");
        {
            let mut store = ResultStore::open(&path).unwrap();
            store.append(record(8)).unwrap();
            store.append(record(16)).unwrap();
        }
        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.records(), &[record(8), record(16)]);
        assert_eq!(store.path(), Some(path.as_path()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_discarded_and_truncated() {
        let path = temp_path("torn");
        {
            let mut store = ResultStore::open(&path).unwrap();
            store.append(record(8)).unwrap();
            store.append(record(16)).unwrap();
        }
        // Simulate a kill mid-append: chop the file inside the last line.
        let full = std::fs::read_to_string(&path).unwrap();
        let cut = full.len() - 17;
        std::fs::write(&path, &full[..cut]).unwrap();

        let store = ResultStore::open(&path).unwrap();
        assert_eq!(store.records(), &[record(8)], "only the intact prefix");
        assert!(store.repaired_tail_bytes() > 0, "the repair is reported");
        // The damaged bytes are gone from disk too.
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert!(on_disk.ends_with('\n'));
        assert_eq!(on_disk.lines().count(), 1);
        // A clean reopen reports no repair.
        assert_eq!(ResultStore::open(&path).unwrap().repaired_tail_bytes(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fsck_reports_a_clean_store_without_modifying_it() {
        let path = temp_path("fsck-clean");
        {
            let mut store = ResultStore::open(&path).unwrap();
            store.append(record(8)).unwrap();
            store.append(record(16)).unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        let report = ResultStore::fsck(&path).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.records, 2);
        assert_eq!(report.findings(), 0);
        assert!(report.to_string().contains("clean"), "{report}");
        assert_eq!(std::fs::read(&path).unwrap(), bytes, "fsck never writes");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fsck_locates_a_torn_tail_without_repairing_it() {
        let path = temp_path("fsck-torn");
        {
            let mut store = ResultStore::open(&path).unwrap();
            store.append(record(8)).unwrap();
            store.append(record(16)).unwrap();
        }
        let full = std::fs::read_to_string(&path).unwrap();
        let cut = full.len() - 17;
        std::fs::write(&path, &full[..cut]).unwrap();
        let first_line_len = full.lines().next().unwrap().len() + 1;

        let bytes = std::fs::read(&path).unwrap();
        let report = ResultStore::fsck(&path).unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.records, 1);
        assert_eq!(report.torn_tail_bytes, cut - first_line_len);
        assert_eq!(report.torn_tail_offset, Some(first_line_len as u64));
        assert!(report.to_string().contains("torn tail"), "{report}");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            bytes,
            "fsck reports the tear but leaves repair to open()"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fsck_finds_duplicates_key_mismatches_and_malformed_lines() {
        let path = temp_path("fsck-findings");
        let good = serde_json::to_string(&record(8)).unwrap();
        let mut forged = record(16);
        forged.key = "0000000000000000".into();
        let forged = serde_json::to_string(&forged).unwrap();
        let text = format!("{good}\n{good}\n{forged}\nthis is not json\n");
        std::fs::write(&path, &text).unwrap();

        let report = ResultStore::fsck(&path).unwrap();
        assert_eq!(report.records, 3, "duplicates and forgeries still parse");
        assert_eq!(report.duplicate_keys.len(), 1, "{report}");
        assert!(report.duplicate_keys[0].contains("line 2"), "{report}");
        assert_eq!(report.key_mismatches.len(), 1, "{report}");
        assert!(report.key_mismatches[0].contains("0000000000000000"));
        assert_eq!(report.malformed_lines, vec![4]);
        assert_eq!(report.findings(), 3);
        assert!(report.to_string().contains("3 finding(s)"), "{report}");
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            text,
            "fsck never writes"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fsck_refuses_a_missing_store() {
        let path = temp_path("fsck-missing");
        assert!(ResultStore::fsck(&path).is_err());
        assert!(!path.exists(), "fsck must not create the file");
    }

    #[test]
    fn terminated_malformed_final_line_is_a_hard_error() {
        // A line that ends in '\n' but fails to parse cannot be a torn
        // append (records are written newline-included in one call); it must
        // be reported, not silently truncated away.
        let path = temp_path("terminated-garbage");
        {
            let mut store = ResultStore::open(&path).unwrap();
            store.append(record(8)).unwrap();
        }
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("this is not json\n");
        std::fs::write(&path, &text).unwrap();
        assert!(ResultStore::open(&path).is_err());
        // The file is untouched — nothing was truncated.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), text);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_interior_lines_are_hard_errors() {
        let path = temp_path("interior");
        {
            let mut store = ResultStore::open(&path).unwrap();
            store.append(record(8)).unwrap();
        }
        let mut text = std::fs::read_to_string(&path).unwrap();
        text = format!("this is not json\n{text}");
        std::fs::write(&path, text).unwrap();
        assert!(ResultStore::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    /// A campaign whose expansion is exactly the `record(n)` cells for the
    /// given sizes, in order.
    fn campaign_over(sizes: &[usize]) -> CampaignSpec {
        let mut spec = CampaignSpec::named("compaction").seed(1);
        for &n in sizes {
            spec = spec.group(
                crate::spec::SweepGroup::cell(
                    TopologySpec::Clique { n },
                    GlobalAlgorithm::Bgi,
                    AdversarySpec::StaticNone,
                    ProblemSpec::GlobalFrom(0),
                )
                .trials(TrialPolicy::Fixed(2))
                .rounds(crate::spec::RoundsRule::Fixed(100)),
            );
        }
        spec
    }

    #[test]
    fn compact_keeps_expansion_records_in_expansion_order() {
        let path = temp_path("compact");
        {
            let mut store = ResultStore::open(&path).unwrap();
            // A stale record (not in the spec), plus two live ones appended
            // in the *reverse* of expansion order.
            store.append(record(64)).unwrap();
            store.append(record(16)).unwrap();
            store.append(record(8)).unwrap();
        }
        let spec = campaign_over(&[8, 16, 32]);
        // Sanity: the synthetic records' keys match the spec's cells.
        let cells = spec.expand().unwrap();
        assert_eq!(cells[0].key(), record(8).key);

        let report = ResultStore::compact(&spec, &path).unwrap();
        assert_eq!(
            report,
            CompactReport {
                cells: 3,
                kept: 2,
                dropped: 1,
                missing: 1,
            }
        );
        assert!(report.to_string().contains("kept 2 of 3"));

        let store = ResultStore::open(&path).unwrap();
        assert_eq!(
            store.records(),
            &[record(8), record(16)],
            "expansion order, stale record dropped"
        );
        // Kept lines are byte-identical: compacting an already-compact
        // store is the identity.
        let bytes = std::fs::read(&path).unwrap();
        ResultStore::compact(&spec, &path).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), bytes);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_requires_an_existing_store() {
        let path = temp_path("compact-missing");
        assert!(
            ResultStore::compact(&campaign_over(&[8]), &path).is_err(),
            "compacting a nonexistent store must fail, not create one"
        );
        assert!(!path.exists(), "no empty store left behind");
    }

    #[test]
    fn compact_preserves_original_line_bytes_verbatim() {
        // A measurement whose floats would not re-serialize to the same
        // bytes (completion_rate hand-rounded to 0.67): the cell is
        // untouched so the key check passes, and compaction must carry the
        // line over verbatim instead of re-serializing (and so rewriting)
        // it.
        let path = temp_path("compact-verbatim");
        {
            let mut store = ResultStore::open(&path).unwrap();
            store.append(record(8)).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let odd = text.replace("\"completion_rate\":1.0", "\"completion_rate\":0.67");
        assert_ne!(text, odd);
        std::fs::write(&path, &odd).unwrap();

        ResultStore::compact(&campaign_over(&[8]), &path).unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            odd,
            "kept lines are original bytes, not a re-serialization"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_refuses_to_touch_a_corrupted_store() {
        let path = temp_path("compact-corrupt");
        {
            let mut store = ResultStore::open(&path).unwrap();
            store.append(record(8)).unwrap();
            store.append(record(16)).unwrap();
        }
        // Tamper with a cell but keep its stored key: the key-integrity
        // check must reject the store and leave every byte alone.
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("\"n\":8", "\"n\":12", 1);
        std::fs::write(&path, &tampered).unwrap();
        assert!(ResultStore::compact(&campaign_over(&[8, 16]), &path).is_err());
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            tampered,
            "a failed compaction must not truncate or rewrite the store"
        );
        let _ = std::fs::remove_file(&path);
    }

    /// Writes `records` to a fresh temp store and returns its path.
    fn shard_with(tag: &str, records: &[CellRecord]) -> PathBuf {
        let path = temp_path(tag);
        let mut store = ResultStore::open(&path).unwrap();
        for record in records {
            store.append(record.clone()).unwrap();
        }
        path
    }

    #[test]
    fn merge_unions_shards_in_expansion_order() {
        // Shards hold disjoint pieces of the campaign, out of expansion
        // order; the merged store is the single-process store: every cell,
        // expansion order, original bytes.
        let a = shard_with("merge-a", &[record(16)]);
        let b = shard_with("merge-b", &[record(8)]);
        let out = temp_path("merge-out");
        let spec = campaign_over(&[8, 16]);
        let report = ResultStore::merge(&spec, &out, &[&a, &b]).unwrap();
        assert_eq!(
            report,
            MergeReport {
                cells: 2,
                shards: 2,
                merged: 2,
                duplicates: 0,
                stale: 0,
                missing: 0,
            }
        );
        assert!(report.to_string().contains("merged 2 of 2 cells"));
        let merged = ResultStore::open(&out).unwrap();
        assert_eq!(merged.records(), &[record(8), record(16)]);

        // The merged bytes are exactly what appending in expansion order
        // produces — the single-process store.
        let reference = shard_with("merge-ref", &[record(8), record(16)]);
        assert_eq!(
            std::fs::read(&out).unwrap(),
            std::fs::read(&reference).unwrap()
        );

        // Merging again over the existing output is the identity (the
        // output participates as a source, its records deduplicate).
        let again = ResultStore::merge(&spec, &out, &[&a, &b]).unwrap();
        assert_eq!(again.merged, 2);
        assert_eq!(again.duplicates, 2);
        assert_eq!(
            std::fs::read(&out).unwrap(),
            std::fs::read(&reference).unwrap()
        );
        for p in [a, b, out, reference] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn merge_deduplicates_identical_overlapping_records() {
        // A cell re-assigned after a worker crash lands in both shards with
        // byte-identical records; the union keeps one copy.
        let a = shard_with("merge-dup-a", &[record(8), record(16)]);
        let b = shard_with("merge-dup-b", &[record(16)]);
        let out = temp_path("merge-dup-out");
        let report = ResultStore::merge(&campaign_over(&[8, 16]), &out, &[&a, &b]).unwrap();
        assert_eq!(report.merged, 2);
        assert_eq!(report.duplicates, 1);
        assert_eq!(
            ResultStore::open(&out).unwrap().records(),
            &[record(8), record(16)]
        );
        for p in [a, b, out] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn merge_refuses_conflicting_records_for_one_key() {
        // Same cell (so the key-integrity check passes) but different
        // measurement bytes: deterministic inputs can never produce this, so
        // the merge must refuse rather than pick a side.
        let a = shard_with("merge-conflict-a", &[record(8)]);
        let b = shard_with("merge-conflict-b", &[record(8)]);
        let text = std::fs::read_to_string(&b).unwrap();
        let tampered = text.replace("\"completion_rate\":1.0", "\"completion_rate\":0.67");
        assert_ne!(text, tampered);
        std::fs::write(&b, tampered).unwrap();

        let out = temp_path("merge-conflict-out");
        let err = ResultStore::merge(&campaign_over(&[8]), &out, &[&a, &b]).unwrap_err();
        assert!(err.to_string().contains("conflicting records"), "{err}");
        assert!(!out.exists(), "a refused merge must not create the output");
        for p in [a, b] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn merge_tolerates_a_torn_tail_in_one_shard() {
        // A worker killed mid-append leaves a torn final line in its shard;
        // the merge treats it like any killed-run store: the intact prefix
        // merges, the torn cell counts as missing.
        let a = shard_with("merge-torn-a", &[record(8)]);
        let b = shard_with("merge-torn-b", &[record(16), record(32)]);
        let full = std::fs::read_to_string(&b).unwrap();
        std::fs::write(&b, &full[..full.len() - 17]).unwrap();

        let out = temp_path("merge-torn-out");
        let report = ResultStore::merge(&campaign_over(&[8, 16, 32]), &out, &[&a, &b]).unwrap();
        assert_eq!(report.merged, 2);
        assert_eq!(report.missing, 1, "the torn record is simply unmeasured");
        assert_eq!(
            ResultStore::open(&out).unwrap().records(),
            &[record(8), record(16)]
        );
        for p in [a, b, out] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn merge_with_no_inputs_is_a_usage_error() {
        let out = temp_path("merge-empty-out");
        let inputs: [&Path; 0] = [];
        let err = ResultStore::merge(&campaign_over(&[8]), &out, &inputs).unwrap_err();
        assert!(err.to_string().contains("at least one input"), "{err}");
        assert!(!out.exists());
    }

    #[test]
    fn merge_requires_every_input_to_exist() {
        // `open` would create a missing shard as an empty store — a typo'd
        // path must fail loudly instead of merging nothing.
        let a = shard_with("merge-missing-a", &[record(8)]);
        let ghost = temp_path("merge-missing-ghost");
        let out = temp_path("merge-missing-out");
        let err = ResultStore::merge(&campaign_over(&[8]), &out, &[&a, &ghost]).unwrap_err();
        assert!(err.to_string().contains("does not exist"), "{err}");
        assert!(!ghost.exists(), "no empty shard left behind");
        assert!(!out.exists());
        let _ = std::fs::remove_file(a);
    }

    #[test]
    fn merge_drops_stale_records_and_leaves_inputs_alone() {
        // Records whose keys left the expansion are dropped from the output
        // (like compact) but the input shards themselves are never rewritten.
        let a = shard_with("merge-stale-a", &[record(64), record(8)]);
        let before = std::fs::read(&a).unwrap();
        let out = temp_path("merge-stale-out");
        let report = ResultStore::merge(&campaign_over(&[8]), &out, &[&a]).unwrap();
        assert_eq!(report.merged, 1);
        assert_eq!(report.stale, 1);
        assert_eq!(ResultStore::open(&out).unwrap().records(), &[record(8)]);
        assert_eq!(std::fs::read(&a).unwrap(), before, "inputs are read-only");
        for p in [a, out] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn edited_records_are_rejected_by_the_key_check() {
        let path = temp_path("edited");
        {
            let mut store = ResultStore::open(&path).unwrap();
            store.append(record(8)).unwrap();
            store.append(record(16)).unwrap();
        }
        // Tamper with the first record's cell but keep its stored key.
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replacen("\"n\":8", "\"n\":12", 1);
        assert_ne!(text, tampered);
        std::fs::write(&path, tampered).unwrap();
        assert!(ResultStore::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
