//! Integration tests for the campaign engine's durability story: a campaign
//! killed mid-run (truncated JSONL store, including a half-written last
//! line) resumes to a store byte-for-byte identical to an uninterrupted run,
//! reusing exactly the per-trial seeds a fresh run would use.

use std::path::PathBuf;

use dradio_campaign::{
    CampaignRunner, CampaignSpec, ResultStore, RoundsRule, SweepGroup, TrialPolicy,
};
use dradio_core::algorithms::GlobalAlgorithm;
use dradio_scenario::{AdversarySpec, ProblemSpec, ScenarioRunner, TopologySpec};

fn campaign() -> CampaignSpec {
    CampaignSpec::named("resume-test")
        .seed(21)
        .trials(TrialPolicy::Fixed(3))
        .group(
            SweepGroup::product(
                vec![
                    TopologySpec::Clique { n: 8 },
                    TopologySpec::Clique { n: 12 },
                    TopologySpec::DualClique { n: 8 },
                ],
                vec![
                    GlobalAlgorithm::Bgi.into(),
                    GlobalAlgorithm::Permuted.into(),
                ],
                vec![AdversarySpec::StaticNone, AdversarySpec::Iid { p: 0.5 }],
                vec![ProblemSpec::GlobalFrom(0)],
            )
            .rounds(RoundsRule::Fixed(20_000)),
        )
}

fn temp_store(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "dradio-campaign-{tag}-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

fn run_to_file(spec: &CampaignSpec, path: &PathBuf) -> ResultStore {
    let mut store = ResultStore::open(path).expect("store opens");
    CampaignRunner::new(spec)
        .run(&mut store)
        .expect("campaign runs");
    store
}

/// The headline resume guarantee: interrupt after a prefix of cells — with
/// the final record torn mid-line, as a kill during a write would leave it —
/// and the resumed store equals the uninterrupted store byte for byte.
#[test]
fn killed_campaign_resumes_to_an_identical_store() {
    let spec = campaign();

    // Reference: one uninterrupted run.
    let full_path = temp_store("full");
    run_to_file(&spec, &full_path);
    let uninterrupted = std::fs::read(&full_path).expect("store exists");
    assert!(!uninterrupted.is_empty());

    // "Kill" the campaign at several points: keep k complete records plus a
    // half-written line of record k+1, then resume.
    let text = String::from_utf8(uninterrupted.clone()).expect("store is utf-8");
    let line_starts: Vec<usize> = std::iter::once(0)
        .chain(text.match_indices('\n').map(|(i, _)| i + 1))
        .collect();
    let total = text.lines().count();
    assert_eq!(total, spec.expand().unwrap().len());

    for keep in [0usize, 1, total / 2, total - 1] {
        let partial_path = temp_store(&format!("partial-{keep}"));
        // Prefix of `keep` records + roughly half of the next line.
        let next_line_end = line_starts.get(keep + 1).copied().unwrap_or(text.len());
        let torn_cut = line_starts[keep] + (next_line_end - line_starts[keep]) / 2;
        std::fs::write(&partial_path, &text.as_bytes()[..torn_cut]).unwrap();

        let mut store = ResultStore::open(&partial_path).expect("torn store opens");
        assert_eq!(store.len(), keep, "torn tail discarded");
        let report = CampaignRunner::new(&spec)
            .run(&mut store)
            .expect("resume runs");
        assert_eq!(report.skipped, keep);
        assert_eq!(report.executed, total - keep);

        let resumed = std::fs::read(&partial_path).expect("resumed store exists");
        assert_eq!(
            resumed, uninterrupted,
            "resume after {keep} cells diverged from the uninterrupted store"
        );
        let _ = std::fs::remove_file(&partial_path);
    }
    let _ = std::fs::remove_file(&full_path);
}

/// Resumed cells run with exactly the per-trial seeds a fresh run derives:
/// the store persists only the cell spec, so this is the trial-seed
/// derivation contract documented in `dradio_scenario::runner` at work.
#[test]
fn resumed_cells_reuse_the_fresh_runs_trial_seeds() {
    let spec = campaign();
    let cells = spec.expand().unwrap();

    // The store round-trips every cell spec through JSON; the rebuilt
    // scenario must derive the same seeds trial for trial.
    let path = temp_store("seeds");
    run_to_file(&spec, &path);
    let store = ResultStore::open(&path).expect("store reopens");
    assert_eq!(store.len(), cells.len());

    for (record, cell) in store.records().iter().zip(&cells) {
        let fresh = cell.scenario.clone().build().expect("fresh cell builds");
        let resumed = record
            .cell
            .scenario
            .clone()
            .build()
            .expect("stored cell rebuilds");
        let fresh_runner = ScenarioRunner::new(&fresh);
        let resumed_runner = ScenarioRunner::new(&resumed);
        for t in 0..record.trials_run {
            assert_eq!(
                fresh_runner.trial_seed(t),
                resumed_runner.trial_seed(t),
                "trial {t} of {} reseeded differently after the store round trip",
                record.cell.label(),
            );
        }
        // And the measurement a resumed run would produce is the stored one.
        let remeasured = resumed.run_trials(record.trials_run).unwrap();
        assert_eq!(remeasured, record.measurement);
    }
    let _ = std::fs::remove_file(&path);
}

/// A resume with nothing missing rewrites nothing: the bytes on disk do not
/// change, and the report says zero executed.
#[test]
fn resume_of_a_complete_store_is_a_byte_level_noop() {
    let spec = campaign();
    let path = temp_store("noop");
    run_to_file(&spec, &path);
    let before = std::fs::read(&path).unwrap();

    let mut store = ResultStore::open(&path).unwrap();
    let report = CampaignRunner::new(&spec).run(&mut store).unwrap();
    assert_eq!(report.executed, 0);
    assert_eq!(report.skipped, report.total);
    assert_eq!(std::fs::read(&path).unwrap(), before);
    let _ = std::fs::remove_file(&path);
}
