//! Property tests for campaign grid expansion: the cell list is always
//! duplicate-free and order-stable, whatever the axes hold.

use dradio_campaign::{CampaignSpec, RoundsRule, SweepGroup, TrialPolicy};
use dradio_core::algorithms::{GlobalAlgorithm, LocalAlgorithm};
use dradio_scenario::{AdversarySpec, AlgorithmSpec, ProblemSpec, TopologySpec};
use proptest::prelude::*;

fn topology_strategy() -> impl Strategy<Value = TopologySpec> {
    prop_oneof![
        (4usize..64).prop_map(|n| TopologySpec::Clique { n }),
        (2usize..32).prop_map(|n| TopologySpec::DualClique { n: 2 * n }),
        (2usize..8).prop_map(|k| TopologySpec::Bracelet { k }),
        (2usize..64).prop_map(|n| TopologySpec::Line { n }),
        (2usize..64).prop_map(|n| TopologySpec::Star { n }),
        ((1usize..6), (1usize..6)).prop_map(|(cliques, clique_size)| TopologySpec::LineOfCliques {
            cliques,
            clique_size
        }),
    ]
}

fn algorithm_strategy() -> impl Strategy<Value = AlgorithmSpec> {
    prop_oneof![
        Just(AlgorithmSpec::Global(GlobalAlgorithm::Bgi)),
        Just(AlgorithmSpec::Global(GlobalAlgorithm::Permuted)),
        Just(AlgorithmSpec::Global(GlobalAlgorithm::RoundRobin)),
        Just(AlgorithmSpec::Local(LocalAlgorithm::StaticDecay)),
        Just(AlgorithmSpec::Local(LocalAlgorithm::Uniform)),
    ]
}

fn adversary_strategy() -> impl Strategy<Value = AdversarySpec> {
    prop_oneof![
        Just(AdversarySpec::StaticNone),
        Just(AdversarySpec::StaticAll),
        (0.05f64..0.95).prop_map(|p| AdversarySpec::Iid { p }),
        Just(AdversarySpec::Omniscient),
    ]
}

fn problem_strategy() -> impl Strategy<Value = ProblemSpec> {
    prop_oneof![
        (0usize..4).prop_map(ProblemSpec::GlobalFrom),
        ((1usize..5), (0u64..100))
            .prop_map(|(count, seed)| ProblemSpec::LocalRandom { count, seed }),
    ]
}

fn group_strategy() -> impl Strategy<Value = SweepGroup> {
    (
        proptest::collection::vec(topology_strategy(), 1..4),
        proptest::collection::vec(algorithm_strategy(), 1..4),
        (
            proptest::collection::vec(adversary_strategy(), 1..3),
            proptest::collection::vec(problem_strategy(), 1..3),
            0u64..1000,
        ),
    )
        .prop_map(|(topologies, algorithms, (adversaries, problems, seed))| {
            SweepGroup::product(topologies, algorithms, adversaries, problems)
                .seed(seed)
                .rounds(RoundsRule::PerNode {
                    per_node: 50,
                    base: 100,
                    min_nodes: 4,
                })
        })
}

fn campaign_strategy() -> impl Strategy<Value = CampaignSpec> {
    (
        proptest::collection::vec(group_strategy(), 1..4),
        0u64..1000,
        1usize..8,
    )
        .prop_map(|(groups, seed, trials)| {
            let mut campaign = CampaignSpec::named("prop")
                .seed(seed)
                .trials(TrialPolicy::Fixed(trials));
            for group in groups {
                campaign = campaign.group(group);
            }
            campaign
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Expansion never yields two cells with the same content key — the
    /// property the resume logic relies on (a key identifies one measurement).
    #[test]
    fn expansion_is_duplicate_free(campaign in campaign_strategy()) {
        let cells = campaign.expand().expect("generated campaigns are valid");
        prop_assert!(!cells.is_empty());
        let mut keys: Vec<String> = cells.iter().map(|c| c.key()).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        prop_assert_eq!(keys.len(), before, "duplicate cell keys in expansion");
    }

    /// Expansion is a pure function of the spec: repeated calls (and a
    /// serde round trip of the spec) give the identical cell list in the
    /// identical order.
    #[test]
    fn expansion_is_order_stable(campaign in campaign_strategy()) {
        let first = campaign.expand().expect("valid");
        let second = campaign.expand().expect("valid");
        prop_assert_eq!(&first, &second);
        let json = serde_json::to_string(&campaign).expect("specs serialize");
        let reloaded: CampaignSpec = serde_json::from_str(&json).expect("specs reload");
        let third = reloaded.expand().expect("valid after round trip");
        prop_assert_eq!(&first, &third);
    }

    /// Doubling a campaign's groups adds no cells: duplicates collapse onto
    /// their first occurrence without disturbing the order of the rest.
    #[test]
    fn duplicated_groups_collapse(campaign in campaign_strategy()) {
        let base = campaign.expand().expect("valid");
        let mut doubled = campaign.clone();
        for group in campaign.groups.clone() {
            doubled = doubled.group(group);
        }
        let cells = doubled.expand().expect("valid");
        prop_assert_eq!(&cells, &base);
    }
}
