//! Store backwards compatibility, pinned against **verbatim bytes written by
//! the pre-refactor binary** (the build preceding the typed-metrics
//! pipeline: no `StopRule`, no `curve` flag, no `contention` field).
//!
//! The campaign engine's durability story rests on byte-stable stores: a
//! resumed run must reproduce the uninterrupted store byte for byte, across
//! binary versions. These tests pin that a store written by the old binary
//!
//! * **loads** under the new code (keys verify, counts reconstruct),
//! * **reports** the same statistics (rates, summaries, trial counts),
//! * **resumes** byte-identically (the new binary appends exactly the bytes
//!   the old binary would have), and
//! * **re-serializes** every record to its original line.
//!
//! The fixtures were captured by running the pre-refactor `repro` binary on
//! its own `--example-campaign` output (an adaptive sweep) and on a small
//! fixed-trials campaign with a fractional completion rate (exercising the
//! completion-count reconstruction). If any of these tests fails, the store
//! format has drifted — bump a format version rather than editing the
//! fixtures.

use dradio_campaign::{CampaignRunner, CampaignSpec, ResultStore, StopRule, TrialPolicy};

/// `--example-campaign` of the pre-refactor binary (adaptive trial policy,
/// serialized without a `stop` field).
const GOLDEN_CAMPAIGN: &str = r#"{"name":"example-clique-sweep","seed":1,"trials":{"Adaptive":{"min":2,"max":8,"relative_width":0.2}},"groups":[{"topologies":[{"DualClique":{"n":16}},{"DualClique":{"n":32}}],"algorithms":[{"Global":"Bgi"},{"Global":"Permuted"}],"adversaries":[{"Iid":{"p":0.5}}],"problems":[{"GlobalFrom":0}],"seed":null,"trials":null,"rounds":{"PerNode":{"per_node":60,"base":0,"min_nodes":16}},"collision_detection":false,"record_mode":"None"}]}"#;

/// The complete store the pre-refactor binary wrote for
/// [`GOLDEN_CAMPAIGN`], byte for byte.
const GOLDEN_STORE: &str = concat!(
    r#"{"key":"126c8e1cc5cc097c","cell":{"scenario":{"topology":{"DualClique":{"n":16}},"algorithm":{"Global":"Bgi"},"adversary":{"Iid":{"p":0.5}},"problem":{"GlobalFrom":0},"seed":1,"max_rounds":960,"collision_detection":false},"trials":{"Adaptive":{"min":2,"max":8,"relative_width":0.2}},"record_mode":"None"},"trials_run":8,"measurement":{"rounds":{"count":8,"mean":9.25,"std_dev":6.08863109175031,"min":2.0,"max":19.0,"median":9.0,"p95":19.0},"completion_rate":1.0,"mean_collisions":29.25}}"#,
    "\n",
    r#"{"key":"a7a5e400c1b0ef0a","cell":{"scenario":{"topology":{"DualClique":{"n":16}},"algorithm":{"Global":"Permuted"},"adversary":{"Iid":{"p":0.5}},"problem":{"GlobalFrom":0},"seed":1,"max_rounds":960,"collision_detection":false},"trials":{"Adaptive":{"min":2,"max":8,"relative_width":0.2}},"record_mode":"None"},"trials_run":2,"measurement":{"rounds":{"count":2,"mean":5.5,"std_dev":0.7071067811865476,"min":5.0,"max":6.0,"median":5.5,"p95":6.0},"completion_rate":1.0,"mean_collisions":8.5}}"#,
    "\n",
    r#"{"key":"e9920d077e512d29","cell":{"scenario":{"topology":{"DualClique":{"n":32}},"algorithm":{"Global":"Bgi"},"adversary":{"Iid":{"p":0.5}},"problem":{"GlobalFrom":0},"seed":1,"max_rounds":1920,"collision_detection":false},"trials":{"Adaptive":{"min":2,"max":8,"relative_width":0.2}},"record_mode":"None"},"trials_run":8,"measurement":{"rounds":{"count":8,"mean":10.75,"std_dev":6.670832032063167,"min":4.0,"max":24.0,"median":10.0,"p95":24.0},"completion_rate":1.0,"mean_collisions":127.0}}"#,
    "\n",
    r#"{"key":"4b8885fac942a1c3","cell":{"scenario":{"topology":{"DualClique":{"n":32}},"algorithm":{"Global":"Permuted"},"adversary":{"Iid":{"p":0.5}},"problem":{"GlobalFrom":0},"seed":1,"max_rounds":1920,"collision_detection":false},"trials":{"Adaptive":{"min":2,"max":8,"relative_width":0.2}},"record_mode":"None"},"trials_run":8,"measurement":{"rounds":{"count":8,"mean":14.75,"std_dev":7.025463889106744,"min":9.0,"max":31.0,"median":12.0,"p95":31.0},"completion_rate":1.0,"mean_collisions":137.25}}"#,
    "\n",
);

/// A pre-refactor store line with a fractional completion rate (2 of 3
/// trials completed), exercising the rate → integer-count reconstruction.
const GOLDEN_FRACTIONAL_CAMPAIGN: &str = r#"{"name":"golden-fixed","seed":1,"trials":{"Fixed":3},"groups":[{"topologies":[{"DualClique":{"n":16}}],"algorithms":[{"Global":"Bgi"}],"adversaries":[{"Iid":{"p":0.5}}],"problems":[{"GlobalFrom":0}],"seed":null,"trials":null,"rounds":{"Fixed":5},"collision_detection":false,"record_mode":"None"}]}"#;

const GOLDEN_FRACTIONAL_STORE: &str = concat!(
    r#"{"key":"ff4ffd889951a8fa","cell":{"scenario":{"topology":{"DualClique":{"n":16}},"algorithm":{"Global":"Bgi"},"adversary":{"Iid":{"p":0.5}},"problem":{"GlobalFrom":0},"seed":1,"max_rounds":5,"collision_detection":false},"trials":{"Fixed":3},"record_mode":"None"},"trials_run":3,"measurement":{"rounds":{"count":3,"mean":3.6666666666666665,"std_dev":1.5275252316519465,"min":2.0,"max":5.0,"median":4.0,"p95":5.0},"completion_rate":0.6666666666666666,"mean_collisions":10.333333333333334}}"#,
    "\n",
);

fn temp_path(tag: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "dradio-backcompat-{tag}-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn old_store_loads_and_reserializes_byte_identically() {
    let path = temp_path("load");
    std::fs::write(&path, GOLDEN_STORE).unwrap();
    let store = ResultStore::open(&path).unwrap();
    assert_eq!(store.len(), 4, "every old record loads");
    // Loading a clean old store must not rewrite a single byte.
    assert_eq!(std::fs::read_to_string(&path).unwrap(), GOLDEN_STORE);

    // Each record re-serializes to its original line: the new measurement
    // shape (integer completion counts, optional contention) is invisible
    // for curve-less records.
    for (record, line) in store.records().iter().zip(GOLDEN_STORE.lines()) {
        assert_eq!(
            serde_json::to_string(record).unwrap(),
            line,
            "record {} drifted from its pre-refactor bytes",
            record.key
        );
    }

    // The loaded records report the same statistics the old binary printed,
    // with the completion counts reconstructed exactly.
    let first = &store.records()[0];
    assert_eq!(first.trials_run, 8);
    assert_eq!(first.measurement.rounds.count, 8);
    assert_eq!(first.measurement.completion.completed, 8);
    assert_eq!(first.measurement.completion.trials, 8);
    assert_eq!(first.measurement.completion_rate(), 1.0);
    assert!(first.measurement.contention.is_none());
    // The old adaptive policy deserializes to the default stop rule.
    assert_eq!(
        first.cell.trials,
        TrialPolicy::Adaptive {
            min: 2,
            max: 8,
            relative_width: 0.2,
            stop: StopRule::MeanCostCi,
        }
    );
    assert!(!first.cell.curve);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn old_fractional_completion_rates_reconstruct_exact_counts() {
    let path = temp_path("fraction");
    std::fs::write(&path, GOLDEN_FRACTIONAL_STORE).unwrap();
    let store = ResultStore::open(&path).unwrap();
    let record = &store.records()[0];
    assert_eq!(record.measurement.completion.completed, 2);
    assert_eq!(record.measurement.completion.trials, 3);
    // 2/3 re-divides to the identical f64, so the line is byte-stable.
    assert_eq!(
        serde_json::to_string(record).unwrap(),
        GOLDEN_FRACTIONAL_STORE.trim_end_matches('\n')
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn old_cell_keys_are_unchanged_under_the_new_key_function() {
    // CellSpec::key() over the old cells must reproduce the old hashes —
    // otherwise every resume would re-measure (and duplicate) everything.
    let path = temp_path("keys");
    std::fs::write(&path, GOLDEN_STORE).unwrap();
    let store = ResultStore::open(&path).unwrap();
    let expected = [
        "126c8e1cc5cc097c",
        "a7a5e400c1b0ef0a",
        "e9920d077e512d29",
        "4b8885fac942a1c3",
    ];
    for (record, key) in store.records().iter().zip(expected) {
        assert_eq!(record.key, key);
        assert_eq!(record.cell.key(), key, "key function drifted");
    }
    // And the spec's own expansion still produces exactly these cells.
    let spec: CampaignSpec = serde_json::from_str(GOLDEN_CAMPAIGN).unwrap();
    let cells = spec.expand().unwrap();
    assert_eq!(cells.len(), 4);
    for (cell, key) in cells.iter().zip(expected) {
        assert_eq!(cell.key(), key, "{}", cell.label());
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn old_store_resumes_byte_identically_under_the_new_binary() {
    // A partial old store — the first two records — resumed by the new
    // code must complete to the old binary's full store byte for byte:
    // same keys, same seeds, same measurements, same serialization.
    let path = temp_path("resume");
    let two_lines: String = GOLDEN_STORE
        .lines()
        .take(2)
        .flat_map(|l| [l, "\n"])
        .collect();
    std::fs::write(&path, &two_lines).unwrap();

    let spec: CampaignSpec = serde_json::from_str(GOLDEN_CAMPAIGN).unwrap();
    let mut store = ResultStore::open(&path).unwrap();
    let report = CampaignRunner::new(&spec).run(&mut store).unwrap();
    assert_eq!(report.skipped, 2, "the old records are recognised");
    assert_eq!(report.executed, 2, "only the missing suffix runs");
    drop(store);
    assert_eq!(
        std::fs::read_to_string(&path).unwrap(),
        GOLDEN_STORE,
        "resume under the new binary must reproduce the old store's bytes"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn fresh_runs_of_old_campaigns_reproduce_old_stores() {
    // The strongest form: from an empty store, the new binary re-measures
    // the old campaign to the exact bytes the old binary wrote.
    for (campaign, golden, tag) in [
        (GOLDEN_CAMPAIGN, GOLDEN_STORE, "fresh-adaptive"),
        (
            GOLDEN_FRACTIONAL_CAMPAIGN,
            GOLDEN_FRACTIONAL_STORE,
            "fresh-fixed",
        ),
    ] {
        let path = temp_path(tag);
        let spec: CampaignSpec = serde_json::from_str(campaign).unwrap();
        let mut store = ResultStore::open(&path).unwrap();
        CampaignRunner::new(&spec).run(&mut store).unwrap();
        drop(store);
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            golden,
            "{tag}: the new binary's measurements drifted from the old ones"
        );
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn compacting_an_old_store_is_the_identity() {
    // Every old record is in the old spec's expansion, so compaction keeps
    // all of them — byte for byte, in the same order.
    let path = temp_path("compact-old");
    std::fs::write(&path, GOLDEN_STORE).unwrap();
    let spec: CampaignSpec = serde_json::from_str(GOLDEN_CAMPAIGN).unwrap();
    let report = ResultStore::compact(&spec, &path).unwrap();
    assert_eq!(report.kept, 4);
    assert_eq!(report.dropped, 0);
    assert_eq!(report.missing, 0);
    assert_eq!(std::fs::read_to_string(&path).unwrap(), GOLDEN_STORE);
    let _ = std::fs::remove_file(&path);
}
