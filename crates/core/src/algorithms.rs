//! A small registry of the implemented broadcast algorithms.
//!
//! The experiment harness iterates over these enums to build its comparison
//! tables; each variant knows how to construct the [`ProcessFactory`] for a
//! given network size and maximum degree.

use dradio_sim::ProcessFactory;

use crate::global::{BgiGlobalBroadcast, PermutedGlobalBroadcast, RoundRobinGlobalBroadcast};
use crate::local::{
    GeoLocalBroadcast, RoundRobinLocalBroadcast, StaticLocalBroadcast, UniformLocalBroadcast,
};

/// The global broadcast algorithms implemented by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GlobalAlgorithm {
    /// Bar-Yehuda–Goldreich–Itai decay broadcast (static-model baseline).
    Bgi,
    /// The paper's permuted-decay broadcast for the oblivious dual graph
    /// model (Theorem 4.1).
    Permuted,
    /// Deterministic round robin (footnote 5 fallback).
    RoundRobin,
}

impl GlobalAlgorithm {
    /// All global algorithms, in presentation order.
    pub fn all() -> [GlobalAlgorithm; 3] {
        [
            GlobalAlgorithm::Bgi,
            GlobalAlgorithm::Permuted,
            GlobalAlgorithm::RoundRobin,
        ]
    }

    /// Short name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            GlobalAlgorithm::Bgi => "bgi-decay",
            GlobalAlgorithm::Permuted => "permuted-decay",
            GlobalAlgorithm::RoundRobin => "round-robin",
        }
    }

    /// Builds the process factory for a network with `n` nodes and maximum
    /// degree `max_degree`.
    pub fn factory(&self, n: usize, max_degree: usize) -> ProcessFactory {
        let _ = max_degree; // global algorithms are parameterized by n only
        match self {
            GlobalAlgorithm::Bgi => BgiGlobalBroadcast::factory(n),
            GlobalAlgorithm::Permuted => PermutedGlobalBroadcast::factory(n),
            GlobalAlgorithm::RoundRobin => RoundRobinGlobalBroadcast::factory(n),
        }
    }
}

serde::serde_enum!(GlobalAlgorithm {
    Bgi,
    Permuted,
    RoundRobin
});

impl std::fmt::Display for GlobalAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The local broadcast algorithms implemented by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocalAlgorithm {
    /// Decay over `log Δ` levels (static-model baseline).
    StaticDecay,
    /// Uniform probability `1/Δ` baseline.
    Uniform,
    /// Deterministic round robin (footnote 4 fallback).
    RoundRobin,
    /// The paper's geographic seed-coordinated algorithm (Theorem 4.6).
    Geo,
}

impl LocalAlgorithm {
    /// All local algorithms, in presentation order.
    pub fn all() -> [LocalAlgorithm; 4] {
        [
            LocalAlgorithm::StaticDecay,
            LocalAlgorithm::Uniform,
            LocalAlgorithm::RoundRobin,
            LocalAlgorithm::Geo,
        ]
    }

    /// Short name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            LocalAlgorithm::StaticDecay => "static-decay",
            LocalAlgorithm::Uniform => "uniform",
            LocalAlgorithm::RoundRobin => "round-robin",
            LocalAlgorithm::Geo => "geo-seeded",
        }
    }

    /// Builds the process factory for a network with `n` nodes and maximum
    /// degree `max_degree`.
    pub fn factory(&self, n: usize, max_degree: usize) -> ProcessFactory {
        match self {
            LocalAlgorithm::StaticDecay => StaticLocalBroadcast::factory(n, max_degree),
            LocalAlgorithm::Uniform => UniformLocalBroadcast::factory(n, max_degree),
            LocalAlgorithm::RoundRobin => RoundRobinLocalBroadcast::factory(n),
            LocalAlgorithm::Geo => GeoLocalBroadcast::factory(n, max_degree),
        }
    }
}

serde::serde_enum!(LocalAlgorithm {
    StaticDecay,
    Uniform,
    RoundRobin,
    Geo
});

impl std::fmt::Display for LocalAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{GlobalBroadcastProblem, LocalBroadcastProblem};
    use dradio_graphs::{topology, NodeId};
    use dradio_sim::{SimConfig, Simulator, StaticLinks};

    #[test]
    fn algorithm_specs_round_trip_and_keep_their_wire_names() {
        // Pinned wire shape (serde-stability registry): unit variants
        // serialize as bare strings of their Rust names. Campaign stores
        // embed these — renaming a variant is a format break.
        use serde::{Deserialize, Serialize, Value};
        let global_wire = ["Bgi", "Permuted", "RoundRobin"];
        for (algorithm, wire) in GlobalAlgorithm::all().iter().zip(global_wire) {
            assert_eq!(algorithm.to_value(), Value::Str(wire.into()));
            assert_eq!(
                GlobalAlgorithm::from_value(&algorithm.to_value()),
                Ok(*algorithm)
            );
        }
        let local_wire = ["StaticDecay", "Uniform", "RoundRobin", "Geo"];
        for (algorithm, wire) in LocalAlgorithm::all().iter().zip(local_wire) {
            assert_eq!(algorithm.to_value(), Value::Str(wire.into()));
            assert_eq!(
                LocalAlgorithm::from_value(&algorithm.to_value()),
                Ok(*algorithm)
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let global: Vec<&str> = GlobalAlgorithm::all().iter().map(|a| a.name()).collect();
        let mut dedup = global.clone();
        dedup.dedup();
        assert_eq!(global, dedup);
        let local: Vec<&str> = LocalAlgorithm::all().iter().map(|a| a.name()).collect();
        let mut dedup = local.clone();
        dedup.dedup();
        assert_eq!(local, dedup);
        assert_eq!(GlobalAlgorithm::Permuted.to_string(), "permuted-decay");
        assert_eq!(LocalAlgorithm::Geo.to_string(), "geo-seeded");
    }

    #[test]
    fn every_global_algorithm_completes_on_a_static_clique() {
        let n = 16;
        let dual = topology::clique(n);
        let problem = GlobalBroadcastProblem::new(NodeId::new(0));
        for algorithm in GlobalAlgorithm::all() {
            let outcome = Simulator::new(
                dual.clone(),
                algorithm.factory(n, dual.max_degree()),
                problem.assignment(n),
                Box::new(StaticLinks::none()),
                SimConfig::default().with_seed(3).with_max_rounds(5_000),
            )
            .unwrap()
            .run(problem.stop_condition());
            assert!(outcome.completed, "{algorithm} failed on the static clique");
            assert!(
                problem.verify(&dual, &outcome.history),
                "{algorithm} produced a bad history"
            );
        }
    }

    #[test]
    fn every_local_algorithm_completes_on_a_static_star() {
        let n = 16;
        let dual = topology::star(n).unwrap();
        let broadcasters: Vec<NodeId> = (1..n).map(NodeId::new).collect();
        let problem = LocalBroadcastProblem::new(broadcasters.clone());
        for algorithm in LocalAlgorithm::all() {
            let outcome = Simulator::new(
                dual.clone(),
                algorithm.factory(n, dual.max_degree()),
                problem.assignment(n),
                Box::new(StaticLinks::none()),
                SimConfig::default().with_seed(5).with_max_rounds(20_000),
            )
            .unwrap()
            .run(problem.stop_condition(&dual));
            assert!(outcome.completed, "{algorithm} failed on the static star");
            assert!(
                problem.verify(&dual, &outcome.history),
                "{algorithm} produced a bad history"
            );
        }
    }
}
