//! The Decay and Permuted Decay subroutines.
//!
//! *Decay* (Bar-Yehuda, Goldreich, Itai) has message holders cycle through the
//! broadcast probabilities `1/2, 1/4, …, 1/n` in a fixed order: for every
//! receiver, one of these probabilities matches the number of transmitting
//! neighbors and delivers with constant probability.
//!
//! *Permuted Decay* (Section 4.1 of the paper) draws the probability level for
//! each round from a string of shared random bits generated **after** the
//! execution begins. An oblivious adversary therefore cannot predict which
//! level is used when, which defeats the schedule-aware attack that breaks
//! plain Decay in the dual graph model. All nodes holding the same bit string
//! select the same level in the same round, preserving the coordination that
//! the decay analysis needs (Lemma 4.2).

use dradio_sim::process::log2_ceil;
use dradio_sim::BitString;

/// The fixed-schedule Decay probability sequence over `levels` probability
/// levels (`levels = ⌈log₂ n⌉` for a network of size `n`).
///
/// # Example
///
/// ```
/// use dradio_core::decay::DecaySchedule;
/// let d = DecaySchedule::new(3);
/// assert_eq!(d.level(0), 1);
/// assert_eq!(d.level(1), 2);
/// assert_eq!(d.level(2), 3);
/// assert_eq!(d.level(3), 1); // cycles
/// assert!((d.probability(0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecaySchedule {
    levels: usize,
}

impl DecaySchedule {
    /// Creates a schedule with the given number of probability levels
    /// (minimum 1).
    pub fn new(levels: usize) -> Self {
        DecaySchedule {
            levels: levels.max(1),
        }
    }

    /// Creates the schedule appropriate for a network of `n` nodes
    /// (`⌈log₂ n⌉` levels).
    pub fn for_network(n: usize) -> Self {
        DecaySchedule::new(log2_ceil(n).max(1))
    }

    /// Number of probability levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The level used at `step` (1-based: level `i` means probability
    /// `2^{-i}`), cycling with period `levels`.
    pub fn level(&self, step: usize) -> usize {
        (step % self.levels) + 1
    }

    /// The broadcast probability used at `step`.
    pub fn probability(&self, step: usize) -> f64 {
        level_probability(self.level(step))
    }
}

/// The permuted Decay schedule: levels are selected from a shared random bit
/// string instead of cycling in order.
///
/// The same `(bits, step)` pair always yields the same level, so every node
/// holding the same bits is coordinated; an adversary that has not seen the
/// bits learns nothing about which level is used when.
///
/// # Example
///
/// ```
/// use dradio_core::decay::PermutedDecaySchedule;
/// use dradio_sim::BitString;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let bits = BitString::random(256, &mut ChaCha8Rng::seed_from_u64(5));
/// let d = PermutedDecaySchedule::new(4);
/// let level = d.level(&bits, 7);
/// assert!((1..=4).contains(&level));
/// // Deterministic given the same bits and step.
/// assert_eq!(level, d.level(&bits, 7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PermutedDecaySchedule {
    levels: usize,
    bits_per_step: usize,
}

impl PermutedDecaySchedule {
    /// Creates a permuted schedule over `levels` probability levels.
    pub fn new(levels: usize) -> Self {
        let levels = levels.max(1);
        // The paper uses `log log n` fresh bits per round; we round up so the
        // modulo bias over `levels` values is at most a factor 2 (and zero
        // when `levels` is a power of two).
        let bits_per_step = log2_ceil(levels).max(1);
        PermutedDecaySchedule {
            levels,
            bits_per_step,
        }
    }

    /// Creates the schedule appropriate for a network of `n` nodes.
    pub fn for_network(n: usize) -> Self {
        PermutedDecaySchedule::new(log2_ceil(n).max(1))
    }

    /// Number of probability levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Number of permutation bits consumed per step.
    pub fn bits_per_step(&self) -> usize {
        self.bits_per_step
    }

    /// Number of permutation bits needed for `steps` consecutive steps
    /// without wrapping.
    pub fn bits_needed(&self, steps: usize) -> usize {
        steps * self.bits_per_step
    }

    /// The level (1-based) used at `step` given the shared permutation
    /// `bits`.
    ///
    /// If the bit string is shorter than the schedule requires the cursor
    /// wraps around; with the paper's parameters the string is always long
    /// enough, but wrapping keeps long simulated executions well defined.
    /// An empty bit string degenerates to the fixed schedule.
    pub fn level(&self, bits: &BitString, step: usize) -> usize {
        if bits.is_empty() || bits.len() < self.bits_per_step {
            return (step % self.levels) + 1;
        }
        let positions = bits.len() - self.bits_per_step + 1;
        let offset = (step * self.bits_per_step) % positions;
        let raw = bits
            .value(offset, self.bits_per_step)
            // lint: allow(D4) -- offset is reduced mod positions on the line above
            .expect("offset chosen within bounds");
        (raw % self.levels as u64) as usize + 1
    }

    /// The broadcast probability used at `step` given the shared `bits`.
    pub fn probability(&self, bits: &BitString, step: usize) -> f64 {
        level_probability(self.level(bits, step))
    }
}

/// Probability associated with a decay level: `2^{-level}`.
pub fn level_probability(level: usize) -> f64 {
    0.5f64.powi(level.min(1024) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn fixed_schedule_cycles_through_levels() {
        let d = DecaySchedule::new(4);
        let levels: Vec<usize> = (0..8).map(|s| d.level(s)).collect();
        assert_eq!(levels, vec![1, 2, 3, 4, 1, 2, 3, 4]);
        assert!((d.probability(3) - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn schedule_sizes_follow_network_size() {
        assert_eq!(DecaySchedule::for_network(1024).levels(), 10);
        assert_eq!(DecaySchedule::for_network(1000).levels(), 10);
        assert_eq!(DecaySchedule::for_network(2).levels(), 1);
        assert_eq!(DecaySchedule::for_network(1).levels(), 1);
        assert_eq!(PermutedDecaySchedule::for_network(256).levels(), 8);
    }

    #[test]
    fn zero_levels_clamps_to_one() {
        let d = DecaySchedule::new(0);
        assert_eq!(d.levels(), 1);
        assert_eq!(d.level(5), 1);
        let p = PermutedDecaySchedule::new(0);
        assert_eq!(p.levels(), 1);
    }

    #[test]
    fn level_probability_halves_per_level() {
        assert!((level_probability(1) - 0.5).abs() < 1e-15);
        assert!((level_probability(2) - 0.25).abs() < 1e-15);
        assert!(level_probability(10) > 0.0);
        // Deep levels saturate instead of underflowing to NaN.
        assert!(level_probability(100_000) >= 0.0);
    }

    #[test]
    fn permuted_levels_are_in_range_and_deterministic() {
        let sched = PermutedDecaySchedule::new(8);
        let bits = BitString::random(4096, &mut ChaCha8Rng::seed_from_u64(1));
        for step in 0..500 {
            let level = sched.level(&bits, step);
            assert!((1..=8).contains(&level));
            assert_eq!(level, sched.level(&bits, step));
        }
    }

    #[test]
    fn permuted_levels_are_roughly_uniform() {
        let sched = PermutedDecaySchedule::new(8);
        let bits = BitString::random(1 << 15, &mut ChaCha8Rng::seed_from_u64(2));
        let mut counts = [0usize; 9];
        let steps = 4000;
        for step in 0..steps {
            counts[sched.level(&bits, step)] += 1;
        }
        for (level, &count) in counts.iter().enumerate().skip(1) {
            let share = count as f64 / steps as f64;
            assert!(
                (share - 0.125).abs() < 0.05,
                "level {level} occurs with frequency {share}"
            );
        }
    }

    #[test]
    fn permuted_differs_from_fixed_schedule() {
        // With random bits the permuted order should not equal the fixed
        // cyclic order (this is the whole point of the construction).
        let sched = PermutedDecaySchedule::new(8);
        let fixed = DecaySchedule::new(8);
        let bits = BitString::random(8192, &mut ChaCha8Rng::seed_from_u64(3));
        let differing = (0..200)
            .filter(|&s| sched.level(&bits, s) != fixed.level(s))
            .count();
        assert!(differing > 100, "only {differing} of 200 steps differ");
    }

    #[test]
    fn different_bits_give_different_permutations() {
        let sched = PermutedDecaySchedule::new(8);
        let a = BitString::random(8192, &mut ChaCha8Rng::seed_from_u64(10));
        let b = BitString::random(8192, &mut ChaCha8Rng::seed_from_u64(11));
        let differing = (0..200)
            .filter(|&s| sched.level(&a, s) != sched.level(&b, s))
            .count();
        assert!(differing > 100);
    }

    #[test]
    fn empty_bits_fall_back_to_fixed_schedule() {
        let sched = PermutedDecaySchedule::new(4);
        let empty = BitString::empty();
        for step in 0..12 {
            assert_eq!(sched.level(&empty, step), (step % 4) + 1);
        }
    }

    #[test]
    fn bits_needed_accounts_for_all_steps() {
        let sched = PermutedDecaySchedule::new(8);
        assert_eq!(sched.bits_needed(10), 10 * sched.bits_per_step());
        assert_eq!(sched.bits_per_step(), 3);
    }

    #[test]
    fn short_bit_strings_wrap_without_panicking() {
        let sched = PermutedDecaySchedule::new(8);
        let bits = BitString::random(5, &mut ChaCha8Rng::seed_from_u64(4));
        for step in 0..1000 {
            let level = sched.level(&bits, step);
            assert!((1..=8).contains(&level));
        }
    }
}
