//! The Bar-Yehuda–Goldreich–Itai (BGI) global broadcast algorithm, built on
//! the fixed-schedule Decay subroutine.
//!
//! This is the classic `O(D log n + log² n)` algorithm for the *static*
//! protocol model and the baseline against which the paper's permuted-decay
//! variant is compared. Its fixed probability schedule is exactly what the
//! oblivious dual-graph adversary can exploit (Section 4.1), which is
//! demonstrated by experiment E8.

use std::sync::Arc;

use dradio_sim::sampling::bernoulli;
use dradio_sim::{Action, Feedback, Message, Process, ProcessContext, ProcessFactory, Role, Round};
use rand::RngCore;

use crate::decay::DecaySchedule;
use crate::kinds;

/// Configuration for [`BgiGlobalBroadcast`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BgiConfig {
    /// Number of decay probability levels (defaults to `⌈log₂ n⌉`).
    pub levels: Option<usize>,
    /// Payload attached to the source message.
    pub payload: u64,
}

/// Constructor for the BGI global broadcast algorithm.
///
/// # Example
///
/// ```
/// use dradio_core::global::BgiGlobalBroadcast;
/// let factory = BgiGlobalBroadcast::factory(64);
/// // `factory` builds one process per node when handed to the simulator.
/// let _ = factory;
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BgiGlobalBroadcast;

impl BgiGlobalBroadcast {
    /// Builds a process factory for a network of `n` nodes with default
    /// configuration.
    pub fn factory(n: usize) -> ProcessFactory {
        Self::factory_with(n, BgiConfig::default())
    }

    /// Builds a process factory with an explicit configuration.
    pub fn factory_with(n: usize, config: BgiConfig) -> ProcessFactory {
        let levels = config
            .levels
            .unwrap_or_else(|| DecaySchedule::for_network(n).levels());
        Arc::new(move |ctx: &ProcessContext| {
            Box::new(BgiProcess::new(
                ctx,
                DecaySchedule::new(levels),
                config.payload,
            )) as Box<dyn Process>
        })
    }
}

/// Per-node state of the BGI algorithm.
#[derive(Debug)]
pub struct BgiProcess {
    id: dradio_graphs::NodeId,
    role: Role,
    schedule: DecaySchedule,
    payload: u64,
    message: Option<Message>,
}

impl BgiProcess {
    /// The problem-level role of this node.
    pub fn role(&self) -> Role {
        self.role
    }
}

impl BgiProcess {
    /// Creates the process for one node.
    pub fn new(ctx: &ProcessContext, schedule: DecaySchedule, payload: u64) -> Self {
        BgiProcess {
            id: ctx.id,
            role: ctx.role,
            schedule,
            payload,
            message: None,
        }
    }

    /// The decay schedule in use.
    pub fn schedule(&self) -> DecaySchedule {
        self.schedule
    }
}

impl Process for BgiProcess {
    fn on_start(&mut self, _rng: &mut dyn RngCore) {
        if self.role == Role::Source {
            self.message = Some(Message::plain(self.id, kinds::DATA, self.payload));
        }
    }

    fn on_round(&mut self, round: Round, rng: &mut dyn RngCore) -> Action {
        match &self.message {
            Some(m) if bernoulli(rng, self.schedule.probability(round.index())) => {
                Action::Transmit(m.clone())
            }
            _ => Action::Listen,
        }
    }

    fn on_feedback(&mut self, _round: Round, feedback: &Feedback, _rng: &mut dyn RngCore) {
        if self.message.is_none() {
            if let Some(m) = feedback.message() {
                if m.kind() == kinds::DATA {
                    self.message = Some(m.clone());
                }
            }
        }
    }

    fn transmit_probability(&self, round: Round) -> f64 {
        if self.message.is_some() {
            self.schedule.probability(round.index())
        } else {
            0.0
        }
    }

    fn is_informed(&self) -> bool {
        self.message.is_some()
    }

    fn name(&self) -> &'static str {
        "bgi-decay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::GlobalBroadcastProblem;
    use dradio_graphs::{properties, topology, NodeId};
    use dradio_sim::{SimConfig, Simulator, StaticLinks, StopCondition};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ctx(role: Role, n: usize) -> ProcessContext {
        ProcessContext::new(NodeId::new(0), n, n - 1, role)
    }

    #[test]
    fn source_starts_informed_relays_do_not() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut source = BgiProcess::new(&ctx(Role::Source, 16), DecaySchedule::new(4), 5);
        source.on_start(&mut rng);
        assert!(source.is_informed());

        let mut relay = BgiProcess::new(&ctx(Role::Relay, 16), DecaySchedule::new(4), 5);
        relay.on_start(&mut rng);
        assert!(!relay.is_informed());
        assert_eq!(relay.transmit_probability(Round::ZERO), 0.0);
        assert_eq!(relay.on_round(Round::ZERO, &mut rng), Action::Listen);
    }

    #[test]
    fn relay_adopts_data_message_and_starts_decaying() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut relay = BgiProcess::new(&ctx(Role::Relay, 16), DecaySchedule::new(4), 0);
        relay.on_start(&mut rng);
        let m = Message::plain(NodeId::new(7), kinds::DATA, 3);
        relay.on_feedback(Round::ZERO, &Feedback::Received(m.clone()), &mut rng);
        assert!(relay.is_informed());
        assert!(relay.transmit_probability(Round::new(1)) > 0.0);
        // It forwards the same content it received.
        let mut transmitted = None;
        for r in 1..200 {
            if let Action::Transmit(sent) = relay.on_round(Round::new(r), &mut rng) {
                transmitted = Some(sent);
                break;
            }
        }
        assert_eq!(transmitted, Some(m));
    }

    #[test]
    fn non_data_messages_are_ignored() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut relay = BgiProcess::new(&ctx(Role::Relay, 16), DecaySchedule::new(4), 0);
        let m = Message::plain(NodeId::new(7), kinds::SEED, 3);
        relay.on_feedback(Round::ZERO, &Feedback::Received(m), &mut rng);
        assert!(!relay.is_informed());
    }

    #[test]
    fn transmit_probability_follows_decay_schedule() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut source = BgiProcess::new(&ctx(Role::Source, 16), DecaySchedule::new(4), 0);
        source.on_start(&mut rng);
        assert!((source.transmit_probability(Round::new(0)) - 0.5).abs() < 1e-12);
        assert!((source.transmit_probability(Round::new(1)) - 0.25).abs() < 1e-12);
        assert!((source.transmit_probability(Round::new(4)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn completes_global_broadcast_on_static_clique() {
        let dual = topology::clique(32);
        let problem = GlobalBroadcastProblem::new(NodeId::new(0));
        let outcome = Simulator::new(
            dual.clone(),
            BgiGlobalBroadcast::factory(32),
            problem.assignment(32),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_seed(5).with_max_rounds(5_000),
        )
        .unwrap()
        .run(problem.stop_condition());
        assert!(outcome.completed, "BGI should finish on a static clique");
        assert!(problem.verify(&dual, &outcome.history));
    }

    #[test]
    fn completes_on_multi_hop_static_network() {
        let dual = topology::line_of_cliques(6, 6).unwrap();
        let n = dual.len();
        let d = properties::diameter(dual.g()).unwrap();
        let problem = GlobalBroadcastProblem::new(NodeId::new(0));
        let outcome = Simulator::new(
            dual.clone(),
            BgiGlobalBroadcast::factory(n),
            problem.assignment(n),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_seed(7).with_max_rounds(50_000),
        )
        .unwrap()
        .run(problem.stop_condition());
        assert!(outcome.completed);
        // Crude sanity bound: cost should be far below n*D (the round robin
        // cost) for this size.
        assert!(
            outcome.cost() < n * d,
            "cost {} not better than round robin",
            outcome.cost()
        );
    }

    #[test]
    fn factory_respects_custom_levels() {
        let factory = BgiGlobalBroadcast::factory_with(
            1024,
            BgiConfig {
                levels: Some(3),
                payload: 9,
            },
        );
        let p = factory(&ctx(Role::Source, 1024));
        // The custom level count caps the schedule period at 3.
        assert!(
            (p.transmit_probability(Round::new(3)) - p.transmit_probability(Round::new(0))).abs()
                < 1e-12
        );
    }

    #[test]
    fn never_stops_early_by_itself() {
        // The process has no internal termination: it keeps decaying, which
        // is what the completion-time experiments rely on.
        let dual = topology::clique(8);
        let problem = GlobalBroadcastProblem::new(NodeId::new(0));
        let outcome = Simulator::new(
            dual,
            BgiGlobalBroadcast::factory(8),
            problem.assignment(8),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_seed(1).with_max_rounds(50),
        )
        .unwrap()
        .run(StopCondition::max_rounds());
        assert_eq!(outcome.rounds_executed, 50);
        assert!(outcome.metrics.transmissions > 0);
    }
}
