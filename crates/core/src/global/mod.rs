//! Global broadcast algorithms: a designated source must deliver its message
//! to every node of the network.
//!
//! | Algorithm | Model it targets | Bound |
//! |---|---|---|
//! | [`BgiGlobalBroadcast`] | static protocol model (Fig. 1 row 4) | `O(D log n + log² n)` |
//! | [`PermutedGlobalBroadcast`] | oblivious dual graph model (Thm 4.1) | `O(D log n + log² n)` |
//! | [`RoundRobinGlobalBroadcast`] | any model (footnote 5 fallback) | `O(n · D)` deterministic |

mod bgi;
mod permuted;
mod round_robin;

pub use bgi::{BgiConfig, BgiGlobalBroadcast, BgiProcess};
pub use permuted::{PermutedConfig, PermutedGlobalBroadcast, PermutedProcess};
pub use round_robin::{RoundRobinGlobalBroadcast, RoundRobinGlobalProcess};
