//! The paper's global broadcast algorithm for the oblivious dual graph model
//! (Section 4.1, Theorem 4.1).
//!
//! The algorithm is the BGI structure with one change: the source generates a
//! string `S` of random bits *after the execution begins* and appends it to
//! its message. Nodes holding the message use `S` to permute the order in
//! which they visit the decay probabilities, so an oblivious adversary — which
//! fixed its link schedule before seeing `S` — cannot align bad link behaviour
//! with the high- or low-probability rounds. Lemma 4.2 shows each permuted
//! decay call still delivers to every receiver with probability > 1/2.
//!
//! Implementation notes (documented deviations, none affecting the bound):
//!
//! * The paper has receivers wait for a round `≡ 0 (mod 16 log n)` before
//!   starting their permuted decay calls, purely to align the analysis
//!   blocks. Indexing the level selection by the *absolute* round number (as
//!   done here) gives the same per-round coordination property with no
//!   waiting.
//! * The paper sizes `S` at `32 log² n log log n` bits, enough to never reuse
//!   bits during the analysed window. We default to a smaller string and let
//!   the cursor wrap, which keeps long executions defined; the paper-exact
//!   size is available via [`PermutedConfig::paper`].

use std::sync::Arc;

use dradio_sim::process::log2_ceil;
use dradio_sim::sampling::bernoulli;
use dradio_sim::{
    Action, BitString, Feedback, Message, Process, ProcessContext, ProcessFactory, Role, Round,
};
use rand::RngCore;

use crate::decay::PermutedDecaySchedule;
use crate::kinds;

/// Configuration for [`PermutedGlobalBroadcast`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PermutedConfig {
    /// Number of decay probability levels (defaults to `⌈log₂ n⌉`).
    pub levels: Option<usize>,
    /// Number of coordination bits the source generates and attaches.
    pub seed_bits: usize,
    /// Payload attached to the source message.
    pub payload: u64,
}

impl PermutedConfig {
    /// Scaled-down default: `4 log² n log log n` bits (minimum 128), enough
    /// for thousands of rounds before the cursor wraps.
    pub fn scaled(n: usize) -> Self {
        let log_n = log2_ceil(n).max(1);
        let log_log_n = log2_ceil(log_n).max(1);
        PermutedConfig {
            levels: None,
            seed_bits: (4 * log_n * log_n * log_log_n).max(128),
            payload: 0,
        }
    }

    /// The paper's constant: `32 log² n log log n` bits.
    pub fn paper(n: usize) -> Self {
        let log_n = log2_ceil(n).max(1);
        let log_log_n = log2_ceil(log_n).max(1);
        PermutedConfig {
            levels: None,
            seed_bits: (32 * log_n * log_n * log_log_n).max(128),
            payload: 0,
        }
    }
}

/// Constructor for the permuted-decay global broadcast algorithm.
///
/// # Example
///
/// ```
/// use dradio_core::global::{PermutedConfig, PermutedGlobalBroadcast};
/// let factory = PermutedGlobalBroadcast::factory_with(256, PermutedConfig::paper(256));
/// let _ = factory;
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct PermutedGlobalBroadcast;

impl PermutedGlobalBroadcast {
    /// Builds a process factory for a network of `n` nodes with the scaled
    /// default configuration.
    pub fn factory(n: usize) -> ProcessFactory {
        Self::factory_with(n, PermutedConfig::scaled(n))
    }

    /// Builds a process factory with an explicit configuration.
    pub fn factory_with(n: usize, config: PermutedConfig) -> ProcessFactory {
        let levels = config.levels.unwrap_or_else(|| log2_ceil(n).max(1));
        Arc::new(move |ctx: &ProcessContext| {
            Box::new(PermutedProcess::new(
                ctx,
                PermutedDecaySchedule::new(levels),
                config,
            )) as Box<dyn Process>
        })
    }
}

/// Per-node state of the permuted-decay global broadcast.
#[derive(Debug)]
pub struct PermutedProcess {
    id: dradio_graphs::NodeId,
    role: Role,
    schedule: PermutedDecaySchedule,
    config: PermutedConfig,
    message: Option<Message>,
}

impl PermutedProcess {
    /// Creates the process for one node.
    pub fn new(
        ctx: &ProcessContext,
        schedule: PermutedDecaySchedule,
        config: PermutedConfig,
    ) -> Self {
        PermutedProcess {
            id: ctx.id,
            role: ctx.role,
            schedule,
            config,
            message: None,
        }
    }

    /// The permuted schedule in use.
    pub fn schedule(&self) -> PermutedDecaySchedule {
        self.schedule
    }
}

impl Process for PermutedProcess {
    fn on_start(&mut self, rng: &mut dyn RngCore) {
        if self.role == Role::Source {
            // The coordination bits are generated *after the execution
            // begins*: an oblivious link process has already committed to its
            // schedule and cannot depend on them.
            let bits = BitString::random(self.config.seed_bits, rng);
            self.message = Some(Message::with_bits(
                self.id,
                kinds::DATA,
                self.config.payload,
                bits,
            ));
        }
    }

    fn on_round(&mut self, round: Round, rng: &mut dyn RngCore) -> Action {
        match &self.message {
            Some(m) if bernoulli(rng, self.schedule.probability(m.bits(), round.index())) => {
                Action::Transmit(m.clone())
            }
            _ => Action::Listen,
        }
    }

    fn on_feedback(&mut self, _round: Round, feedback: &Feedback, _rng: &mut dyn RngCore) {
        if self.message.is_none() {
            if let Some(m) = feedback.message() {
                if m.kind() == kinds::DATA {
                    self.message = Some(m.clone());
                }
            }
        }
    }

    fn transmit_probability(&self, round: Round) -> f64 {
        match &self.message {
            Some(m) => self.schedule.probability(m.bits(), round.index()),
            None => 0.0,
        }
    }

    fn is_informed(&self) -> bool {
        self.message.is_some()
    }

    fn name(&self) -> &'static str {
        "permuted-decay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::GlobalBroadcastProblem;
    use dradio_graphs::{topology, NodeId};
    use dradio_sim::{SimConfig, Simulator, StaticLinks};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ctx(role: Role, n: usize) -> ProcessContext {
        ProcessContext::new(NodeId::new(0), n, n - 1, role)
    }

    #[test]
    fn source_attaches_fresh_random_bits() {
        let n = 64;
        let cfg = PermutedConfig::scaled(n);
        let mut a = PermutedProcess::new(
            &ctx(Role::Source, n),
            PermutedDecaySchedule::for_network(n),
            cfg,
        );
        let mut b = PermutedProcess::new(
            &ctx(Role::Source, n),
            PermutedDecaySchedule::for_network(n),
            cfg,
        );
        a.on_start(&mut ChaCha8Rng::seed_from_u64(1));
        b.on_start(&mut ChaCha8Rng::seed_from_u64(2));
        let bits_a = a.message.as_ref().unwrap().bits().clone();
        let bits_b = b.message.as_ref().unwrap().bits().clone();
        assert_eq!(bits_a.len(), cfg.seed_bits);
        assert_ne!(
            bits_a, bits_b,
            "different executions must use different bits"
        );
    }

    #[test]
    fn paper_config_is_larger_than_scaled() {
        let scaled = PermutedConfig::scaled(1024);
        let paper = PermutedConfig::paper(1024);
        assert!(paper.seed_bits > scaled.seed_bits);
        // 32 * 10^2 * 4 = 12800 for n = 1024 (log log 1024 = ceil(log2 10) = 4).
        assert_eq!(paper.seed_bits, 12_800);
    }

    #[test]
    fn receivers_adopt_the_bits_and_stay_coordinated() {
        let n = 64;
        let cfg = PermutedConfig::scaled(n);
        let sched = PermutedDecaySchedule::for_network(n);
        let mut source = PermutedProcess::new(&ctx(Role::Source, n), sched, cfg);
        source.on_start(&mut ChaCha8Rng::seed_from_u64(3));
        let m = source.message.clone().unwrap();

        let mut relay = PermutedProcess::new(&ctx(Role::Relay, n), sched, cfg);
        relay.on_feedback(
            Round::ZERO,
            &Feedback::Received(m.clone()),
            &mut ChaCha8Rng::seed_from_u64(4),
        );
        assert!(relay.is_informed());
        // Both now quote identical transmit probabilities every round: the
        // coordination property Lemma 4.2 needs.
        for r in 0..200 {
            assert_eq!(
                source.transmit_probability(Round::new(r)),
                relay.transmit_probability(Round::new(r))
            );
        }
    }

    #[test]
    fn uninformed_nodes_listen() {
        let n = 32;
        let mut relay = PermutedProcess::new(
            &ctx(Role::Relay, n),
            PermutedDecaySchedule::for_network(n),
            PermutedConfig::scaled(n),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        relay.on_start(&mut rng);
        for r in 0..50 {
            assert_eq!(relay.on_round(Round::new(r), &mut rng), Action::Listen);
        }
    }

    #[test]
    fn completes_on_dual_clique_with_all_links_active() {
        // G' is a clique: even with every unreliable edge active the permuted
        // decay coordination lets the message escape collisions quickly.
        let dual = topology::dual_clique(64).unwrap();
        let problem = GlobalBroadcastProblem::new(NodeId::new(0));
        let outcome = Simulator::new(
            dual.clone(),
            PermutedGlobalBroadcast::factory(64),
            problem.assignment(64),
            Box::new(StaticLinks::all()),
            SimConfig::default().with_seed(11).with_max_rounds(20_000),
        )
        .unwrap()
        .run(problem.stop_condition());
        assert!(outcome.completed);
        assert!(problem.verify(&dual, &outcome.history));
    }

    #[test]
    fn completes_on_static_line_of_cliques() {
        let dual = topology::line_of_cliques(5, 8).unwrap();
        let n = dual.len();
        let problem = GlobalBroadcastProblem::new(NodeId::new(0));
        let outcome = Simulator::new(
            dual,
            PermutedGlobalBroadcast::factory(n),
            problem.assignment(n),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_seed(13).with_max_rounds(50_000),
        )
        .unwrap()
        .run(problem.stop_condition());
        assert!(outcome.completed);
    }

    #[test]
    fn transmit_probability_is_level_probability() {
        let n = 64;
        let cfg = PermutedConfig::scaled(n);
        let sched = PermutedDecaySchedule::for_network(n);
        let mut source = PermutedProcess::new(&ctx(Role::Source, n), sched, cfg);
        source.on_start(&mut ChaCha8Rng::seed_from_u64(6));
        let bits = source.message.as_ref().unwrap().bits().clone();
        for r in 0..50 {
            let expected = sched.probability(&bits, r);
            assert!((source.transmit_probability(Round::new(r)) - expected).abs() < 1e-12);
        }
    }
}
