//! Deterministic round-robin global broadcast.
//!
//! Footnote 5 of the paper: broadcast among `n` nodes can always be solved by
//! round-robin transmission — node `i` transmits (if it holds the message) in
//! rounds congruent to `i` modulo `n`, so there is never a collision and the
//! message advances at least one hop every `n` rounds. This gives the
//! `O(n · D)` fallback used as the offline-adaptive upper bound context in
//! Figure 1.

use std::sync::Arc;

use dradio_sim::{Action, Feedback, Message, Process, ProcessContext, ProcessFactory, Role, Round};
use rand::RngCore;

use crate::kinds;

/// Constructor for the round-robin global broadcast algorithm.
///
/// # Example
///
/// ```
/// use dradio_core::global::RoundRobinGlobalBroadcast;
/// let factory = RoundRobinGlobalBroadcast::factory(16);
/// let _ = factory;
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinGlobalBroadcast;

impl RoundRobinGlobalBroadcast {
    /// Builds a process factory for a network of `n` nodes.
    pub fn factory(n: usize) -> ProcessFactory {
        Arc::new(move |ctx: &ProcessContext| {
            Box::new(RoundRobinGlobalProcess::new(ctx, n)) as Box<dyn Process>
        })
    }
}

/// Per-node state of the round-robin global broadcast.
#[derive(Debug)]
pub struct RoundRobinGlobalProcess {
    id: dradio_graphs::NodeId,
    role: Role,
    n: usize,
    message: Option<Message>,
}

impl RoundRobinGlobalProcess {
    /// Creates the process for one node of an `n`-node network.
    pub fn new(ctx: &ProcessContext, n: usize) -> Self {
        RoundRobinGlobalProcess {
            id: ctx.id,
            role: ctx.role,
            n: n.max(1),
            message: None,
        }
    }

    fn my_slot(&self, round: Round) -> bool {
        round.index() % self.n == self.id.index()
    }
}

impl Process for RoundRobinGlobalProcess {
    fn on_start(&mut self, _rng: &mut dyn RngCore) {
        if self.role == Role::Source {
            self.message = Some(Message::plain(self.id, kinds::DATA, 0));
        }
    }

    fn on_round(&mut self, round: Round, _rng: &mut dyn RngCore) -> Action {
        match &self.message {
            Some(m) if self.my_slot(round) => Action::Transmit(m.clone()),
            _ => Action::Listen,
        }
    }

    fn on_feedback(&mut self, _round: Round, feedback: &Feedback, _rng: &mut dyn RngCore) {
        if self.message.is_none() {
            if let Some(m) = feedback.message() {
                if m.kind() == kinds::DATA {
                    self.message = Some(m.clone());
                }
            }
        }
    }

    fn transmit_probability(&self, round: Round) -> f64 {
        if self.message.is_some() && self.my_slot(round) {
            1.0
        } else {
            0.0
        }
    }

    fn is_informed(&self) -> bool {
        self.message.is_some()
    }

    fn name(&self) -> &'static str {
        "round-robin-global"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::GlobalBroadcastProblem;
    use dradio_graphs::{properties, topology, NodeId};
    use dradio_sim::{SimConfig, Simulator, StaticLinks};

    #[test]
    fn transmits_only_in_own_slot() {
        let ctx = ProcessContext::new(NodeId::new(2), 5, 4, Role::Source);
        let mut p = RoundRobinGlobalProcess::new(&ctx, 5);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        use rand::SeedableRng;
        p.on_start(&mut rng);
        for r in 0..20 {
            let action = p.on_round(Round::new(r), &mut rng);
            if r % 5 == 2 {
                assert!(action.is_transmit(), "round {r} should be node 2's slot");
                assert_eq!(p.transmit_probability(Round::new(r)), 1.0);
            } else {
                assert_eq!(action, Action::Listen);
                assert_eq!(p.transmit_probability(Round::new(r)), 0.0);
            }
        }
    }

    #[test]
    fn never_collides_and_always_completes() {
        // Round robin is deterministic and collision free, so it finishes on
        // every connected static graph within n * D rounds.
        for dual in [
            topology::line(10).unwrap(),
            topology::clique(10),
            topology::ring(10).unwrap(),
        ] {
            let n = dual.len();
            let d = properties::diameter(dual.g()).unwrap().max(1);
            let problem = GlobalBroadcastProblem::new(NodeId::new(0));
            let outcome = Simulator::new(
                dual,
                RoundRobinGlobalBroadcast::factory(n),
                problem.assignment(n),
                Box::new(StaticLinks::none()),
                SimConfig::default().with_max_rounds(2 * n * d + n),
            )
            .unwrap()
            .run(problem.stop_condition());
            assert!(outcome.completed);
            assert_eq!(outcome.metrics.collisions, 0);
            assert!(outcome.cost() <= n * (d + 1));
        }
    }

    #[test]
    fn completes_even_with_all_dynamic_links_active() {
        // With one transmitter per round there are never collisions, so the
        // adversary activating every unreliable edge only helps.
        let dual = topology::dual_clique(16).unwrap();
        let problem = GlobalBroadcastProblem::new(NodeId::new(0));
        let outcome = Simulator::new(
            dual,
            RoundRobinGlobalBroadcast::factory(16),
            problem.assignment(16),
            Box::new(StaticLinks::all()),
            SimConfig::default().with_max_rounds(16 * 16),
        )
        .unwrap()
        .run(problem.stop_condition());
        assert!(outcome.completed);
        assert_eq!(outcome.metrics.collisions, 0);
    }
}
