//! The β-hitting game of Section 3.
//!
//! An adversary secretly chooses a target `t ∈ {1, …, β}`. In each round the
//! player outputs a guess; the only feedback is whether the game has been won
//! yet. Lemma 3.2 (adapted from the authors' earlier work) states that no
//! player can win within `k` rounds with probability greater than
//! `k / (β - 1)` — in particular, winning with probability `1 - 1/β` requires
//! `Ω(β)` rounds.
//!
//! The paper reduces broadcast in the dual clique (and bracelet) networks to
//! this game; [`crate::reduction`] implements that reduction. This module
//! provides the game itself plus baseline players used by experiment E7.

use rand::RngCore;

use dradio_sim::sampling::uniform_index;

/// A single instance of the β-hitting game.
///
/// # Example
///
/// ```
/// use dradio_core::hitting::HittingGame;
/// let mut game = HittingGame::new(10, 7)?;
/// assert!(!game.guess(3));
/// assert!(game.guess(7));
/// assert!(game.is_won());
/// assert_eq!(game.guesses_made(), 2);
/// # Ok::<(), dradio_core::hitting::HittingError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HittingGame {
    beta: u64,
    target: u64,
    guesses_made: u64,
    won: bool,
}

/// Error returned when constructing an invalid hitting game.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HittingError {
    beta: u64,
    target: u64,
}

impl std::fmt::Display for HittingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid hitting game: target {} not in [1, {}] or beta too small",
            self.target, self.beta
        )
    }
}

impl std::error::Error for HittingError {}

impl HittingGame {
    /// Creates a game over `{1, …, beta}` with the given secret target.
    ///
    /// # Errors
    ///
    /// Returns [`HittingError`] if `beta < 2` or the target is not in
    /// `[1, beta]`.
    pub fn new(beta: u64, target: u64) -> Result<Self, HittingError> {
        if beta < 2 || target == 0 || target > beta {
            return Err(HittingError { beta, target });
        }
        Ok(HittingGame {
            beta,
            target,
            guesses_made: 0,
            won: false,
        })
    }

    /// Creates a game with a uniformly random target.
    pub fn with_random_target(beta: u64, rng: &mut dyn RngCore) -> Result<Self, HittingError> {
        if beta < 2 {
            return Err(HittingError { beta, target: 0 });
        }
        let target = uniform_index(rng, beta as usize) as u64 + 1;
        HittingGame::new(beta, target)
    }

    /// The domain size β.
    pub fn beta(&self) -> u64 {
        self.beta
    }

    /// The secret target (exposed for analysis and tests; players must not
    /// read it).
    pub fn target(&self) -> u64 {
        self.target
    }

    /// Number of guesses made so far.
    pub fn guesses_made(&self) -> u64 {
        self.guesses_made
    }

    /// Whether the game has been won.
    pub fn is_won(&self) -> bool {
        self.won
    }

    /// Submits a guess; returns `true` (and marks the game won) if it hits
    /// the target. Guesses made after the game is won are counted but cannot
    /// un-win it.
    pub fn guess(&mut self, value: u64) -> bool {
        self.guesses_made += 1;
        if value == self.target {
            self.won = true;
        }
        self.won && value == self.target
    }
}

/// Lemma 3.2: an upper bound on the probability that *any* player wins the
/// β-hitting game within `k` rounds (`k / (β - 1)`, capped at 1).
pub fn lemma_3_2_bound(beta: u64, k: u64) -> f64 {
    if beta <= 1 {
        return 1.0;
    }
    (k as f64 / (beta - 1) as f64).min(1.0)
}

/// A player of the hitting game: one guess per round.
pub trait HittingPlayer {
    /// Produces the guess for `round` (0-based).
    fn next_guess(&mut self, round: usize, rng: &mut dyn RngCore) -> u64;

    /// Short player name for experiment tables.
    fn name(&self) -> &'static str {
        "player"
    }
}

/// Guesses uniformly at random (with replacement) every round.
#[derive(Debug, Clone, Copy)]
pub struct UniformRandomPlayer {
    beta: u64,
}

impl UniformRandomPlayer {
    /// Creates the player for a game over `{1, …, beta}`.
    pub fn new(beta: u64) -> Self {
        UniformRandomPlayer { beta: beta.max(1) }
    }
}

impl HittingPlayer for UniformRandomPlayer {
    fn next_guess(&mut self, _round: usize, rng: &mut dyn RngCore) -> u64 {
        uniform_index(rng, self.beta as usize) as u64 + 1
    }

    fn name(&self) -> &'static str {
        "uniform-random"
    }
}

/// Guesses `1, 2, 3, …` in order (an optimal deterministic strategy against a
/// uniformly random target: expected `(β+1)/2` rounds, worst case `β`).
#[derive(Debug, Clone, Copy)]
pub struct SweepPlayer {
    beta: u64,
}

impl SweepPlayer {
    /// Creates the player for a game over `{1, …, beta}`.
    pub fn new(beta: u64) -> Self {
        SweepPlayer { beta: beta.max(1) }
    }
}

impl HittingPlayer for SweepPlayer {
    fn next_guess(&mut self, round: usize, _rng: &mut dyn RngCore) -> u64 {
        (round as u64 % self.beta) + 1
    }

    fn name(&self) -> &'static str {
        "sweep"
    }
}

/// Plays `game` with `player` for at most `max_rounds` rounds; returns the
/// number of rounds used if the player won, or `None` if it did not.
pub fn play(
    game: &mut HittingGame,
    player: &mut dyn HittingPlayer,
    max_rounds: usize,
    rng: &mut dyn RngCore,
) -> Option<usize> {
    for round in 0..max_rounds {
        let guess = player.next_guess(round, rng);
        if game.guess(guess) {
            return Some(round + 1);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn construction_validates_parameters() {
        assert!(HittingGame::new(10, 0).is_err());
        assert!(HittingGame::new(10, 11).is_err());
        assert!(HittingGame::new(1, 1).is_err());
        assert!(HittingGame::new(2, 2).is_ok());
        let err = HittingGame::new(10, 11).unwrap_err();
        assert!(err.to_string().contains("invalid hitting game"));
    }

    #[test]
    fn random_target_is_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            let game = HittingGame::with_random_target(17, &mut rng).unwrap();
            assert!((1..=17).contains(&game.target()));
        }
        assert!(HittingGame::with_random_target(1, &mut rng).is_err());
    }

    #[test]
    fn guessing_tracks_state() {
        let mut game = HittingGame::new(5, 3).unwrap();
        assert!(!game.guess(1));
        assert!(!game.guess(2));
        assert!(game.guess(3));
        assert!(game.is_won());
        assert_eq!(game.guesses_made(), 3);
    }

    #[test]
    fn lemma_bound_values() {
        assert!((lemma_3_2_bound(11, 5) - 0.5).abs() < 1e-12);
        assert_eq!(lemma_3_2_bound(11, 100), 1.0);
        assert_eq!(lemma_3_2_bound(1, 5), 1.0);
        assert_eq!(lemma_3_2_bound(2, 0), 0.0);
    }

    #[test]
    fn sweep_player_wins_in_at_most_beta_rounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for target in 1..=20u64 {
            let mut game = HittingGame::new(20, target).unwrap();
            let mut player = SweepPlayer::new(20);
            let rounds = play(&mut game, &mut player, 20, &mut rng).unwrap();
            assert_eq!(rounds as u64, target);
        }
    }

    #[test]
    fn uniform_player_eventually_wins() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut game = HittingGame::new(16, 9).unwrap();
        let mut player = UniformRandomPlayer::new(16);
        let rounds = play(&mut game, &mut player, 10_000, &mut rng);
        assert!(rounds.is_some());
    }

    #[test]
    fn uniform_player_respects_lemma_bound_statistically() {
        // Empirical win rate within k rounds must not exceed the Lemma 3.2
        // bound k/(beta-1) by more than sampling noise.
        let beta = 64u64;
        let k = 8usize;
        let trials = 2000;
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut wins = 0usize;
        for t in 0..trials {
            let mut game = HittingGame::with_random_target(beta, &mut rng).unwrap();
            let mut player = UniformRandomPlayer::new(beta);
            if play(&mut game, &mut player, k, &mut rng).is_some() {
                wins += 1;
            }
            let _ = t;
        }
        let rate = wins as f64 / trials as f64;
        let bound = lemma_3_2_bound(beta, k as u64);
        assert!(rate <= bound + 0.03, "rate {rate} exceeds bound {bound}");
    }

    #[test]
    fn play_returns_none_when_budget_is_too_small() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut game = HittingGame::new(1000, 999).unwrap();
        let mut player = SweepPlayer::new(1000);
        assert_eq!(play(&mut game, &mut player, 10, &mut rng), None);
        assert!(!game.is_won());
    }

    #[test]
    fn player_names() {
        assert_eq!(UniformRandomPlayer::new(4).name(), "uniform-random");
        assert_eq!(SweepPlayer::new(4).name(), "sweep");
    }
}
