//! Message kinds used by the broadcast algorithms.

use dradio_sim::MessageKind;

/// The broadcast payload message (global broadcast source message or local
/// broadcast data message).
pub const DATA: MessageKind = MessageKind::new(1);

/// A seed-dissemination message used by the initialization stage of the
/// geographic local broadcast algorithm (Section 4.3).
pub const SEED: MessageKind = MessageKind::new(2);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        assert_ne!(DATA, SEED);
        assert_eq!(DATA.value(), 1);
        assert_eq!(SEED.value(), 2);
    }
}
