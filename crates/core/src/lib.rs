//! Broadcast algorithms for dual-graph radio networks.
//!
//! This crate implements every algorithm described or used by Ghaffari, Lynch
//! and Newport, *"The Cost of Radio Network Broadcast for Different Models of
//! Unreliable Links"* (PODC 2013), on top of the execution model provided by
//! [`dradio_sim`]:
//!
//! * [`decay`] — the classic Decay subroutine of Bar-Yehuda, Goldreich and
//!   Itai, and the paper's **Permuted Decay** variant (Section 4.1) that
//!   selects its probability level from shared random bits so an oblivious
//!   adversary cannot predict the schedule.
//! * [`global`] — global (source-to-all) broadcast algorithms: the static
//!   baseline [`global::BgiGlobalBroadcast`], the paper's oblivious-robust
//!   [`global::PermutedGlobalBroadcast`] (Theorem 4.1), and the
//!   [`global::RoundRobinGlobalBroadcast`] fallback.
//! * [`local`] — local (to-all-neighbors) broadcast algorithms: static-model
//!   decay, a uniform-probability baseline, round robin, and the paper's
//!   geographic algorithm [`local::GeoLocalBroadcast`] (Theorem 4.6) with its
//!   seed-dissemination initialization stage.
//! * [`hitting`] — the abstract β-hitting game of Section 3 with the
//!   Lemma 3.2 bound, plus simple players.
//! * [`reduction`] — the simulation-based reduction of Theorem 3.1: a hitting
//!   game player that wins by simulating a broadcast algorithm in the dual
//!   clique network.
//! * [`problem`] — problem definitions (global/local broadcast) that produce
//!   role assignments, stop conditions and correctness checks.
//! * [`algorithms`] — a small registry enumerating the algorithms with
//!   uniform constructors, used by the experiment harness.
//!
//! # Example: permuted-decay global broadcast under unreliable links
//!
//! ```
//! use dradio_core::algorithms::GlobalAlgorithm;
//! use dradio_core::problem::GlobalBroadcastProblem;
//! use dradio_graphs::topology;
//! use dradio_sim::{SimConfig, Simulator, StaticLinks};
//! use dradio_graphs::NodeId;
//!
//! let dual = topology::dual_clique(32)?;
//! let problem = GlobalBroadcastProblem::new(NodeId::new(0));
//! let factory = GlobalAlgorithm::Permuted.factory(dual.len(), dual.max_degree());
//! let sim = Simulator::new(
//!     dual.clone(),
//!     factory,
//!     problem.assignment(dual.len()),
//!     Box::new(StaticLinks::all()),
//!     SimConfig::default().with_seed(1).with_max_rounds(20_000),
//! )?;
//! let outcome = sim.run(problem.stop_condition());
//! assert!(outcome.completed);
//! assert!(problem.verify(&dual, &outcome.history));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod decay;
pub mod global;
pub mod hitting;
pub mod kinds;
pub mod local;
pub mod problem;
pub mod reduction;

pub use algorithms::{GlobalAlgorithm, LocalAlgorithm};
pub use decay::{DecaySchedule, PermutedDecaySchedule};
pub use problem::{GlobalBroadcastProblem, LocalBroadcastProblem};
