//! The paper's local broadcast algorithm for the oblivious dual graph model
//! under the geographic constraint (Section 4.3, Theorem 4.6).
//!
//! The algorithm runs in two stages:
//!
//! 1. **Initialization** — `log Δ` phases of `O(log² n)` rounds. In each
//!    phase every still-*active* node elects itself leader with a probability
//!    that doubles phase by phase (`1/Δ, 2/Δ, …, 1/2`). A leader generates a
//!    seed of shared random bits, commits to it, and gossips it with
//!    probability `1/log n` per round for the rest of the phase; nodes that
//!    hear a seed commit to the first one they heard and become inactive.
//!    Because geographic graphs decompose into constant-degree regions of
//!    mutually adjacent nodes (Lemmas 4.7–4.9), with high probability every
//!    node ends the stage committed and no node neighbors more than
//!    `O(log n)` distinct seeds.
//! 2. **Broadcast** — broadcasters repeatedly run the permuted decay
//!    subroutine. For each iteration a broadcaster participates with
//!    probability `1/log n`, *using bits from its seed* to decide, so all
//!    broadcasters sharing a seed participate together and permute their
//!    decay levels identically. A receiver neighbors only `O(log n)` seed
//!    groups, so with probability `Ω(1/log n)` per iteration exactly one
//!    group participates and Lemma 4.2 delivers its message.
//!
//! Implementation notes (documented deviations): stage lengths and seed sizes
//! are configurable with scaled-down defaults (the paper's constants are
//! chosen for proof convenience); seed bits wrap when exhausted; leaders keep
//! gossiping until the end of their phase rather than becoming silent early.

use std::sync::Arc;

use dradio_sim::process::log2_ceil;
use dradio_sim::sampling::bernoulli;
use dradio_sim::{
    Action, BitString, Feedback, Message, Process, ProcessContext, ProcessFactory, Role, Round,
};
use rand::RngCore;

use crate::decay::PermutedDecaySchedule;
use crate::kinds;

/// Configuration for [`GeoLocalBroadcast`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeoConfig {
    /// Rounds per initialization phase (paper: `O(log² n)`).
    pub phase_rounds: usize,
    /// Number of initialization phases (paper: `log Δ`).
    pub num_phases: usize,
    /// Length of one broadcast-stage iteration in rounds (paper: `γ log n`).
    pub iteration_rounds: usize,
    /// Number of random bits in each seed.
    pub seed_bits: usize,
    /// Reciprocal of the leader-gossip and iteration-participation
    /// probability (paper: `log n`, i.e. probability `1/log n`).
    pub inverse_participation: usize,
    /// Number of decay probability levels (paper: `log n`).
    pub levels: usize,
}

impl GeoConfig {
    /// Scaled-down defaults suitable for simulation sweeps: phase length
    /// `2 log² n`, iteration length `2 log n`, seeds of `max(512, 4 log³ n)`
    /// bits.
    pub fn scaled(n: usize, max_degree: usize) -> Self {
        let log_n = log2_ceil(n).max(1);
        let log_delta = log2_ceil(max_degree.max(2)).max(1);
        GeoConfig {
            phase_rounds: (2 * log_n * log_n).max(4),
            num_phases: log_delta,
            iteration_rounds: (2 * log_n).max(2),
            seed_bits: (4 * log_n * log_n * log_n).max(512),
            inverse_participation: log_n,
            levels: log_n,
        }
    }

    /// Paper-faithful constants: phase length `8 log² n`, iteration length
    /// `16 log n`, seeds of `log³ n (log log n)²` bits (with a floor).
    pub fn paper(n: usize, max_degree: usize) -> Self {
        let log_n = log2_ceil(n).max(1);
        let log_log_n = log2_ceil(log_n).max(1);
        let log_delta = log2_ceil(max_degree.max(2)).max(1);
        GeoConfig {
            phase_rounds: (8 * log_n * log_n).max(8),
            num_phases: log_delta,
            iteration_rounds: (16 * log_n).max(2),
            seed_bits: (log_n * log_n * log_n * log_log_n * log_log_n).max(1024),
            inverse_participation: log_n,
            levels: log_n,
        }
    }

    /// Total number of initialization-stage rounds.
    pub fn init_rounds(&self) -> usize {
        self.phase_rounds * self.num_phases
    }
}

/// Which stage of the algorithm a given round belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeoStage {
    /// Seed dissemination (leader election and gossip).
    Initialization {
        /// The phase index in `0..num_phases`.
        phase: usize,
    },
    /// Coordinated permuted-decay broadcasting.
    Broadcast {
        /// The iteration index (each iteration is one permuted decay call).
        iteration: usize,
    },
}

/// Constructor for the geographic local broadcast algorithm.
///
/// # Example
///
/// ```
/// use dradio_core::local::GeoLocalBroadcast;
/// let factory = GeoLocalBroadcast::factory(128, 12);
/// let _ = factory;
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct GeoLocalBroadcast;

impl GeoLocalBroadcast {
    /// Builds a process factory for a network of `n` nodes with maximum
    /// degree `max_degree`, using scaled defaults.
    pub fn factory(n: usize, max_degree: usize) -> ProcessFactory {
        Self::factory_with(GeoConfig::scaled(n, max_degree))
    }

    /// Builds a process factory with an explicit configuration.
    pub fn factory_with(config: GeoConfig) -> ProcessFactory {
        Arc::new(move |ctx: &ProcessContext| {
            Box::new(GeoProcess::new(ctx, config)) as Box<dyn Process>
        })
    }
}

/// Per-node state of the geographic local broadcast algorithm.
#[derive(Debug)]
pub struct GeoProcess {
    id: dradio_graphs::NodeId,
    role: Role,
    config: GeoConfig,
    schedule: PermutedDecaySchedule,
    /// Still active in the initialization stage (has not committed).
    active: bool,
    /// Elected leader in the current phase.
    is_leader: bool,
    /// The seed this node has committed to (its own if it was a leader or a
    /// stage survivor, otherwise the first one it heard).
    committed: Option<BitString>,
    /// First seed heard while active (committed to at phase end).
    heard_seed: Option<BitString>,
    /// The local broadcast payload (broadcasters only).
    payload: Option<Message>,
}

impl GeoProcess {
    /// Creates the process for one node.
    pub fn new(ctx: &ProcessContext, config: GeoConfig) -> Self {
        let payload = (ctx.role == Role::Broadcaster)
            .then(|| Message::plain(ctx.id, kinds::DATA, ctx.id.index() as u64));
        GeoProcess {
            id: ctx.id,
            role: ctx.role,
            config,
            schedule: PermutedDecaySchedule::new(config.levels),
            active: true,
            is_leader: false,
            committed: None,
            heard_seed: None,
            payload,
        }
    }

    /// The stage the algorithm is in at `round`.
    pub fn stage(&self, round: Round) -> GeoStage {
        let init = self.config.init_rounds();
        if round.index() < init {
            GeoStage::Initialization {
                phase: round.index() / self.config.phase_rounds.max(1),
            }
        } else {
            GeoStage::Broadcast {
                iteration: (round.index() - init) / self.config.iteration_rounds.max(1),
            }
        }
    }

    /// Whether this node has committed to a seed.
    pub fn has_committed(&self) -> bool {
        self.committed.is_some()
    }

    /// The problem-level role of this node.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Leader election probability for `phase` (`2^{-(num_phases - phase)}`,
    /// i.e. `1/Δ` in the first phase up to `1/2` in the last).
    fn election_probability(&self, phase: usize) -> f64 {
        let exponent = self.config.num_phases.saturating_sub(phase).max(1);
        0.5f64.powi(exponent.min(1024) as i32)
    }

    fn gossip_probability(&self) -> f64 {
        1.0 / self.config.inverse_participation.max(1) as f64
    }

    /// Closes the previous phase: leaders retire; active nodes that heard a
    /// seed commit to it and retire.
    fn finish_phase(&mut self) {
        if self.is_leader {
            self.is_leader = false;
            self.active = false;
        } else if self.active {
            if let Some(seed) = self.heard_seed.take() {
                self.committed = Some(seed);
                self.active = false;
            }
        }
    }

    /// At the end of the initialization stage every uncommitted node commits
    /// to a fresh private seed.
    fn finish_initialization(&mut self, rng: &mut dyn RngCore) {
        self.finish_phase();
        if self.committed.is_none() {
            self.committed = Some(BitString::random(self.config.seed_bits, rng));
        }
        self.active = false;
    }

    /// Deterministic participation decision for a broadcast iteration, shared
    /// by every node holding the same seed.
    fn participates(&self, seed: &BitString, iteration: usize) -> bool {
        let inv = self.config.inverse_participation.max(1) as u64;
        let width = log2_ceil(self.config.inverse_participation.max(2)).max(1) + 1;
        if seed.is_empty() || seed.len() < width {
            return (iteration as u64).is_multiple_of(inv);
        }
        let positions = seed.len() - width + 1;
        // Offset the participation bits away from the permutation bits by a
        // fixed stride so the two decisions are not read from identical
        // positions.
        let offset = ((iteration * width).wrapping_mul(2_654_435_761) % positions) % positions;
        // lint: allow(D4) -- offset is reduced mod positions on the line above
        let value = seed.value(offset, width).expect("offset within bounds");
        value.is_multiple_of(inv)
    }

    /// The transmit probability implied by the current state for `round`
    /// (exact except on the single boundary round where commitment happens).
    fn planned_probability(&self, round: Round) -> f64 {
        match self.stage(round) {
            GeoStage::Initialization { phase } => {
                let within = round.index() % self.config.phase_rounds.max(1);
                if within == 0 {
                    0.0
                } else if self.is_leader && phase < self.config.num_phases {
                    self.gossip_probability()
                } else {
                    0.0
                }
            }
            GeoStage::Broadcast { iteration } => {
                let Some(payload_seed) = self.committed.as_ref() else {
                    return 0.0;
                };
                if self.payload.is_none() {
                    return 0.0;
                }
                if !self.participates(payload_seed, iteration) {
                    return 0.0;
                }
                let step = round.index() - self.config.init_rounds();
                self.schedule.probability(payload_seed, step)
            }
        }
    }
}

impl Process for GeoProcess {
    fn on_round(&mut self, round: Round, rng: &mut dyn RngCore) -> Action {
        let init_rounds = self.config.init_rounds();
        if round.index() < init_rounds {
            let phase = round.index() / self.config.phase_rounds.max(1);
            let within = round.index() % self.config.phase_rounds.max(1);
            if within == 0 {
                // Phase boundary: close the previous phase, then run this
                // phase's leader election among still-active nodes.
                if phase > 0 {
                    self.finish_phase();
                }
                if self.active && bernoulli(rng, self.election_probability(phase)) {
                    self.is_leader = true;
                    self.committed = Some(BitString::random(self.config.seed_bits, rng));
                }
                return Action::Listen;
            }
            if self.is_leader && bernoulli(rng, self.gossip_probability()) {
                let seed = self
                    .committed
                    .clone()
                    // lint: allow(D4) -- leaders commit their seed when elected, before this state
                    .expect("leaders committed at election");
                return Action::Transmit(Message::with_bits(self.id, kinds::SEED, 0, seed));
            }
            return Action::Listen;
        }

        // Broadcast stage.
        if round.index() == init_rounds || self.committed.is_none() {
            self.finish_initialization(rng);
        }
        let Some(payload) = self.payload.clone() else {
            return Action::Listen;
        };
        let seed = self
            .committed
            .clone()
            // lint: allow(D4) -- on_round commits a seed before any non-init round
            .expect("committed after initialization");
        let iteration = (round.index() - init_rounds) / self.config.iteration_rounds.max(1);
        if !self.participates(&seed, iteration) {
            return Action::Listen;
        }
        let step = round.index() - init_rounds;
        if bernoulli(rng, self.schedule.probability(&seed, step)) {
            Action::Transmit(payload)
        } else {
            Action::Listen
        }
    }

    fn on_feedback(&mut self, _round: Round, feedback: &Feedback, _rng: &mut dyn RngCore) {
        if let Some(m) = feedback.message() {
            if m.kind() == kinds::SEED
                && self.active
                && !self.is_leader
                && self.heard_seed.is_none()
            {
                self.heard_seed = Some(m.bits().clone());
            }
        }
    }

    fn transmit_probability(&self, round: Round) -> f64 {
        self.planned_probability(round)
    }

    fn is_informed(&self) -> bool {
        self.committed.is_some()
    }

    fn name(&self) -> &'static str {
        "geo-local"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::LocalBroadcastProblem;
    use dradio_graphs::{topology, NodeId};
    use dradio_sim::{Assignment, SimConfig, Simulator, StaticLinks};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn ctx(id: usize, role: Role, n: usize, delta: usize) -> ProcessContext {
        ProcessContext::new(NodeId::new(id), n, delta, role)
    }

    #[test]
    fn config_constructors_scale_with_parameters() {
        let small = GeoConfig::scaled(64, 8);
        let big = GeoConfig::scaled(4096, 8);
        assert!(big.phase_rounds > small.phase_rounds);
        assert_eq!(small.num_phases, 3);
        let paper = GeoConfig::paper(64, 8);
        assert!(paper.phase_rounds >= small.phase_rounds);
        assert!(paper.seed_bits >= small.seed_bits);
        assert_eq!(small.init_rounds(), small.phase_rounds * small.num_phases);
    }

    #[test]
    fn stage_boundaries_follow_configuration() {
        let cfg = GeoConfig {
            phase_rounds: 10,
            num_phases: 3,
            iteration_rounds: 5,
            seed_bits: 64,
            inverse_participation: 4,
            levels: 4,
        };
        let p = GeoProcess::new(&ctx(0, Role::Relay, 64, 8), cfg);
        assert_eq!(
            p.stage(Round::new(0)),
            GeoStage::Initialization { phase: 0 }
        );
        assert_eq!(
            p.stage(Round::new(25)),
            GeoStage::Initialization { phase: 2 }
        );
        assert_eq!(
            p.stage(Round::new(30)),
            GeoStage::Broadcast { iteration: 0 }
        );
        assert_eq!(
            p.stage(Round::new(41)),
            GeoStage::Broadcast { iteration: 2 }
        );
    }

    #[test]
    fn election_probability_doubles_per_phase() {
        let cfg = GeoConfig::scaled(256, 16); // num_phases = 4
        let p = GeoProcess::new(&ctx(0, Role::Relay, 256, 16), cfg);
        assert!((p.election_probability(0) - 1.0 / 16.0).abs() < 1e-12);
        assert!((p.election_probability(1) - 1.0 / 8.0).abs() < 1e-12);
        assert!((p.election_probability(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn everyone_commits_by_the_broadcast_stage() {
        let cfg = GeoConfig::scaled(64, 8);
        let mut p = GeoProcess::new(&ctx(3, Role::Broadcaster, 64, 8), cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for r in 0..=cfg.init_rounds() {
            let _ = p.on_round(Round::new(r), &mut rng);
        }
        assert!(p.has_committed());
    }

    #[test]
    fn hearing_a_seed_commits_to_it() {
        let cfg = GeoConfig::scaled(64, 8);
        let mut p = GeoProcess::new(&ctx(3, Role::Relay, 64, 8), cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let seed = BitString::random(cfg.seed_bits, &mut rng);
        let m = Message::with_bits(NodeId::new(9), kinds::SEED, 0, seed.clone());
        // The node hears a seed while active (and before any election round
        // could have made it a leader).
        p.on_feedback(Round::new(1), &Feedback::Received(m), &mut rng);
        assert!(p.heard_seed.is_some());
        // The commitment happens when the phase closes (first round of the
        // next phase).
        let _ = p.on_round(Round::new(cfg.phase_rounds), &mut rng);
        assert_eq!(p.committed, Some(seed));
        assert!(!p.active);
    }

    #[test]
    fn data_messages_do_not_trigger_seed_commitment() {
        let cfg = GeoConfig::scaled(64, 8);
        let mut p = GeoProcess::new(&ctx(3, Role::Relay, 64, 8), cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let m = Message::plain(NodeId::new(9), kinds::DATA, 0);
        p.on_feedback(Round::new(1), &Feedback::Received(m), &mut rng);
        assert!(p.heard_seed.is_none());
    }

    #[test]
    fn same_seed_nodes_make_identical_broadcast_decisions() {
        let cfg = GeoConfig::scaled(256, 16);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let shared = BitString::random(cfg.seed_bits, &mut rng);
        let mut a = GeoProcess::new(&ctx(1, Role::Broadcaster, 256, 16), cfg);
        let mut b = GeoProcess::new(&ctx(2, Role::Broadcaster, 256, 16), cfg);
        a.committed = Some(shared.clone());
        b.committed = Some(shared);
        a.active = false;
        b.active = false;
        for r in cfg.init_rounds()..cfg.init_rounds() + 200 {
            assert_eq!(
                a.transmit_probability(Round::new(r)),
                b.transmit_probability(Round::new(r)),
                "round {r}"
            );
        }
    }

    #[test]
    fn participation_rate_is_roughly_one_over_log_n() {
        let cfg = GeoConfig::scaled(1024, 32); // inverse_participation = 10
        let p = GeoProcess::new(&ctx(0, Role::Broadcaster, 1024, 32), cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut participating = 0usize;
        let trials = 400;
        for t in 0..trials {
            let seed = BitString::random(cfg.seed_bits, &mut rng);
            if p.participates(&seed, t) {
                participating += 1;
            }
        }
        let rate = participating as f64 / trials as f64;
        let target = 1.0 / cfg.inverse_participation as f64;
        assert!(
            (rate - target).abs() < 0.08,
            "rate {rate} vs target {target}"
        );
    }

    #[test]
    fn relays_never_transmit_in_broadcast_stage() {
        let cfg = GeoConfig::scaled(64, 8);
        let mut p = GeoProcess::new(&ctx(3, Role::Relay, 64, 8), cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for r in cfg.init_rounds()..cfg.init_rounds() + 100 {
            assert_eq!(p.on_round(Round::new(r), &mut rng), Action::Listen);
            assert_eq!(p.transmit_probability(Round::new(r)), 0.0);
        }
    }

    #[test]
    fn solves_local_broadcast_on_geometric_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let dual =
            topology::random_geometric(&topology::GeometricConfig::new(60, 4.0, 1.5), &mut rng)
                .unwrap();
        let n = dual.len();
        let broadcasters: Vec<NodeId> = (0..n).step_by(4).map(NodeId::new).collect();
        let problem = LocalBroadcastProblem::new(broadcasters.clone());
        let outcome = Simulator::new(
            dual.clone(),
            GeoLocalBroadcast::factory(n, dual.max_degree()),
            Assignment::local(n, &broadcasters),
            Box::new(StaticLinks::all()),
            SimConfig::default().with_seed(8).with_max_rounds(20_000),
        )
        .unwrap()
        .run(problem.stop_condition(&dual));
        assert!(outcome.completed, "geo local broadcast should finish");
        assert!(problem.verify(&dual, &outcome.history));
    }

    #[test]
    fn seed_gossip_happens_during_initialization() {
        // On a small clique, with every node active, some leader is elected
        // and gossips SEED messages during the initialization stage.
        let n = 16;
        let dual = topology::clique(n);
        let broadcasters: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        let outcome = Simulator::new(
            dual,
            GeoLocalBroadcast::factory(n, n - 1),
            Assignment::local(n, &broadcasters),
            Box::new(StaticLinks::none()),
            SimConfig::default()
                .with_seed(9)
                .with_max_rounds(GeoConfig::scaled(n, n - 1).init_rounds()),
        )
        .unwrap()
        .run(dradio_sim::StopCondition::max_rounds());
        let seed_deliveries = outcome
            .history
            .records()
            .iter()
            .flat_map(|r| r.deliveries.iter())
            .filter(|d| d.message.kind() == kinds::SEED)
            .count();
        assert!(seed_deliveries > 0, "expected some seed dissemination");
    }
}
