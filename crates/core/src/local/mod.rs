//! Local broadcast algorithms: a set `B` of broadcasters must each deliver a
//! message to their `G`-neighbors; the problem is solved (in the form studied
//! by the paper) once every receiver has heard *some* broadcaster.
//!
//! | Algorithm | Model it targets | Bound |
//! |---|---|---|
//! | [`StaticLocalBroadcast`] | static protocol model (Fig. 1 row 4) | `O(log n log Δ)` |
//! | [`UniformLocalBroadcast`] | folklore baseline | `O(Δ log n)` |
//! | [`RoundRobinLocalBroadcast`] | any model (footnote 4 fallback) | `O(n)` deterministic |
//! | [`GeoLocalBroadcast`] | oblivious dual graph + geographic constraint (Thm 4.6) | `O(log² n log Δ)` |

mod geo;
mod round_robin;
mod static_decay;
mod uniform;

pub use geo::{GeoConfig, GeoLocalBroadcast, GeoProcess, GeoStage};
pub use round_robin::{RoundRobinLocalBroadcast, RoundRobinLocalProcess};
pub use static_decay::{StaticLocalBroadcast, StaticLocalProcess};
pub use uniform::{UniformLocalBroadcast, UniformLocalProcess};
