//! Deterministic round-robin local broadcast.
//!
//! Footnote 4 of the paper: local broadcast can always be solved in `O(n)`
//! rounds by round-robin over the node identifiers — each broadcaster
//! transmits alone in its own slot, so every receiver hears its lowest-id
//! broadcasting neighbor within `n` rounds, under *any* link process. This is
//! the matching upper bound for the offline adaptive `Ω(n)` lower bound row
//! of Figure 1.

use std::sync::Arc;

use dradio_sim::{Action, Message, Process, ProcessContext, ProcessFactory, Role, Round};
use rand::RngCore;

use crate::kinds;

/// Constructor for the round-robin local broadcast algorithm.
///
/// # Example
///
/// ```
/// use dradio_core::local::RoundRobinLocalBroadcast;
/// let factory = RoundRobinLocalBroadcast::factory(16);
/// let _ = factory;
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinLocalBroadcast;

impl RoundRobinLocalBroadcast {
    /// Builds a process factory for a network of `n` nodes.
    pub fn factory(n: usize) -> ProcessFactory {
        Arc::new(move |ctx: &ProcessContext| {
            Box::new(RoundRobinLocalProcess::new(ctx, n)) as Box<dyn Process>
        })
    }
}

/// Per-node state of the round-robin local broadcast.
#[derive(Debug)]
pub struct RoundRobinLocalProcess {
    id: dradio_graphs::NodeId,
    n: usize,
    message: Option<Message>,
}

impl RoundRobinLocalProcess {
    /// Creates the process for one node of an `n`-node network.
    pub fn new(ctx: &ProcessContext, n: usize) -> Self {
        let message = (ctx.role == Role::Broadcaster)
            .then(|| Message::plain(ctx.id, kinds::DATA, ctx.id.index() as u64));
        RoundRobinLocalProcess {
            id: ctx.id,
            n: n.max(1),
            message,
        }
    }
}

impl Process for RoundRobinLocalProcess {
    fn on_round(&mut self, round: Round, _rng: &mut dyn RngCore) -> Action {
        match &self.message {
            Some(m) if round.index() % self.n == self.id.index() => Action::Transmit(m.clone()),
            _ => Action::Listen,
        }
    }

    fn transmit_probability(&self, round: Round) -> f64 {
        if self.message.is_some() && round.index() % self.n == self.id.index() {
            1.0
        } else {
            0.0
        }
    }

    fn is_informed(&self) -> bool {
        self.message.is_some()
    }

    fn name(&self) -> &'static str {
        "round-robin-local"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::LocalBroadcastProblem;
    use dradio_graphs::{topology, NodeId};
    use dradio_sim::{Assignment, SimConfig, Simulator, StaticLinks};

    #[test]
    fn completes_within_n_rounds_on_any_topology() {
        for dual in [
            topology::clique(12),
            topology::line(12).unwrap(),
            topology::dual_clique(12).unwrap(),
            topology::bracelet(3).unwrap().into_dual(),
        ] {
            let n = dual.len();
            let broadcasters: Vec<NodeId> = (0..n).step_by(2).map(NodeId::new).collect();
            let problem = LocalBroadcastProblem::new(broadcasters.clone());
            let outcome = Simulator::new(
                dual.clone(),
                RoundRobinLocalBroadcast::factory(n),
                Assignment::local(n, &broadcasters),
                Box::new(StaticLinks::all()),
                SimConfig::default().with_max_rounds(n + 1),
            )
            .unwrap()
            .run(problem.stop_condition(&dual));
            assert!(
                outcome.completed,
                "round robin must finish within n rounds on {}",
                dual.name()
            );
            assert!(outcome.cost() <= n);
            assert_eq!(outcome.metrics.collisions, 0);
            assert!(problem.verify(&dual, &outcome.history));
        }
    }

    #[test]
    fn only_broadcasters_use_their_slot() {
        let ctx = ProcessContext::new(NodeId::new(3), 6, 5, Role::Relay);
        let mut p = RoundRobinLocalProcess::new(&ctx, 6);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        use rand::SeedableRng;
        for r in 0..12 {
            assert_eq!(p.on_round(Round::new(r), &mut rng), Action::Listen);
        }
    }
}
