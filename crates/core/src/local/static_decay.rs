//! Decay-based local broadcast for the static protocol model.
//!
//! A slight tweak of the BGI strategy (as observed in the contention
//! management paper the authors cite as [8]) solves local broadcast in
//! `O(log n log Δ)` rounds in the static model: every broadcaster cycles
//! through the `⌈log₂ Δ⌉ + 1` decay probabilities `1/2, …, 1/(2Δ)`. For every
//! receiver there is a probability level matching the number of broadcasting
//! neighbors, and at that level the receiver hears a lone transmitter with
//! constant probability.
//!
//! Its fixed schedule makes it the natural *victim* algorithm for the
//! bracelet oblivious lower-bound experiment (E3): an adversary that knows
//! the schedule (but not the coins) can still do damage in non-geographic
//! topologies.

use std::sync::Arc;

use dradio_sim::process::log2_ceil;
use dradio_sim::sampling::bernoulli;
use dradio_sim::{Action, Message, Process, ProcessContext, ProcessFactory, Role, Round};
use rand::RngCore;

use crate::decay::DecaySchedule;
use crate::kinds;

/// Constructor for the static-model decay local broadcast.
///
/// # Example
///
/// ```
/// use dradio_core::local::StaticLocalBroadcast;
/// let factory = StaticLocalBroadcast::factory(128, 16);
/// let _ = factory;
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticLocalBroadcast;

impl StaticLocalBroadcast {
    /// Builds a process factory for a network of `n` nodes with maximum
    /// degree `max_degree`.
    pub fn factory(_n: usize, max_degree: usize) -> ProcessFactory {
        let levels = log2_ceil(max_degree.max(2)) + 1;
        Arc::new(move |ctx: &ProcessContext| {
            Box::new(StaticLocalProcess::new(ctx, DecaySchedule::new(levels))) as Box<dyn Process>
        })
    }
}

/// Per-node state of the static decay local broadcast.
#[derive(Debug)]
pub struct StaticLocalProcess {
    message: Option<Message>,
    schedule: DecaySchedule,
}

impl StaticLocalProcess {
    /// Creates the process for one node; only broadcasters ever transmit.
    pub fn new(ctx: &ProcessContext, schedule: DecaySchedule) -> Self {
        let message = (ctx.role == Role::Broadcaster)
            .then(|| Message::plain(ctx.id, kinds::DATA, ctx.id.index() as u64));
        StaticLocalProcess { message, schedule }
    }
}

impl Process for StaticLocalProcess {
    fn on_round(&mut self, round: Round, rng: &mut dyn RngCore) -> Action {
        match &self.message {
            Some(m) if bernoulli(rng, self.schedule.probability(round.index())) => {
                Action::Transmit(m.clone())
            }
            _ => Action::Listen,
        }
    }

    fn transmit_probability(&self, round: Round) -> f64 {
        if self.message.is_some() {
            self.schedule.probability(round.index())
        } else {
            0.0
        }
    }

    fn is_informed(&self) -> bool {
        self.message.is_some()
    }

    fn name(&self) -> &'static str {
        "static-decay-local"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::LocalBroadcastProblem;
    use dradio_graphs::{topology, NodeId};
    use dradio_sim::{Assignment, SimConfig, Simulator, StaticLinks};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn relays_never_transmit() {
        let ctx = ProcessContext::new(NodeId::new(1), 16, 4, Role::Relay);
        let mut p = StaticLocalProcess::new(&ctx, DecaySchedule::new(3));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for r in 0..100 {
            assert_eq!(p.on_round(Round::new(r), &mut rng), Action::Listen);
        }
        assert!(!p.is_informed());
    }

    #[test]
    fn broadcasters_follow_the_degree_schedule() {
        let ctx = ProcessContext::new(NodeId::new(1), 256, 16, Role::Broadcaster);
        let levels = log2_ceil(16) + 1; // 5
        let p = StaticLocalProcess::new(&ctx, DecaySchedule::new(levels));
        assert!((p.transmit_probability(Round::new(0)) - 0.5).abs() < 1e-12);
        assert!((p.transmit_probability(Round::new(levels)) - 0.5).abs() < 1e-12);
        assert!(p.transmit_probability(Round::new(levels - 1)) < 0.05);
    }

    #[test]
    fn solves_local_broadcast_on_a_static_star() {
        // Hub 0 with 15 leaves, all leaves broadcasting: the hub must hear
        // one of them.
        let n = 16;
        let dual = topology::star(n).unwrap();
        let broadcasters: Vec<NodeId> = (1..n).map(NodeId::new).collect();
        let problem = LocalBroadcastProblem::new(broadcasters.clone());
        let outcome = Simulator::new(
            dual.clone(),
            StaticLocalBroadcast::factory(n, dual.max_degree()),
            Assignment::local(n, &broadcasters),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_seed(3).with_max_rounds(2_000),
        )
        .unwrap()
        .run(problem.stop_condition(&dual));
        assert!(outcome.completed);
        assert!(problem.verify(&dual, &outcome.history));
    }

    #[test]
    fn solves_local_broadcast_on_geometric_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let dual =
            topology::random_geometric(&topology::GeometricConfig::new(60, 4.0, 1.5), &mut rng)
                .unwrap();
        let n = dual.len();
        let broadcasters: Vec<NodeId> = (0..n).step_by(3).map(NodeId::new).collect();
        let problem = LocalBroadcastProblem::new(broadcasters.clone());
        let outcome = Simulator::new(
            dual.clone(),
            StaticLocalBroadcast::factory(n, dual.max_degree()),
            Assignment::local(n, &broadcasters),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_seed(6).with_max_rounds(5_000),
        )
        .unwrap()
        .run(problem.stop_condition(&dual));
        assert!(outcome.completed);
        assert!(problem.verify(&dual, &outcome.history));
    }
}
