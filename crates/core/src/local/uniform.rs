//! Uniform-probability local broadcast baseline.
//!
//! Every broadcaster transmits with probability `1/Δ` in every round. When a
//! receiver neighbors `k ≤ Δ` broadcasters, the probability that exactly one
//! transmits is `k/Δ · (1 - 1/Δ)^{k-1} ≥ k/(eΔ)`, so the expected time to
//! hear someone is `O(Δ/k · 1) = O(Δ)` and `O(Δ log n)` suffices for all
//! receivers with high probability. This folklore baseline is slower than
//! decay when `k ≪ Δ` and serves as a contrast series in the local broadcast
//! experiments.

use std::sync::Arc;

use dradio_sim::sampling::bernoulli;
use dradio_sim::{Action, Message, Process, ProcessContext, ProcessFactory, Role, Round};
use rand::RngCore;

use crate::kinds;

/// Constructor for the uniform-probability local broadcast baseline.
///
/// # Example
///
/// ```
/// use dradio_core::local::UniformLocalBroadcast;
/// let factory = UniformLocalBroadcast::factory(128, 16);
/// let _ = factory;
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformLocalBroadcast;

impl UniformLocalBroadcast {
    /// Builds a process factory for a network of `n` nodes with maximum
    /// degree `max_degree`.
    pub fn factory(_n: usize, max_degree: usize) -> ProcessFactory {
        let p = 1.0 / max_degree.max(2) as f64;
        Arc::new(move |ctx: &ProcessContext| {
            Box::new(UniformLocalProcess::new(ctx, p)) as Box<dyn Process>
        })
    }
}

/// Per-node state of the uniform local broadcast baseline.
#[derive(Debug)]
pub struct UniformLocalProcess {
    message: Option<Message>,
    p: f64,
}

impl UniformLocalProcess {
    /// Creates the process for one node with per-round transmit probability
    /// `p` (broadcasters only).
    pub fn new(ctx: &ProcessContext, p: f64) -> Self {
        let message = (ctx.role == Role::Broadcaster)
            .then(|| Message::plain(ctx.id, kinds::DATA, ctx.id.index() as u64));
        UniformLocalProcess { message, p }
    }
}

impl Process for UniformLocalProcess {
    fn on_round(&mut self, _round: Round, rng: &mut dyn RngCore) -> Action {
        match &self.message {
            Some(m) if bernoulli(rng, self.p) => Action::Transmit(m.clone()),
            _ => Action::Listen,
        }
    }

    fn transmit_probability(&self, _round: Round) -> f64 {
        if self.message.is_some() {
            self.p
        } else {
            0.0
        }
    }

    fn is_informed(&self) -> bool {
        self.message.is_some()
    }

    fn name(&self) -> &'static str {
        "uniform-local"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::LocalBroadcastProblem;
    use dradio_graphs::{topology, NodeId};
    use dradio_sim::{Assignment, SimConfig, Simulator, StaticLinks};

    #[test]
    fn probability_is_inverse_degree() {
        let factory = UniformLocalBroadcast::factory(100, 25);
        let ctx = ProcessContext::new(NodeId::new(0), 100, 25, Role::Broadcaster);
        let p = factory(&ctx);
        assert!((p.transmit_probability(Round::ZERO) - 0.04).abs() < 1e-12);
        let relay_ctx = ProcessContext::new(NodeId::new(1), 100, 25, Role::Relay);
        let relay = factory(&relay_ctx);
        assert_eq!(relay.transmit_probability(Round::ZERO), 0.0);
    }

    #[test]
    fn degenerate_degree_is_clamped() {
        let factory = UniformLocalBroadcast::factory(10, 0);
        let ctx = ProcessContext::new(NodeId::new(0), 10, 0, Role::Broadcaster);
        let p = factory(&ctx);
        assert!(p.transmit_probability(Round::ZERO) <= 0.5);
    }

    #[test]
    fn solves_local_broadcast_on_a_clique() {
        let n = 24;
        let dual = topology::clique(n);
        let broadcasters: Vec<NodeId> = (0..n / 2).map(NodeId::new).collect();
        let problem = LocalBroadcastProblem::new(broadcasters.clone());
        let outcome = Simulator::new(
            dual.clone(),
            UniformLocalBroadcast::factory(n, dual.max_degree()),
            Assignment::local(n, &broadcasters),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_seed(2).with_max_rounds(10_000),
        )
        .unwrap()
        .run(problem.stop_condition(&dual));
        assert!(outcome.completed);
        assert!(problem.verify(&dual, &outcome.history));
    }
}
