//! Problem definitions: global and local broadcast.
//!
//! A problem bundles together the role [`Assignment`] handed to the
//! simulator, the [`StopCondition`] defining completion, and an independent
//! `verify` check over the recorded [`History`] so experiments can assert
//! correctness separately from termination.

use dradio_graphs::{DualGraph, NodeId};
use dradio_sim::{Assignment, History, StopCondition};
use rand::Rng;

use crate::kinds;

/// The global broadcast problem: a designated source must deliver its message
/// to every node (Section 2 of the paper).
///
/// # Example
///
/// ```
/// use dradio_core::problem::GlobalBroadcastProblem;
/// use dradio_graphs::NodeId;
/// let p = GlobalBroadcastProblem::new(NodeId::new(0));
/// assert_eq!(p.source(), NodeId::new(0));
/// let assignment = p.assignment(8);
/// assert_eq!(assignment.source(), Some(NodeId::new(0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalBroadcastProblem {
    source: NodeId,
}

impl GlobalBroadcastProblem {
    /// Creates the problem with the given source.
    pub fn new(source: NodeId) -> Self {
        GlobalBroadcastProblem { source }
    }

    /// The designated source node.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The role assignment for a network of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if the source is out of range for `n`.
    pub fn assignment(&self, n: usize) -> Assignment {
        Assignment::global(n, self.source)
    }

    /// The completion condition: every node except the source has received
    /// the payload message.
    pub fn stop_condition(&self) -> StopCondition {
        StopCondition::global_broadcast(kinds::DATA, self.source)
    }

    /// Checks, from the recorded history, that the problem was actually
    /// solved: every node other than the source received a
    /// [`kinds::DATA`] message.
    pub fn verify(&self, dual: &DualGraph, history: &History) -> bool {
        NodeId::all(dual.len())
            .filter(|&u| u != self.source)
            .all(|u| history.received_kind(u, kinds::DATA))
    }
}

/// The local broadcast problem: every node of the broadcaster set `B` is
/// given a message; the receiver set `R` consists of the `G`-neighbors of
/// `B`, and the problem (in the receiver-centric form the paper studies) is
/// solved when every node of `R` has received a payload message from some
/// node of `B`.
///
/// By default `R` excludes nodes that are themselves broadcasters: a
/// broadcaster spends its time transmitting and the paper's receiver-centric
/// guarantee is about *listeners* neighboring `B`. Call
/// [`LocalBroadcastProblem::include_broadcasters`] for the stricter variant
/// in which broadcasters neighboring other broadcasters must also receive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalBroadcastProblem {
    broadcasters: Vec<NodeId>,
    include_broadcasters: bool,
}

impl LocalBroadcastProblem {
    /// Creates the problem with an explicit broadcaster set.
    pub fn new(mut broadcasters: Vec<NodeId>) -> Self {
        broadcasters.sort_unstable();
        broadcasters.dedup();
        LocalBroadcastProblem {
            broadcasters,
            include_broadcasters: false,
        }
    }

    /// Samples `count` distinct broadcasters uniformly at random from the
    /// nodes of `dual`.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the number of nodes.
    pub fn random<R: Rng + ?Sized>(dual: &DualGraph, count: usize, rng: &mut R) -> Self {
        let n = dual.len();
        assert!(
            count <= n,
            "cannot sample {count} broadcasters from {n} nodes"
        );
        let mut ids: Vec<usize> = (0..n).collect();
        // Partial Fisher-Yates shuffle.
        for i in 0..count {
            let j = rng.gen_range(i..n);
            ids.swap(i, j);
        }
        LocalBroadcastProblem::new(ids[..count].iter().map(|&i| NodeId::new(i)).collect())
    }

    /// Also require broadcasters that neighbor other broadcasters to receive
    /// a message.
    pub fn include_broadcasters(mut self, include: bool) -> Self {
        self.include_broadcasters = include;
        self
    }

    /// The broadcaster set `B`, sorted.
    pub fn broadcasters(&self) -> &[NodeId] {
        &self.broadcasters
    }

    /// The receiver set `R` for the given network: nodes with at least one
    /// `G`-neighbor in `B` (excluding members of `B` unless
    /// [`include_broadcasters`](Self::include_broadcasters) was requested).
    pub fn receivers(&self, dual: &DualGraph) -> Vec<NodeId> {
        let is_broadcaster = |u: NodeId| self.broadcasters.binary_search(&u).is_ok();
        NodeId::all(dual.len())
            .filter(|&u| self.include_broadcasters || !is_broadcaster(u))
            .filter(|&u| dual.g_neighbors(u).iter().any(|&v| is_broadcaster(v)))
            .collect()
    }

    /// The role assignment for a network of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if any broadcaster is out of range for `n`.
    pub fn assignment(&self, n: usize) -> Assignment {
        Assignment::local(n, &self.broadcasters)
    }

    /// The completion condition for the given network: every receiver hears a
    /// payload ([`kinds::DATA`]) message from some broadcaster.
    pub fn stop_condition(&self, dual: &DualGraph) -> StopCondition {
        StopCondition::local_broadcast_kind(
            self.receivers(dual),
            self.broadcasters.clone(),
            kinds::DATA,
        )
    }

    /// Checks, from the recorded history, that every receiver heard a payload
    /// message from some broadcaster.
    pub fn verify(&self, dual: &DualGraph, history: &History) -> bool {
        let receivers = self.receivers(dual);
        receivers.iter().all(|&u| {
            history.records().iter().any(|record| {
                record.deliveries.iter().any(|d| {
                    d.receiver == u
                        && d.message.kind() == kinds::DATA
                        && self.broadcasters.binary_search(&d.sender).is_ok()
                })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dradio_graphs::topology;
    use dradio_sim::{Delivery, Message, RoundRecord};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn global_problem_accessors() {
        let p = GlobalBroadcastProblem::new(NodeId::new(2));
        assert_eq!(p.source(), NodeId::new(2));
        let a = p.assignment(5);
        assert_eq!(a.source(), Some(NodeId::new(2)));
        assert_eq!(p.stop_condition().max_node_index(), Some(2));
    }

    #[test]
    fn global_verify_requires_everyone_but_source() {
        let dual = topology::line(3).unwrap();
        let p = GlobalBroadcastProblem::new(NodeId::new(0));
        let mut history = History::new(3);
        history.push(RoundRecord {
            round: 0.into(),
            transmitters: vec![NodeId::new(0)],
            active_dynamic_edges: vec![],
            deliveries: vec![Delivery {
                receiver: NodeId::new(1),
                sender: NodeId::new(0),
                message: Message::plain(NodeId::new(0), kinds::DATA, 0),
            }],
        });
        assert!(!p.verify(&dual, &history));
        history.push(RoundRecord {
            round: 1.into(),
            transmitters: vec![NodeId::new(1)],
            active_dynamic_edges: vec![],
            deliveries: vec![Delivery {
                receiver: NodeId::new(2),
                sender: NodeId::new(1),
                message: Message::plain(NodeId::new(0), kinds::DATA, 0),
            }],
        });
        assert!(p.verify(&dual, &history));
    }

    #[test]
    fn local_problem_deduplicates_and_sorts_broadcasters() {
        let p = LocalBroadcastProblem::new(vec![NodeId::new(3), NodeId::new(1), NodeId::new(3)]);
        assert_eq!(p.broadcasters(), &[NodeId::new(1), NodeId::new(3)]);
    }

    #[test]
    fn receivers_are_g_neighbors_of_broadcasters() {
        // Line 0-1-2-3 with broadcaster {1}: receivers are 0 and 2.
        let dual = topology::line(4).unwrap();
        let p = LocalBroadcastProblem::new(vec![NodeId::new(1)]);
        assert_eq!(p.receivers(&dual), vec![NodeId::new(0), NodeId::new(2)]);
    }

    #[test]
    fn receivers_can_include_broadcasters_on_request() {
        // Line 0-1-2 with broadcasters {0, 1}: by default only node 2 (and
        // node... 0's neighbor 1 is a broadcaster but 0 is excluded); with
        // inclusion, 0 and 1 also count because they neighbor each other.
        let dual = topology::line(3).unwrap();
        let p = LocalBroadcastProblem::new(vec![NodeId::new(0), NodeId::new(1)]);
        assert_eq!(p.receivers(&dual), vec![NodeId::new(2)]);
        let p = p.include_broadcasters(true);
        assert_eq!(
            p.receivers(&dual),
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]
        );
    }

    #[test]
    fn isolated_broadcaster_has_no_receivers() {
        // Two disconnected stars cannot happen (G must be connected for the
        // problems), but a broadcaster whose only neighbors are broadcasters
        // yields an empty receiver contribution.
        let dual = topology::clique(3);
        let p = LocalBroadcastProblem::new(vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
        assert!(p.receivers(&dual).is_empty());
    }

    #[test]
    fn random_broadcasters_are_distinct_and_in_range() {
        let dual = topology::clique(20);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let p = LocalBroadcastProblem::random(&dual, 8, &mut rng);
        assert_eq!(p.broadcasters().len(), 8);
        assert!(p.broadcasters().iter().all(|u| u.index() < 20));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn random_broadcasters_rejects_oversized_count() {
        let dual = topology::clique(5);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let _ = LocalBroadcastProblem::random(&dual, 6, &mut rng);
    }

    #[test]
    fn local_verify_requires_data_from_broadcasters() {
        let dual = topology::line(3).unwrap();
        let p = LocalBroadcastProblem::new(vec![NodeId::new(1)]);
        let mut history = History::new(3);
        // A SEED message from the broadcaster does not count.
        history.push(RoundRecord {
            round: 0.into(),
            transmitters: vec![NodeId::new(1)],
            active_dynamic_edges: vec![],
            deliveries: vec![
                Delivery {
                    receiver: NodeId::new(0),
                    sender: NodeId::new(1),
                    message: Message::plain(NodeId::new(1), kinds::SEED, 0),
                },
                Delivery {
                    receiver: NodeId::new(2),
                    sender: NodeId::new(1),
                    message: Message::plain(NodeId::new(1), kinds::DATA, 0),
                },
            ],
        });
        assert!(!p.verify(&dual, &history));
        history.push(RoundRecord {
            round: 1.into(),
            transmitters: vec![NodeId::new(1)],
            active_dynamic_edges: vec![],
            deliveries: vec![Delivery {
                receiver: NodeId::new(0),
                sender: NodeId::new(1),
                message: Message::plain(NodeId::new(1), kinds::DATA, 0),
            }],
        });
        assert!(p.verify(&dual, &history));
    }

    #[test]
    fn stop_condition_mirrors_receivers() {
        let dual = topology::star(5).unwrap();
        let p = LocalBroadcastProblem::new(vec![NodeId::new(1), NodeId::new(2)]);
        match p.stop_condition(&dual) {
            StopCondition::NodesReceivedKindFrom {
                receivers,
                senders,
                kind,
            } => {
                assert_eq!(receivers, vec![NodeId::new(0)]);
                assert_eq!(senders, vec![NodeId::new(1), NodeId::new(2)]);
                assert_eq!(kind, kinds::DATA);
            }
            other => panic!("unexpected stop condition {other:?}"),
        }
    }
}
