//! Property-based tests for the algorithm crate: decay schedules, hitting
//! game invariants, problem definitions, and algorithm state machines.

use dradio_core::algorithms::{GlobalAlgorithm, LocalAlgorithm};
use dradio_core::decay::{level_probability, DecaySchedule, PermutedDecaySchedule};
use dradio_core::hitting::{lemma_3_2_bound, play, HittingGame, SweepPlayer, UniformRandomPlayer};
use dradio_core::problem::{GlobalBroadcastProblem, LocalBroadcastProblem};
use dradio_graphs::{topology, NodeId};
use dradio_sim::process::log2_ceil;
use dradio_sim::{BitString, ProcessContext, Role, Round, SimConfig, Simulator, StaticLinks};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Decay levels always lie in [1, levels] and probabilities in (0, 1/2].
    #[test]
    fn decay_levels_and_probabilities_are_bounded(levels in 1usize..20, step in 0usize..10_000) {
        let fixed = DecaySchedule::new(levels);
        let level = fixed.level(step);
        prop_assert!((1..=levels).contains(&level));
        let p = fixed.probability(step);
        prop_assert!(p > 0.0 && p <= 0.5);
        prop_assert!((p - level_probability(level)).abs() < 1e-15);
    }

    /// Permuted decay is a deterministic function of (bits, step) and stays
    /// within the level range even for adversarially short bit strings.
    #[test]
    fn permuted_decay_is_deterministic_and_bounded(
        levels in 1usize..20,
        bit_len in 0usize..200,
        step in 0usize..5_000,
        seed in 0u64..1_000,
    ) {
        let schedule = PermutedDecaySchedule::new(levels);
        let bits = BitString::random(bit_len, &mut ChaCha8Rng::seed_from_u64(seed));
        let a = schedule.level(&bits, step);
        let b = schedule.level(&bits, step);
        prop_assert_eq!(a, b);
        prop_assert!((1..=levels.max(1)).contains(&a));
    }

    /// Two different seeds give permutations that differ somewhere (for any
    /// non-trivial level count).
    #[test]
    fn permuted_decay_depends_on_the_bits(seed_a in 0u64..500, seed_b in 501u64..1_000) {
        let schedule = PermutedDecaySchedule::new(8);
        let a = BitString::random(4096, &mut ChaCha8Rng::seed_from_u64(seed_a));
        let b = BitString::random(4096, &mut ChaCha8Rng::seed_from_u64(seed_b));
        let differing = (0..256).filter(|&s| schedule.level(&a, s) != schedule.level(&b, s)).count();
        prop_assert!(differing > 0);
    }

    /// The hitting game counts guesses correctly and the sweep player always
    /// wins in exactly `target` rounds.
    #[test]
    fn hitting_game_bookkeeping(beta in 2u64..200, target_offset in 0u64..200) {
        let target = target_offset % beta + 1;
        let mut game = HittingGame::new(beta, target).unwrap();
        let mut player = SweepPlayer::new(beta);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let rounds = play(&mut game, &mut player, beta as usize, &mut rng).unwrap();
        prop_assert_eq!(rounds as u64, target);
        prop_assert_eq!(game.guesses_made(), target);
        prop_assert!(game.is_won());
    }

    /// Lemma 3.2's bound is monotone in k, anti-monotone in beta, and within
    /// [0, 1].
    #[test]
    fn lemma_bound_shape(beta in 2u64..10_000, k in 0u64..10_000) {
        let bound = lemma_3_2_bound(beta, k);
        prop_assert!((0.0..=1.0).contains(&bound));
        prop_assert!(lemma_3_2_bound(beta, k + 1) >= bound);
        if beta > 2 {
            prop_assert!(lemma_3_2_bound(beta - 1, k) >= bound);
        }
    }

    /// The uniform random player's guesses are always in range.
    #[test]
    fn uniform_player_guesses_in_range(beta in 1u64..500, seed in 0u64..100) {
        use dradio_core::hitting::HittingPlayer;
        let mut player = UniformRandomPlayer::new(beta);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for round in 0..50 {
            let guess = player.next_guess(round, &mut rng);
            prop_assert!((1..=beta.max(1)).contains(&guess));
        }
    }

    /// Local broadcast receivers are exactly the non-broadcaster nodes with a
    /// reliable broadcaster neighbor, for arbitrary broadcaster sets on
    /// arbitrary dual cliques.
    #[test]
    fn receiver_set_definition(half in 2usize..12, mask in 0u32..4096) {
        let n = 2 * half;
        let dual = topology::dual_clique(n).unwrap();
        let broadcasters: Vec<NodeId> =
            (0..n).filter(|i| mask >> (i % 12) & 1 == 1).map(NodeId::new).collect();
        let problem = LocalBroadcastProblem::new(broadcasters.clone());
        let receivers = problem.receivers(&dual);
        for u in NodeId::all(n) {
            let is_broadcaster = problem.broadcasters().contains(&u);
            let has_neighbor = dual.g_neighbors(u).iter().any(|v| problem.broadcasters().contains(v));
            let expected = !is_broadcaster && has_neighbor;
            prop_assert_eq!(receivers.contains(&u), expected, "node {}", u);
        }
    }

    /// The transmit probability every algorithm reports is a genuine
    /// probability, and relays of local algorithms never transmit.
    #[test]
    fn transmit_probabilities_are_probabilities(
        n in 4usize..128,
        round in 0usize..2_000,
        seed in 0u64..50,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for algorithm in GlobalAlgorithm::all() {
            let factory = algorithm.factory(n, n - 1);
            for role in [Role::Source, Role::Relay] {
                let ctx = ProcessContext::new(NodeId::new(1), n, n - 1, role);
                let mut process = factory(&ctx);
                process.on_start(&mut rng);
                let p = process.transmit_probability(Round::new(round));
                prop_assert!((0.0..=1.0).contains(&p), "{algorithm} reported {p}");
                if role == Role::Relay {
                    prop_assert_eq!(p, 0.0);
                }
            }
        }
        for algorithm in LocalAlgorithm::all() {
            let factory = algorithm.factory(n, (n - 1).max(2));
            for role in [Role::Broadcaster, Role::Relay] {
                let ctx = ProcessContext::new(NodeId::new(1), n, (n - 1).max(2), role);
                let mut process = factory(&ctx);
                process.on_start(&mut rng);
                let p = process.transmit_probability(Round::new(round));
                prop_assert!((0.0..=1.0).contains(&p), "{algorithm} reported {p}");
            }
        }
    }

    /// Round-robin global broadcast completes on static cliques in at most
    /// 2n rounds for every size and seed (deterministic, collision free).
    #[test]
    fn round_robin_budget_property(n in 4usize..64, seed in 0u64..50) {
        let dual = topology::clique(n);
        let problem = GlobalBroadcastProblem::new(NodeId::new(0));
        let outcome = Simulator::new(
            dual,
            GlobalAlgorithm::RoundRobin.factory(n, n - 1),
            problem.assignment(n),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_seed(seed).with_max_rounds(2 * n),
        )
        .unwrap()
        .run(problem.stop_condition());
        prop_assert!(outcome.completed);
        prop_assert!(outcome.cost() <= n);
        prop_assert_eq!(outcome.metrics.collisions, 0);
    }

    /// `log2_ceil` matches the mathematical definition.
    #[test]
    fn log2_ceil_matches_definition(x in 1usize..1_000_000) {
        let k = log2_ceil(x);
        prop_assert!(1usize.checked_shl(k as u32).is_none_or(|p| p >= x));
        if k > 0 {
            prop_assert!(1usize << (k - 1) < x);
        }
    }
}

/// Global broadcast with the permuted algorithm completes on a batch of
/// random geometric networks under benign links (a deterministic integration
/// anchor kept outside proptest for clearer failure output).
#[test]
fn permuted_broadcast_completes_on_random_geometric_networks() {
    for seed in 0..3u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let Ok(dual) =
            topology::random_geometric(&topology::GeometricConfig::new(50, 2.5, 1.5), &mut rng)
        else {
            continue;
        };
        let n = dual.len();
        let problem = GlobalBroadcastProblem::new(NodeId::new(0));
        let outcome = Simulator::new(
            dual.clone(),
            GlobalAlgorithm::Permuted.factory(n, dual.max_degree()),
            problem.assignment(n),
            Box::new(StaticLinks::none()),
            SimConfig::default().with_seed(seed).with_max_rounds(20_000),
        )
        .unwrap()
        .run(problem.stop_condition());
        assert!(outcome.completed);
        assert!(problem.verify(&dual, &outcome.history));
    }
}
