//! The coordinator half of the fleet: spec checking, worker-pull
//! scheduling, worker process supervision, and supervised restarts.
//!
//! [`run_fleet`] expands a campaign, diffs the expansion against whatever
//! the output store and the shard stores already hold, and serves the
//! pending cells to `N` worker processes (each a `repro campaign worker`
//! child speaking the line-delimited [`crate::protocol`] over
//! stdin/stdout). Scheduling is **worker-pull**: the coordinator holds one
//! pending queue and answers each worker `Request` frame with one `Assign`,
//! so heterogeneous (or freshly restarted) workers drain cells at their own
//! rate instead of receiving a fixed `i mod N` shard up front. Each
//! assignment is a **lease**: if [`FleetConfig::lease_timeout`] passes
//! without an acknowledgement the cell is re-queued (exactly once per
//! expiry) and the eventual late ack — if it ever arrives — just marks the
//! cell done.
//!
//! # Failure handling
//!
//! A worker that closes its stdout (crash, kill, clean exit), corrupts its
//! stream, stops responding past [`FleetConfig::hang_timeout`], or never
//! completes the `Ready` handshake within [`FleetConfig::ready_timeout`]
//! is declared dead: its leases are re-queued and — new in this layer — the
//! coordinator **respawns** it on its original shard store, with capped
//! exponential backoff, up to [`FleetConfig::restart_budget`] times per
//! shard. The restarted worker resumes from its shard store, skipping its
//! own committed cells; a worker killed *after* appending a cell but
//! *before* acknowledging it leaves a durable record behind, the re-run
//! produces byte-identical bytes, and `campaign merge` collapses the pair.
//! Budget exhaustion degrades to plain re-assignment (the remaining workers
//! absorb the queue); only when every worker is dead with no restart in
//! flight and cells still owed does the fleet fail
//! ([`FleetError::NoSurvivors`], or [`FleetError::NeverReady`] naming the
//! shard when a worker produced no frames at all). Everything already
//! appended stays durable and a rerun resumes from the shard stores.

// lint: allow-file(D2) -- wall-clock here only tracks worker-process
// liveness (spawn/last-frame/lease/backoff times for supervision); every
// measurement is produced inside the workers from seeded RNGs.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::time::{Duration, Instant};

use dradio_campaign::{check, CampaignSpec, CellSpec, ResultStore};

use crate::error::{FleetError, Result};
use crate::faults::FaultPlan;
use crate::protocol::{parse_frame, write_frame, CoordinatorFrame, WorkerFrame};

/// Restart backoff never waits longer than this, however deep the attempt.
const BACKOFF_CAP: Duration = Duration::from_secs(5);

/// How a fleet runs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker processes to spawn (capped at the pending-cell count).
    pub workers: usize,
    /// Cell-runner threads per worker (`0` keeps the worker default: one
    /// runner with parallel trials). Forwarded as `--threads`.
    pub threads: usize,
    /// Bit-sliced batch trial execution in every worker (unbatchable cells
    /// fall back to scalar; shard store bytes are identical either way).
    /// Forwarded as `--batch`.
    pub batch: bool,
    /// Report per-cell completions, deaths, and restarts on stderr.
    pub progress: bool,
    /// Declare a ready worker dead when it owes work (or is starving the
    /// queue without requesting) and has not sent a frame for this long.
    /// `None` trusts workers to either answer or crash.
    pub hang_timeout: Option<Duration>,
    /// Re-queue a leased cell when its acknowledgement has not arrived
    /// within this long of assignment. `None` leaves leases open until the
    /// worker dies (death re-queues everything it owed regardless).
    pub lease_timeout: Option<Duration>,
    /// Kill a worker that has not completed the `Ready` handshake within
    /// this long of spawning — a worker that produces *no* frames is
    /// usually a broken worker command, not a slow cell. `None` disables
    /// the check.
    pub ready_timeout: Option<Duration>,
    /// Times each shard's worker may be respawned after dying, hanging, or
    /// corrupting its stream. `0` restores the old die-once behavior.
    pub restart_budget: usize,
    /// Base delay before a shard's first restart; doubles per attempt,
    /// capped at five seconds.
    pub restart_backoff: Duration,
    /// The chaos schedule ([`FaultPlan`]) to forward shard-by-shard as
    /// `--faults`. `None` in real runs.
    pub faults: Option<FaultPlan>,
    /// Override the worker argv (the shard flags are appended). `None`
    /// re-invokes the current executable as `campaign worker`, which is
    /// what the `repro` binary wants.
    pub worker_command: Option<Vec<String>>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 2,
            threads: 0,
            batch: false,
            progress: false,
            hang_timeout: None,
            lease_timeout: None,
            ready_timeout: Some(Duration::from_secs(30)),
            restart_budget: 2,
            restart_backoff: Duration::from_millis(250),
            faults: None,
            worker_command: None,
        }
    }
}

/// What a [`run_fleet`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetReport {
    /// Cells in the campaign expansion.
    pub total: usize,
    /// Cells already durable (output store or shard stores) before launch.
    pub skipped: usize,
    /// Cells measured and acknowledged by this run.
    pub completed: usize,
    /// Cells re-queued after a worker died, hung, or corrupted its stream.
    pub reassigned: usize,
    /// Worker processes respawned by the supervisor.
    pub restarted: usize,
    /// Leases that expired unacknowledged and re-queued their cell.
    pub lease_expired: usize,
    /// Worker processes spawned initially (restarts not counted).
    pub workers: usize,
}

/// Where worker `shard`'s store lives for a fleet writing toward `store`:
/// `results.jsonl` → `results.shard0.jsonl` (the `.shardN` lands before a
/// `.jsonl` extension, after anything else).
pub fn shard_store_path(store: &Path, shard: usize) -> PathBuf {
    let text = store.to_string_lossy();
    match text.strip_suffix(".jsonl") {
        Some(stem) => PathBuf::from(format!("{stem}.shard{shard}.jsonl")),
        None => PathBuf::from(format!("{text}.shard{shard}.jsonl")),
    }
}

/// The backoff before restart attempt `attempt` (1-based). The first
/// respawn is immediate — a single crash should not stall the shard, and
/// the resume-aware store makes an eager restart safe — then the base
/// delay doubles per repeated crash, capped at [`BACKOFF_CAP`].
fn restart_delay(backoff: Duration, attempt: usize) -> Duration {
    match attempt {
        0 | 1 => Duration::ZERO,
        _ => {
            let factor = 1u32 << (attempt - 2).min(16) as u32;
            backoff.saturating_mul(factor).min(BACKOFF_CAP)
        }
    }
}

/// Why a worker incarnation was declared dead — drives diagnostics and the
/// final error when nobody survives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Demise {
    /// Its stdout closed: crash, kill, or unexpected clean exit.
    Exited,
    /// It emitted an unparseable frame; the stream is untrusted from there.
    CorruptStream,
    /// It went silent past `hang_timeout` while owing (or starving) work.
    Hung,
    /// It never completed the `Ready` handshake within `ready_timeout`.
    NeverReady,
}

impl Demise {
    fn describe(self) -> &'static str {
        match self {
            Demise::Exited => "died",
            Demise::CorruptStream => "corrupted its stream",
            Demise::Hung => "hung",
            Demise::NeverReady => "never sent Ready",
        }
    }
}

/// One cell out on lease to a worker.
struct Lease {
    cell: CellSpec,
    /// When the lease expires unacknowledged (`None`: open-ended).
    expires: Option<Instant>,
}

/// One worker's supervision state, generic over the assignment sink so the
/// scheduling logic is testable without processes.
struct WorkerState<S: Write> {
    /// Where `Assign` frames go (`None` once closed).
    sink: Option<S>,
    /// Leased-but-unacknowledged cells, by key.
    outstanding: BTreeMap<String, Lease>,
    /// Still believed able to take work.
    alive: bool,
    /// Completed the `Ready` handshake (this incarnation).
    ready: bool,
    /// `Request` frames received but not yet answered with an `Assign`.
    credits: usize,
    /// When the worker last sent any frame (or was spawned).
    last_heard: Instant,
    /// When this incarnation was spawned (for the `Ready` deadline).
    spawned_at: Instant,
    /// Incarnation counter: events from readers of dead incarnations carry
    /// a stale generation and are ignored.
    generation: u64,
    /// Restart attempts consumed from the budget.
    restarts_used: usize,
    /// When the next restart attempt is due (`None`: not scheduled).
    restart_due: Option<Instant>,
    /// How the most recent incarnation ended.
    last_demise: Option<Demise>,
}

impl<S: Write> WorkerState<S> {
    fn new(sink: S) -> Self {
        let now = Instant::now();
        WorkerState {
            sink: Some(sink),
            outstanding: BTreeMap::new(),
            alive: true,
            ready: false,
            credits: 0,
            last_heard: now,
            spawned_at: now,
            generation: 0,
            restarts_used: 0,
            restart_due: None,
            last_demise: None,
        }
    }
}

/// Writes one `Assign` to a worker; a failure means the worker is gone.
fn try_assign<S: Write>(worker: &mut WorkerState<S>, cell: &CellSpec) -> Result<()> {
    let Some(sink) = worker.sink.as_mut() else {
        return Err(FleetError::io("worker sink already closed"));
    };
    write_frame(sink, &CoordinatorFrame::Assign { cell: cell.clone() })
}

/// The worker-pull scheduler: one pending queue, per-worker lease tables,
/// and the done-set that makes every hand-off idempotent. Pure bookkeeping
/// over abstract sinks — process supervision lives in [`run_fleet`].
struct Scheduler<S: Write> {
    /// Cells waiting for a lease, in expansion (then re-queue) order.
    pending: VecDeque<CellSpec>,
    /// Every pending cell key this fleet set out to measure.
    universe: BTreeSet<String>,
    /// Keys acknowledged durable by some worker.
    done: BTreeSet<String>,
    /// Supervision state per shard.
    workers: Vec<WorkerState<S>>,
    /// Copied from [`FleetConfig::lease_timeout`].
    lease_timeout: Option<Duration>,
    /// Round-robin cursor over workers with credits.
    next_serve: usize,
    /// Cells re-queued after their worker was declared dead.
    reassigned: usize,
    /// Leases that expired unacknowledged.
    lease_expired: usize,
    /// Universe cells acknowledged (each counted once).
    completed: usize,
}

impl<S: Write> Scheduler<S> {
    fn new(pending: Vec<CellSpec>, lease_timeout: Option<Duration>) -> Self {
        let universe = pending.iter().map(CellSpec::key).collect();
        Scheduler {
            pending: pending.into(),
            universe,
            done: BTreeSet::new(),
            workers: Vec::new(),
            lease_timeout,
            next_serve: 0,
            reassigned: 0,
            lease_expired: 0,
            completed: 0,
        }
    }

    /// Every cell the fleet owes is acknowledged durable.
    fn finished(&self) -> bool {
        self.done.len() == self.universe.len()
    }

    /// Cells not yet acknowledged durable.
    fn unassigned(&self) -> usize {
        self.universe.len() - self.done.len()
    }

    /// A worker announced an idle cell runner.
    fn on_request(&mut self, shard: usize) {
        let worker = &mut self.workers[shard];
        if worker.alive && worker.ready {
            worker.credits += 1;
        }
    }

    /// A worker acknowledged `key` durable. Returns whether this was the
    /// first acknowledgement of a universe cell (i.e. progress).
    fn on_done(&mut self, shard: usize, key: &str) -> bool {
        self.workers[shard].outstanding.remove(key);
        if self.universe.contains(key) && !self.done.contains(key) {
            self.done.insert(key.to_string());
            // A lease-expired or re-assigned twin may still be queued;
            // the late ack supersedes it.
            self.pending.retain(|cell| cell.key() != key);
            self.completed += 1;
            true
        } else {
            false
        }
    }

    /// Declares a worker unable to continue and re-queues everything it
    /// still owed (skipping cells that were acknowledged elsewhere).
    /// Returns how many cells were re-queued.
    fn abandon(&mut self, shard: usize) -> usize {
        let leases = {
            let worker = &mut self.workers[shard];
            worker.alive = false;
            worker.ready = false;
            worker.sink = None;
            worker.credits = 0;
            std::mem::take(&mut worker.outstanding)
        };
        let mut requeued = 0;
        for (key, lease) in leases {
            if !self.done.contains(&key) {
                self.pending.push_back(lease.cell);
                requeued += 1;
            }
        }
        self.reassigned += requeued;
        requeued
    }

    /// Re-queues every lease that expired unacknowledged. Removal from the
    /// lease table is what guarantees exactly one re-queue per expiry: the
    /// next expiry pass has nothing left to find.
    fn expire_leases(&mut self, now: Instant) {
        for shard in 0..self.workers.len() {
            let expired: Vec<String> = self.workers[shard]
                .outstanding
                .iter()
                .filter(|(_, lease)| lease.expires.is_some_and(|at| at <= now))
                .map(|(key, _)| key.clone())
                .collect();
            for key in expired {
                let Some(lease) = self.workers[shard].outstanding.remove(&key) else {
                    continue;
                };
                self.lease_expired += 1;
                if !self.done.contains(&key) {
                    self.pending.push_back(lease.cell);
                }
            }
        }
    }

    /// Answers outstanding `Request` credits with leases, round-robin
    /// across ready workers. Returns the shards whose sinks broke
    /// mid-assignment (their cell is back at the queue front; the caller
    /// owns their demise).
    fn serve(&mut self, now: Instant) -> Vec<usize> {
        let mut broken: Vec<usize> = Vec::new();
        let n = self.workers.len();
        loop {
            while matches!(self.pending.front(), Some(cell) if self.done.contains(&cell.key())) {
                self.pending.pop_front();
            }
            if self.pending.is_empty() {
                break;
            }
            let servable = |k: &usize| {
                let worker = &self.workers[*k];
                worker.alive
                    && worker.ready
                    && worker.credits > 0
                    && worker.sink.is_some()
                    && !broken.contains(k)
            };
            let Some(k) = (0..n).map(|i| (self.next_serve + i) % n).find(servable) else {
                break;
            };
            let Some(cell) = self.pending.pop_front() else {
                break;
            };
            match try_assign(&mut self.workers[k], &cell) {
                Ok(()) => {
                    let key = cell.key();
                    let expires = self.lease_timeout.map(|t| now + t);
                    self.workers[k]
                        .outstanding
                        .insert(key, Lease { cell, expires });
                    self.workers[k].credits -= 1;
                    self.next_serve = (k + 1) % n;
                }
                Err(_) => {
                    self.pending.push_front(cell);
                    broken.push(k);
                }
            }
        }
        broken
    }
}

/// What a worker's stdout reader forwards to the supervision loop.
enum Event {
    /// A parsed frame.
    Frame(WorkerFrame),
    /// An unparseable line — protocol corruption, the worker is untrusted
    /// from here on.
    Corrupt(String),
    /// The worker's stdout closed: it exited or crashed.
    Eof,
}

/// Drains one worker incarnation's stdout into the event channel, tagging
/// every event with the incarnation's generation so the supervision loop
/// can discard stragglers from replaced workers.
fn reader_loop(
    stdout: ChildStdout,
    shard: usize,
    generation: u64,
    tx: mpsc::Sender<(usize, u64, Event)>,
) {
    for line in BufReader::new(stdout).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let event = match parse_frame::<WorkerFrame>(&line) {
            Ok(frame) => Event::Frame(frame),
            Err(e) => Event::Corrupt(e.to_string()),
        };
        let corrupt = matches!(event, Event::Corrupt(_));
        if tx.send((shard, generation, event)).is_err() || corrupt {
            return;
        }
    }
    let _ = tx.send((shard, generation, Event::Eof));
}

/// Collects the keys already durable in `path`, if it exists. A store that
/// exists but fails validation is a hard error — fleeting past corruption
/// would burn cycles re-measuring cells that merge would then refuse.
fn known_keys(path: &Path, known: &mut BTreeSet<String>) -> Result<()> {
    if !path.exists() {
        return Ok(());
    }
    let store = ResultStore::open(path).map_err(FleetError::from)?;
    for record in store.records() {
        known.insert(record.key.clone());
    }
    Ok(())
}

/// Builds the argv for one worker process.
fn worker_command(config: &FleetConfig, store: &Path, shard: usize) -> Result<Command> {
    let mut cmd = match &config.worker_command {
        Some(argv) => {
            let Some((head, tail)) = argv.split_first() else {
                return Err(FleetError::config("worker command must not be empty"));
            };
            let mut cmd = Command::new(head);
            cmd.args(tail);
            cmd
        }
        None => {
            let exe = std::env::current_exe()
                .map_err(|e| FleetError::io(format!("cannot locate own executable: {e}")))?;
            let mut cmd = Command::new(exe);
            cmd.args(["campaign", "worker"]);
            cmd
        }
    };
    cmd.arg("--store").arg(shard_store_path(store, shard));
    cmd.arg("--shard").arg(shard.to_string());
    if config.threads > 0 {
        cmd.arg("--threads").arg(config.threads.to_string());
    }
    if config.batch {
        cmd.arg("--batch");
    }
    if let Some(plan) = &config.faults {
        let shard_faults = plan.for_shard(shard);
        if !shard_faults.is_empty() {
            let json = serde_json::to_string(&shard_faults)
                .map_err(|e| FleetError::protocol(format!("cannot serialize faults: {e}")))?;
            cmd.arg("--faults").arg(json);
        }
    }
    cmd.stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    Ok(cmd)
}

/// Spawns one worker incarnation with piped stdio.
fn spawn_worker(
    config: &FleetConfig,
    store: &Path,
    shard: usize,
) -> Result<(Child, ChildStdin, ChildStdout)> {
    let mut child = worker_command(config, store, shard)?
        .spawn()
        .map_err(|e| FleetError::io(format!("cannot spawn worker {shard}: {e}")))?;
    match (child.stdin.take(), child.stdout.take()) {
        (Some(stdin), Some(stdout)) => Ok((child, stdin, stdout)),
        _ => {
            let _ = child.kill();
            let _ = child.wait();
            Err(FleetError::io("worker stdio was not piped"))
        }
    }
}

/// Declares a worker incarnation dead: kills and reaps the child, re-queues
/// its leases, and schedules a supervised restart if the shard's budget
/// allows. Idempotent per incarnation (straggler events no-op).
fn note_worker_gone(
    scheduler: &mut Scheduler<ChildStdin>,
    children: &mut [Option<Child>],
    config: &FleetConfig,
    shard: usize,
    demise: Demise,
    now: Instant,
) {
    if !scheduler.workers[shard].alive {
        return;
    }
    if let Some(child) = children[shard].as_mut() {
        let _ = child.kill();
        let _ = child.wait();
    }
    children[shard] = None;
    let requeued = scheduler.abandon(shard);
    let worker = &mut scheduler.workers[shard];
    worker.last_demise = Some(demise);
    let restarting = worker.restarts_used < config.restart_budget;
    if restarting {
        worker.restarts_used += 1;
        worker.restart_due =
            Some(now + restart_delay(config.restart_backoff, worker.restarts_used));
    }
    if config.progress {
        eprintln!(
            "fleet: worker {shard} {} owing {requeued} cell(s); {}",
            demise.describe(),
            if restarting {
                "restart scheduled"
            } else {
                "restart budget spent, re-assigning"
            }
        );
    }
}

/// Runs a campaign across a self-healing fleet of local worker processes,
/// each appending to its own shard store next to `store`. Finish with
/// [`ResultStore::merge`] (`repro campaign merge`) to fold the shards into
/// `store` itself.
///
/// # Errors
///
/// [`FleetError::SpecRejected`] when `campaign check` reports warnings —
/// the coordinator refuses to fan a questionable sweep out across
/// processes. [`FleetError::Worker`] when a worker reports a cell that
/// cannot run, [`FleetError::NoSurvivors`] when every worker dies (restart
/// budgets spent) with cells still owed, [`FleetError::NeverReady`] when
/// the fleet dies and some worker never produced a single frame,
/// [`FleetError::Io`]/[`FleetError::Config`] for spawn and configuration
/// problems. Whatever completed before an error remains durable in the
/// shard stores; rerunning resumes.
pub fn run_fleet(spec: &CampaignSpec, store: &Path, config: &FleetConfig) -> Result<FleetReport> {
    if config.workers == 0 {
        return Err(FleetError::config("a fleet needs at least one worker"));
    }
    let report = check(spec).map_err(FleetError::from)?;
    if !report.is_clean() {
        return Err(FleetError::SpecRejected {
            warnings: report.warnings.iter().map(|w| w.message.clone()).collect(),
        });
    }

    let cells = spec.expand().map_err(FleetError::from)?;
    let total = cells.len();
    let mut known = BTreeSet::new();
    known_keys(store, &mut known)?;
    for shard in 0..config.workers {
        known_keys(&shard_store_path(store, shard), &mut known)?;
    }
    let pending: Vec<CellSpec> = cells
        .into_iter()
        .filter(|cell| !known.contains(&cell.key()))
        .collect();
    let skipped = total - pending.len();
    if pending.is_empty() {
        return Ok(FleetReport {
            total,
            skipped,
            ..FleetReport::default()
        });
    }

    let worker_count = config.workers.min(pending.len());
    let pending_count = pending.len();
    let mut scheduler: Scheduler<ChildStdin> = Scheduler::new(pending, config.lease_timeout);
    let mut children: Vec<Option<Child>> = Vec::with_capacity(worker_count);
    let mut stdouts: Vec<(usize, ChildStdout)> = Vec::with_capacity(worker_count);
    for shard in 0..worker_count {
        match spawn_worker(config, store, shard) {
            Ok((child, stdin, stdout)) => {
                children.push(Some(child));
                scheduler.workers.push(WorkerState::new(stdin));
                stdouts.push((shard, stdout));
            }
            Err(e) => {
                // Reap whatever already launched before reporting.
                for child in children.iter_mut().flatten() {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                return Err(e);
            }
        }
    }

    let mut restarted = 0usize;
    let mut failure: Option<FleetError> = None;

    std::thread::scope(|scope| {
        // Readers first: each worker's stdout is drained into the event
        // channel before any assignment is written, so neither side can
        // block the other on a full pipe. The sender stays alive for the
        // whole scope — liveness is decided by explicit supervision state,
        // not channel disconnection.
        let (tx, rx) = mpsc::channel::<(usize, u64, Event)>();
        for (shard, stdout) in stdouts {
            let tx = tx.clone();
            scope.spawn(move || reader_loop(stdout, shard, 0, tx));
        }

        while failure.is_none() && !scheduler.finished() {
            let now = Instant::now();

            // Respawn workers whose backoff has elapsed.
            let due: Vec<usize> = scheduler
                .workers
                .iter_mut()
                .enumerate()
                .filter(|(_, worker)| worker.restart_due.is_some_and(|due| due <= now))
                .map(|(shard, worker)| {
                    worker.restart_due = None;
                    shard
                })
                .collect();
            for shard in due {
                match spawn_worker(config, store, shard) {
                    Ok((child, stdin, stdout)) => {
                        children[shard] = Some(child);
                        let worker = &mut scheduler.workers[shard];
                        worker.sink = Some(stdin);
                        worker.alive = true;
                        worker.ready = false;
                        worker.credits = 0;
                        worker.generation += 1;
                        worker.spawned_at = now;
                        worker.last_heard = now;
                        let generation = worker.generation;
                        restarted += 1;
                        if config.progress {
                            eprintln!(
                                "fleet: worker {shard} restarted (attempt {}/{})",
                                worker.restarts_used, config.restart_budget
                            );
                        }
                        let tx = tx.clone();
                        scope.spawn(move || reader_loop(stdout, shard, generation, tx));
                    }
                    Err(e) => {
                        // A failed respawn is another demise: burn more
                        // budget on a later attempt, or degrade to plain
                        // re-assignment.
                        if config.progress {
                            eprintln!("fleet: worker {shard} failed to respawn: {e}");
                        }
                        let worker = &mut scheduler.workers[shard];
                        if worker.restarts_used < config.restart_budget {
                            worker.restarts_used += 1;
                            worker.restart_due = Some(
                                now + restart_delay(config.restart_backoff, worker.restarts_used),
                            );
                        }
                    }
                }
            }

            scheduler.expire_leases(now);
            for shard in scheduler.serve(now) {
                note_worker_gone(
                    &mut scheduler,
                    &mut children,
                    config,
                    shard,
                    Demise::Exited,
                    now,
                );
            }

            match rx.recv_timeout(Duration::from_millis(100)) {
                Ok((shard, generation, event)) => {
                    if generation != scheduler.workers[shard].generation {
                        // A straggler from a replaced incarnation.
                        continue;
                    }
                    match event {
                        Event::Frame(frame) => {
                            scheduler.workers[shard].last_heard = Instant::now();
                            match frame {
                                WorkerFrame::Ready { resumed, .. } => {
                                    scheduler.workers[shard].ready = true;
                                    if config.progress && resumed > 0 {
                                        eprintln!(
                                            "fleet: worker {shard} resumed {resumed} durable \
                                             cell(s) from its shard store"
                                        );
                                    }
                                }
                                WorkerFrame::Request => scheduler.on_request(shard),
                                WorkerFrame::Done { key, .. } => {
                                    if scheduler.on_done(shard, &key) && config.progress {
                                        eprintln!(
                                            "fleet: {}/{pending_count} cells done ({} \
                                             re-assigned, {} lease(s) expired, {restarted} \
                                             restarted)",
                                            scheduler.completed,
                                            scheduler.reassigned,
                                            scheduler.lease_expired
                                        );
                                    }
                                }
                                WorkerFrame::Failed { key, reason } => {
                                    failure = Some(FleetError::worker(
                                        shard,
                                        format!("cell {key} cannot run: {reason}"),
                                    ));
                                }
                            }
                        }
                        Event::Corrupt(reason) => {
                            if config.progress {
                                eprintln!("fleet: worker {shard} stream corrupt: {reason}");
                            }
                            note_worker_gone(
                                &mut scheduler,
                                &mut children,
                                config,
                                shard,
                                Demise::CorruptStream,
                                now,
                            );
                        }
                        Event::Eof => {
                            note_worker_gone(
                                &mut scheduler,
                                &mut children,
                                config,
                                shard,
                                Demise::Exited,
                                now,
                            );
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {}
            }

            // Deadline sweeps: never-Ready and hung workers.
            let now = Instant::now();
            let queue_waiting = !scheduler.pending.is_empty();
            let mut doomed: Vec<(usize, Demise)> = Vec::new();
            for (shard, worker) in scheduler.workers.iter().enumerate() {
                if !worker.alive {
                    continue;
                }
                if !worker.ready {
                    if config
                        .ready_timeout
                        .is_some_and(|t| now.duration_since(worker.spawned_at) > t)
                    {
                        doomed.push((shard, Demise::NeverReady));
                    }
                    continue;
                }
                if let Some(timeout) = config.hang_timeout {
                    let silent = now.duration_since(worker.last_heard) > timeout;
                    let owes = !worker.outstanding.is_empty();
                    // Ready but neither owing nor requesting while cells
                    // wait: the worker is wedged between cells.
                    let starving = queue_waiting && worker.credits == 0 && !owes;
                    if silent && (owes || starving) {
                        doomed.push((shard, Demise::Hung));
                    }
                }
            }
            for (shard, demise) in doomed {
                note_worker_gone(&mut scheduler, &mut children, config, shard, demise, now);
            }

            // Nobody alive, no restart in flight, cells still owed: done
            // for. NeverReady outranks the generic verdict because it names
            // the actionable shard (usually a broken worker command).
            if failure.is_none()
                && !scheduler.finished()
                && scheduler
                    .workers
                    .iter()
                    .all(|w| !w.alive && w.restart_due.is_none())
            {
                let unassigned = scheduler.unassigned();
                let never_ready = scheduler
                    .workers
                    .iter()
                    .position(|w| w.last_demise == Some(Demise::NeverReady));
                failure = Some(match never_ready {
                    Some(shard) => FleetError::NeverReady { shard, unassigned },
                    None => FleetError::NoSurvivors { unassigned },
                });
            }
        }

        // Shut down survivors: on success there is nothing left to assign,
        // on failure we abandon whatever is still queued. Dropping the sink
        // closes the worker's stdin, so even a worker that missed the
        // Shutdown frame exits on EOF; the readers then see stdout close
        // and the scope joins.
        for state in &mut scheduler.workers {
            if let Some(mut sink) = state.sink.take() {
                let _ = write_frame(&mut sink, &CoordinatorFrame::Shutdown);
            }
        }
        if failure.is_some() {
            // The fleet is being abandoned: kill inside the scope so every
            // reader sees EOF and the scope can join (a kill at worst
            // leaves a torn tail, which the stores repair on resume).
            for child in children.iter_mut().flatten() {
                let _ = child.kill();
            }
        }
    });

    for child in children.iter_mut().flatten() {
        let _ = child.wait();
    }

    match failure {
        Some(error) => Err(error),
        None => Ok(FleetReport {
            total,
            skipped,
            completed: scheduler.completed,
            reassigned: scheduler.reassigned,
            restarted,
            lease_expired: scheduler.lease_expired,
            workers: worker_count,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dradio_campaign::{CampaignRunner, RoundsRule, SweepGroup, TrialPolicy};
    use dradio_core::algorithms::GlobalAlgorithm;
    use dradio_scenario::{AdversarySpec, ProblemSpec, TopologySpec};

    fn small_campaign() -> CampaignSpec {
        CampaignSpec::named("fleet-test")
            .seed(9)
            .trials(TrialPolicy::Fixed(2))
            .group(
                SweepGroup::product(
                    vec![
                        TopologySpec::Clique { n: 8 },
                        TopologySpec::Clique { n: 16 },
                    ],
                    vec![
                        GlobalAlgorithm::Bgi.into(),
                        GlobalAlgorithm::Permuted.into(),
                    ],
                    vec![AdversarySpec::StaticNone],
                    vec![ProblemSpec::GlobalFrom(0)],
                )
                .rounds(RoundsRule::Fixed(2_000)),
            )
    }

    fn temp_store(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "dradio-fleet-coord-{tag}-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    /// A worker state that has handshaken and requested `credits` cells.
    fn ready_worker<S: Write>(sink: S, credits: usize) -> WorkerState<S> {
        let mut worker = WorkerState::new(sink);
        worker.ready = true;
        worker.credits = credits;
        worker
    }

    #[test]
    fn shard_stores_sit_next_to_the_output_store() {
        assert_eq!(
            shard_store_path(Path::new("results/run.campaign.jsonl"), 0),
            Path::new("results/run.campaign.shard0.jsonl")
        );
        assert_eq!(
            shard_store_path(Path::new("plain"), 12),
            Path::new("plain.shard12.jsonl")
        );
    }

    #[test]
    fn restart_backoff_doubles_per_attempt_and_caps() {
        let base = Duration::from_millis(250);
        assert_eq!(restart_delay(base, 1), Duration::ZERO);
        assert_eq!(restart_delay(base, 2), Duration::from_millis(250));
        assert_eq!(restart_delay(base, 3), Duration::from_millis(500));
        assert_eq!(restart_delay(base, 4), Duration::from_millis(1_000));
        assert_eq!(restart_delay(base, 20), BACKOFF_CAP);
        assert_eq!(restart_delay(Duration::from_secs(4), 3), BACKOFF_CAP);
    }

    #[test]
    fn serving_answers_credits_round_robin_and_leases_each_cell() {
        let cells = small_campaign().expand().unwrap();
        let now = Instant::now();
        let mut sched: Scheduler<Vec<u8>> = Scheduler::new(cells.clone(), None);
        for _ in 0..3 {
            sched.workers.push(ready_worker(Vec::new(), 1));
        }
        assert!(sched.serve(now).is_empty());
        // One credit each: cells 0..3 land round-robin, cell 3 waits.
        for (k, cell) in cells.iter().enumerate().take(3) {
            assert!(sched.workers[k].outstanding.contains_key(&cell.key()));
            assert_eq!(sched.workers[k].credits, 0);
        }
        assert_eq!(sched.pending.len(), 1);

        // The next Request gets the queued cell; the wire carries exactly
        // the assigned cells, in order.
        sched.on_request(0);
        assert!(sched.serve(now).is_empty());
        assert!(sched.workers[0].outstanding.contains_key(&cells[3].key()));
        let wire = String::from_utf8(sched.workers[0].sink.clone().unwrap()).unwrap();
        let assigned: Vec<CoordinatorFrame> =
            wire.lines().map(|l| parse_frame(l).unwrap()).collect();
        assert_eq!(
            assigned,
            vec![
                CoordinatorFrame::Assign {
                    cell: cells[0].clone()
                },
                CoordinatorFrame::Assign {
                    cell: cells[3].clone()
                },
            ]
        );
    }

    /// A sink that fails every write, like the stdin of a dead child.
    struct BrokenPipe;
    impl Write for BrokenPipe {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "worker is gone",
            ))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// Adapts the two sink shapes into one slice element type.
    enum TestSink {
        Ok(Vec<u8>),
        Broken(BrokenPipe),
    }
    impl Write for TestSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            match self {
                TestSink::Ok(v) => v.write(buf),
                TestSink::Broken(b) => b.write(buf),
            }
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn broken_sinks_are_reported_and_the_survivors_absorb_the_queue() {
        let cells = small_campaign().expand().unwrap();
        let mut sched: Scheduler<TestSink> = Scheduler::new(cells.clone(), None);
        sched
            .workers
            .push(ready_worker(TestSink::Broken(BrokenPipe), 4));
        sched
            .workers
            .push(ready_worker(TestSink::Ok(Vec::new()), 4));
        let broken = sched.serve(Instant::now());
        assert_eq!(broken, vec![0], "the broken worker is handed back");
        assert_eq!(
            sched.workers[1].outstanding.len(),
            cells.len(),
            "the survivor absorbs everything"
        );
        assert!(sched.pending.is_empty());
    }

    #[test]
    fn abandoning_a_worker_requeues_only_unacknowledged_cells() {
        let cells = small_campaign().expand().unwrap();
        let mut sched: Scheduler<Vec<u8>> = Scheduler::new(cells.clone(), None);
        sched.workers.push(ready_worker(Vec::new(), 4));
        assert!(sched.serve(Instant::now()).is_empty());
        assert!(sched.on_done(0, &cells[0].key()));
        let requeued = sched.abandon(0);
        assert_eq!(requeued, 3, "the acknowledged cell stays done");
        assert_eq!(sched.reassigned, 3);
        assert_eq!(sched.pending.len(), 3);
        assert!(!sched.workers[0].alive);
        assert_eq!(sched.completed, 1);
    }

    #[test]
    fn lease_expiry_requeues_exactly_once_per_expiry() {
        let cells = small_campaign().expand().unwrap();
        let now = Instant::now();
        let mut sched: Scheduler<Vec<u8>> = Scheduler::new(cells.clone(), Some(Duration::ZERO));
        sched.workers.push(ready_worker(Vec::new(), 4));
        assert!(sched.serve(now).is_empty());
        assert_eq!(sched.workers[0].outstanding.len(), 4);

        // Zero-length leases are expired the moment they are checked.
        sched.expire_leases(now);
        assert_eq!(sched.lease_expired, 4);
        assert_eq!(sched.pending.len(), 4, "each expiry re-queues its cell");
        assert!(sched.workers[0].outstanding.is_empty());

        // A second sweep finds nothing: one re-queue per expiry, not per
        // sweep.
        sched.expire_leases(now);
        assert_eq!(sched.lease_expired, 4);
        assert_eq!(sched.pending.len(), 4);
    }

    #[test]
    fn a_late_ack_after_expiry_supersedes_the_requeued_twin() {
        let cells = small_campaign().expand().unwrap();
        let now = Instant::now();
        let mut sched: Scheduler<Vec<u8>> = Scheduler::new(cells.clone(), Some(Duration::ZERO));
        sched.workers.push(ready_worker(Vec::new(), 4));
        assert!(sched.serve(now).is_empty());
        sched.expire_leases(now);
        assert_eq!(sched.pending.len(), 4);

        // The slow worker finishes anyway: the cell is durable in its
        // shard, so the queued twin is dropped and progress counts once.
        assert!(sched.on_done(0, &cells[0].key()));
        assert!(!sched.on_done(0, &cells[0].key()), "acks are idempotent");
        assert_eq!(sched.completed, 1);
        assert_eq!(sched.pending.len(), 3);
        assert!(!sched.finished());
        for cell in &cells[1..] {
            assert!(sched.on_done(0, &cell.key()));
        }
        assert!(sched.finished());
        assert_eq!(sched.unassigned(), 0);
    }

    #[test]
    fn zero_workers_is_a_config_error() {
        let err = run_fleet(
            &small_campaign(),
            Path::new("unused.jsonl"),
            &FleetConfig {
                workers: 0,
                ..FleetConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, FleetError::Config { .. }), "{err}");
    }

    #[test]
    fn a_spec_that_fails_check_is_refused_before_any_spawn() {
        // Duplicated groups make `campaign check` warn; the bogus worker
        // command would fail loudly if the coordinator tried to spawn.
        let dup = small_campaign().group(
            SweepGroup::product(
                vec![TopologySpec::Clique { n: 8 }],
                vec![GlobalAlgorithm::Bgi.into()],
                vec![AdversarySpec::StaticNone],
                vec![ProblemSpec::GlobalFrom(0)],
            )
            .rounds(RoundsRule::Fixed(2_000)),
        );
        let err = run_fleet(
            &dup,
            Path::new("unused.jsonl"),
            &FleetConfig {
                worker_command: Some(vec!["/nonexistent-worker".into()]),
                ..FleetConfig::default()
            },
        )
        .unwrap_err();
        let FleetError::SpecRejected { warnings } = err else {
            panic!("want SpecRejected, got {err}");
        };
        assert!(!warnings.is_empty());
    }

    #[test]
    fn a_complete_store_launches_no_workers() {
        let campaign = small_campaign();
        let path = temp_store("complete");
        let reference = CampaignRunner::new(&campaign).run_in_memory().unwrap();
        let mut bytes = Vec::new();
        for record in reference.records() {
            bytes.extend_from_slice(serde_json::to_string(record).unwrap().as_bytes());
            bytes.push(b'\n');
        }
        std::fs::write(&path, bytes).unwrap();

        let report = run_fleet(
            &campaign,
            &path,
            &FleetConfig {
                // Spawning would explode; a complete store must not spawn.
                worker_command: Some(vec!["/nonexistent-worker".into()]),
                ..FleetConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.total, 4);
        assert_eq!(report.skipped, 4);
        assert_eq!(report.workers, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn workers_that_never_handshake_fail_with_the_ready_deadline() {
        // `sh -c 'exec sleep 60'` ignores the appended shard flags, never
        // sends Ready, and never exits on its own (the exec makes kill()
        // reach the sleep itself, so its stdout closes). The old generic
        // hang_timeout cannot see this worker — it never owes a cell — so
        // the distinct spawn-to-Ready deadline must catch it, name the
        // shard, and fail once the (zero) restart budget is spent.
        let path = temp_store("never-ready");
        let err = run_fleet(
            &small_campaign(),
            &path,
            &FleetConfig {
                workers: 2,
                ready_timeout: Some(Duration::from_millis(300)),
                restart_budget: 0,
                worker_command: Some(vec!["sh".into(), "-c".into(), "exec sleep 60".into()]),
                ..FleetConfig::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                FleetError::NeverReady {
                    shard: 0,
                    unassigned: 4
                }
            ),
            "{err}"
        );
        let _ = std::fs::remove_file(&path);
    }
}
