//! The coordinator half of the fleet: spec checking, cell sharding, worker
//! process supervision, and crash re-assignment.
//!
//! [`run_fleet`] expands a campaign, diffs the expansion against whatever
//! the output store and the shard stores already hold, and fans the pending
//! cells out across `N` worker processes (each a `repro campaign worker`
//! child speaking the line-delimited [`crate::protocol`] over
//! stdin/stdout). The initial sharding is deterministic — pending cell `i`
//! goes to worker `i mod N` — so shard store contents are reproducible
//! run-to-run when nothing crashes.
//!
//! # Failure handling
//!
//! A worker that closes its stdout (crash, kill, clean exit) or stops
//! responding past [`FleetConfig::hang_timeout`] is declared dead; its
//! unacknowledged cells are re-assigned round-robin to the survivors. A
//! worker that was killed *after* appending a cell but *before*
//! acknowledging it leaves a durable record behind — the re-run produces
//! byte-identical bytes in another shard and `campaign merge` collapses
//! the pair. Only when every worker is dead with cells still owed does the
//! fleet fail ([`FleetError::NoSurvivors`]); everything already appended
//! stays durable and a rerun resumes from the shard stores.

// lint: allow-file(D2) -- wall-clock here only tracks worker-process
// liveness (spawn/last-frame times for hang detection); every measurement
// is produced inside the workers from seeded RNGs.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::time::{Duration, Instant};

use dradio_campaign::{check, CampaignSpec, CellSpec, ResultStore};

use crate::error::{FleetError, Result};
use crate::protocol::{parse_frame, write_frame, CoordinatorFrame, WorkerFrame};

/// How a fleet runs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker processes to spawn (capped at the pending-cell count).
    pub workers: usize,
    /// Cell-runner threads per worker (`0` keeps the worker default: one
    /// runner with parallel trials). Forwarded as `--threads`.
    pub threads: usize,
    /// Bit-sliced batch trial execution in every worker (unbatchable cells
    /// fall back to scalar; shard store bytes are identical either way).
    /// Forwarded as `--batch`.
    pub batch: bool,
    /// Report per-cell completions on stderr.
    pub progress: bool,
    /// Declare a worker dead when it has owed work and has not sent a frame
    /// for this long. `None` trusts workers to either answer or crash.
    pub hang_timeout: Option<Duration>,
    /// Fault injection for tests and smoke runs: worker 0 is told to abort
    /// (`--exit-after`) after this many fresh cells, exercising the
    /// re-assignment path. `None` in real runs.
    pub worker_exit_after: Option<usize>,
    /// Override the worker argv (the shard flags are appended). `None`
    /// re-invokes the current executable as `campaign worker`, which is
    /// what the `repro` binary wants.
    pub worker_command: Option<Vec<String>>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            workers: 2,
            threads: 0,
            batch: false,
            progress: false,
            hang_timeout: None,
            worker_exit_after: None,
            worker_command: None,
        }
    }
}

/// What a [`run_fleet`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FleetReport {
    /// Cells in the campaign expansion.
    pub total: usize,
    /// Cells already durable (output store or shard stores) before launch.
    pub skipped: usize,
    /// Cells measured and acknowledged by this run.
    pub completed: usize,
    /// Cells re-assigned after a worker died or hung.
    pub reassigned: usize,
    /// Worker processes actually spawned.
    pub workers: usize,
}

/// Where worker `shard`'s store lives for a fleet writing toward `store`:
/// `results.jsonl` → `results.shard0.jsonl` (the `.shardN` lands before a
/// `.jsonl` extension, after anything else).
pub fn shard_store_path(store: &Path, shard: usize) -> PathBuf {
    let text = store.to_string_lossy();
    match text.strip_suffix(".jsonl") {
        Some(stem) => PathBuf::from(format!("{stem}.shard{shard}.jsonl")),
        None => PathBuf::from(format!("{text}.shard{shard}.jsonl")),
    }
}

/// One worker's supervision state, generic over the assignment sink so the
/// sharding logic is testable without processes.
struct WorkerState<S: Write> {
    /// Where `Assign` frames go (`None` once closed).
    sink: Option<S>,
    /// Assigned-but-unacknowledged cells, by key.
    outstanding: BTreeMap<String, CellSpec>,
    /// Still believed able to take work.
    alive: bool,
    /// When the worker last sent any frame (or was spawned).
    last_heard: Instant,
}

impl<S: Write> WorkerState<S> {
    fn new(sink: S) -> Self {
        WorkerState {
            sink: Some(sink),
            outstanding: BTreeMap::new(),
            alive: true,
            last_heard: Instant::now(),
        }
    }

    /// Declares the worker dead and takes back everything it still owed.
    fn abandon(&mut self) -> Vec<CellSpec> {
        self.alive = false;
        self.sink = None;
        std::mem::take(&mut self.outstanding)
            .into_values()
            .collect()
    }
}

/// Writes one `Assign` to a worker; a failure means the worker is gone.
fn try_assign<S: Write>(worker: &mut WorkerState<S>, cell: &CellSpec) -> Result<()> {
    let Some(sink) = worker.sink.as_mut() else {
        return Err(FleetError::io("worker sink already closed"));
    };
    write_frame(sink, &CoordinatorFrame::Assign { cell: cell.clone() })
}

/// Hands `cells` out round-robin starting at worker `start`, skipping dead
/// workers. A worker whose pipe breaks mid-assignment is abandoned on the
/// spot and its outstanding cells join the queue (counted in `reassigned`).
///
/// With every worker alive this reproduces the deterministic initial
/// sharding: cell `i` lands on worker `(start + i) mod N`.
fn distribute<S: Write>(
    states: &mut [WorkerState<S>],
    start: usize,
    cells: Vec<CellSpec>,
    reassigned: &mut usize,
) -> Result<()> {
    let n = states.len();
    let mut queue: VecDeque<CellSpec> = cells.into();
    let mut next = if n == 0 { 0 } else { start % n };
    while let Some(cell) = queue.pop_front() {
        let Some(k) = (0..n).map(|i| (next + i) % n).find(|&k| states[k].alive) else {
            return Err(FleetError::NoSurvivors {
                unassigned: queue.len() + 1,
            });
        };
        match try_assign(&mut states[k], &cell) {
            Ok(()) => {
                states[k].outstanding.insert(cell.key(), cell);
                next = (k + 1) % n;
            }
            Err(_) => {
                let orphans = states[k].abandon();
                *reassigned += orphans.len();
                queue.push_front(cell);
                queue.extend(orphans);
            }
        }
    }
    Ok(())
}

/// What a worker's stdout reader forwards to the supervision loop.
enum Event {
    /// A parsed frame.
    Frame(WorkerFrame),
    /// An unparseable line — protocol corruption, the worker is untrusted
    /// from here on.
    Corrupt(String),
    /// The worker's stdout closed: it exited or crashed.
    Eof,
}

/// Collects the keys already durable in `path`, if it exists. A store that
/// exists but fails validation is a hard error — fleeting past corruption
/// would burn cycles re-measuring cells that merge would then refuse.
fn known_keys(path: &Path, known: &mut BTreeSet<String>) -> Result<()> {
    if !path.exists() {
        return Ok(());
    }
    let store = ResultStore::open(path).map_err(FleetError::from)?;
    for record in store.records() {
        known.insert(record.key.clone());
    }
    Ok(())
}

/// Builds the argv for one worker process.
fn worker_command(config: &FleetConfig, store: &Path, shard: usize) -> Result<Command> {
    let mut cmd = match &config.worker_command {
        Some(argv) => {
            let Some((head, tail)) = argv.split_first() else {
                return Err(FleetError::config("worker command must not be empty"));
            };
            let mut cmd = Command::new(head);
            cmd.args(tail);
            cmd
        }
        None => {
            let exe = std::env::current_exe()
                .map_err(|e| FleetError::io(format!("cannot locate own executable: {e}")))?;
            let mut cmd = Command::new(exe);
            cmd.args(["campaign", "worker"]);
            cmd
        }
    };
    cmd.arg("--store").arg(shard_store_path(store, shard));
    cmd.arg("--shard").arg(shard.to_string());
    if config.threads > 0 {
        cmd.arg("--threads").arg(config.threads.to_string());
    }
    if config.batch {
        cmd.arg("--batch");
    }
    if shard == 0 {
        if let Some(limit) = config.worker_exit_after {
            cmd.arg("--exit-after").arg(limit.to_string());
        }
    }
    cmd.stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    Ok(cmd)
}

/// Runs a campaign across a fleet of local worker processes, each appending
/// to its own shard store next to `store`. Finish with
/// [`ResultStore::merge`] (`repro campaign merge`) to fold the shards into
/// `store` itself.
///
/// # Errors
///
/// [`FleetError::SpecRejected`] when `campaign check` reports warnings —
/// the coordinator refuses to fan a questionable sweep out across
/// processes. [`FleetError::Worker`] when a worker reports a cell that
/// cannot run, [`FleetError::NoSurvivors`] when every worker dies with
/// cells still owed, [`FleetError::Io`]/[`FleetError::Config`] for spawn
/// and configuration problems. Whatever completed before an error remains
/// durable in the shard stores; rerunning resumes.
pub fn run_fleet(spec: &CampaignSpec, store: &Path, config: &FleetConfig) -> Result<FleetReport> {
    if config.workers == 0 {
        return Err(FleetError::config("a fleet needs at least one worker"));
    }
    let report = check(spec).map_err(FleetError::from)?;
    if !report.is_clean() {
        return Err(FleetError::SpecRejected {
            warnings: report.warnings.iter().map(|w| w.message.clone()).collect(),
        });
    }

    let cells = spec.expand().map_err(FleetError::from)?;
    let total = cells.len();
    let mut known = BTreeSet::new();
    known_keys(store, &mut known)?;
    for shard in 0..config.workers {
        known_keys(&shard_store_path(store, shard), &mut known)?;
    }
    let pending: Vec<CellSpec> = cells
        .into_iter()
        .filter(|cell| !known.contains(&cell.key()))
        .collect();
    let skipped = total - pending.len();
    if pending.is_empty() {
        return Ok(FleetReport {
            total,
            skipped,
            ..FleetReport::default()
        });
    }

    let worker_count = config.workers.min(pending.len());
    let mut children: Vec<Child> = Vec::with_capacity(worker_count);
    let mut states = Vec::with_capacity(worker_count);
    let mut stdouts: Vec<(usize, ChildStdout)> = Vec::with_capacity(worker_count);
    for shard in 0..worker_count {
        let spawned = worker_command(config, store, shard).and_then(|mut cmd| {
            let mut child = cmd
                .spawn()
                .map_err(|e| FleetError::io(format!("cannot spawn worker {shard}: {e}")))?;
            match (child.stdin.take(), child.stdout.take()) {
                (Some(stdin), Some(stdout)) => Ok((child, stdin, stdout)),
                _ => {
                    let _ = child.kill();
                    let _ = child.wait();
                    Err(FleetError::io("worker stdio was not piped"))
                }
            }
        });
        match spawned {
            Ok((child, stdin, stdout)) => {
                children.push(child);
                states.push(WorkerState::new(stdin));
                stdouts.push((shard, stdout));
            }
            Err(e) => {
                // Reap whatever already launched before reporting.
                for mut child in children {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                return Err(e);
            }
        }
    }

    let pending_count = pending.len();
    let mut completed = 0usize;
    let mut reassigned = 0usize;
    let mut failure: Option<FleetError> = None;

    std::thread::scope(|scope| {
        // Readers first: each worker's stdout is drained into the event
        // channel before any assignment is written, so neither side can
        // block the other on a full pipe.
        let (tx, rx) = mpsc::channel::<(usize, Event)>();
        for (shard, stdout) in stdouts {
            let tx = tx.clone();
            scope.spawn(move || {
                for line in BufReader::new(stdout).lines() {
                    let Ok(line) = line else { break };
                    if line.trim().is_empty() {
                        continue;
                    }
                    let event = match parse_frame::<WorkerFrame>(&line) {
                        Ok(frame) => Event::Frame(frame),
                        Err(e) => Event::Corrupt(e.to_string()),
                    };
                    let corrupt = matches!(event, Event::Corrupt(_));
                    if tx.send((shard, event)).is_err() || corrupt {
                        return;
                    }
                }
                let _ = tx.send((shard, Event::Eof));
            });
        }
        drop(tx);

        if let Err(e) = distribute(&mut states, 0, pending, &mut reassigned) {
            failure = Some(e);
        }

        while failure.is_none() && states.iter().any(|w| !w.outstanding.is_empty()) {
            match rx.recv_timeout(Duration::from_millis(200)) {
                Ok((shard, Event::Frame(frame))) => {
                    states[shard].last_heard = Instant::now();
                    match frame {
                        WorkerFrame::Ready { .. } => {}
                        WorkerFrame::Done { key, .. } => {
                            if states[shard].outstanding.remove(&key).is_some() {
                                completed += 1;
                                if config.progress {
                                    eprintln!(
                                        "fleet: {completed}/{pending_count} cells done \
                                         ({reassigned} re-assigned)"
                                    );
                                }
                            }
                        }
                        WorkerFrame::Failed { key, reason } => {
                            failure = Some(FleetError::worker(
                                shard,
                                format!("cell {key} cannot run: {reason}"),
                            ));
                        }
                    }
                }
                Ok((shard, Event::Corrupt(reason))) => {
                    // The worker's stream is garbage; kill it and hand its
                    // work to the survivors.
                    if config.progress {
                        eprintln!("fleet: worker {shard} corrupted its stream ({reason}); killing");
                    }
                    let _ = children[shard].kill();
                    let orphans = states[shard].abandon();
                    reassigned += orphans.len();
                    if let Err(e) = distribute(&mut states, shard + 1, orphans, &mut reassigned) {
                        failure = Some(e);
                    }
                }
                Ok((shard, Event::Eof)) => {
                    let orphans = states[shard].abandon();
                    if !orphans.is_empty() {
                        if config.progress {
                            eprintln!(
                                "fleet: worker {shard} died owing {} cell(s); re-assigning",
                                orphans.len()
                            );
                        }
                        reassigned += orphans.len();
                        if let Err(e) = distribute(&mut states, shard + 1, orphans, &mut reassigned)
                        {
                            failure = Some(e);
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    let Some(timeout) = config.hang_timeout else {
                        continue;
                    };
                    for shard in 0..states.len() {
                        if !states[shard].alive
                            || states[shard].outstanding.is_empty()
                            || states[shard].last_heard.elapsed() < timeout
                        {
                            continue;
                        }
                        if config.progress {
                            eprintln!("fleet: worker {shard} is hung; killing and re-assigning");
                        }
                        let _ = children[shard].kill();
                        let orphans = states[shard].abandon();
                        reassigned += orphans.len();
                        if let Err(e) = distribute(&mut states, shard + 1, orphans, &mut reassigned)
                        {
                            failure = Some(e);
                            break;
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Every reader exited yet cells are outstanding: the
                    // whole fleet is gone.
                    let unassigned = states.iter().map(|w| w.outstanding.len()).sum();
                    failure = Some(FleetError::NoSurvivors { unassigned });
                }
            }
        }

        // Shut down survivors: on success there is nothing left to assign,
        // on failure we abandon whatever is still queued. Dropping the sink
        // closes the worker's stdin, so even a worker that missed the
        // Shutdown frame exits on EOF; the readers then see stdout close
        // and the scope joins.
        for state in &mut states {
            if let Some(mut sink) = state.sink.take() {
                let _ = write_frame(&mut sink, &CoordinatorFrame::Shutdown);
            }
        }
    });

    for mut child in children {
        // On failure the fleet is being abandoned: don't wait for workers
        // to drain queued cells (a kill at worst leaves a torn tail, which
        // the stores tolerate).
        if failure.is_some() {
            let _ = child.kill();
        }
        let _ = child.wait();
    }

    match failure {
        Some(error) => Err(error),
        None => Ok(FleetReport {
            total,
            skipped,
            completed,
            reassigned,
            workers: worker_count,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dradio_campaign::{CampaignRunner, RoundsRule, SweepGroup, TrialPolicy};
    use dradio_core::algorithms::GlobalAlgorithm;
    use dradio_scenario::{AdversarySpec, ProblemSpec, TopologySpec};

    fn small_campaign() -> CampaignSpec {
        CampaignSpec::named("fleet-test")
            .seed(9)
            .trials(TrialPolicy::Fixed(2))
            .group(
                SweepGroup::product(
                    vec![
                        TopologySpec::Clique { n: 8 },
                        TopologySpec::Clique { n: 16 },
                    ],
                    vec![
                        GlobalAlgorithm::Bgi.into(),
                        GlobalAlgorithm::Permuted.into(),
                    ],
                    vec![AdversarySpec::StaticNone],
                    vec![ProblemSpec::GlobalFrom(0)],
                )
                .rounds(RoundsRule::Fixed(2_000)),
            )
    }

    fn temp_store(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "dradio-fleet-coord-{tag}-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn shard_stores_sit_next_to_the_output_store() {
        assert_eq!(
            shard_store_path(Path::new("results/run.campaign.jsonl"), 0),
            Path::new("results/run.campaign.shard0.jsonl")
        );
        assert_eq!(
            shard_store_path(Path::new("plain"), 12),
            Path::new("plain.shard12.jsonl")
        );
    }

    #[test]
    fn distribution_is_round_robin_and_deterministic() {
        let cells = small_campaign().expand().unwrap();
        let mut states: Vec<WorkerState<Vec<u8>>> =
            (0..3).map(|_| WorkerState::new(Vec::new())).collect();
        let mut reassigned = 0;
        distribute(&mut states, 0, cells.clone(), &mut reassigned).unwrap();
        assert_eq!(reassigned, 0);
        for (i, cell) in cells.iter().enumerate() {
            assert!(
                states[i % 3].outstanding.contains_key(&cell.key()),
                "cell {i} must land on worker {}",
                i % 3
            );
        }
        // The wire carries exactly the assigned cells, in order.
        let wire = String::from_utf8(states[0].sink.clone().unwrap()).unwrap();
        let assigned: Vec<CoordinatorFrame> =
            wire.lines().map(|l| parse_frame(l).unwrap()).collect();
        assert_eq!(
            assigned,
            vec![
                CoordinatorFrame::Assign {
                    cell: cells[0].clone()
                },
                CoordinatorFrame::Assign {
                    cell: cells[3].clone()
                },
            ]
        );
    }

    /// A sink that fails every write, like the stdin of a dead child.
    struct BrokenPipe;
    impl Write for BrokenPipe {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "worker is gone",
            ))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// Adapts the two sink shapes into one slice element type.
    enum TestSink {
        Ok(Vec<u8>),
        Broken(BrokenPipe),
    }
    impl Write for TestSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            match self {
                TestSink::Ok(v) => v.write(buf),
                TestSink::Broken(b) => b.write(buf),
            }
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn broken_pipes_cascade_to_the_survivors() {
        let cells = small_campaign().expand().unwrap();
        let mut states = vec![
            WorkerState::new(TestSink::Broken(BrokenPipe)),
            WorkerState::new(TestSink::Ok(Vec::new())),
        ];
        let mut reassigned = 0;
        distribute(&mut states, 0, cells.clone(), &mut reassigned).unwrap();
        assert!(!states[0].alive, "the broken worker is declared dead");
        assert_eq!(
            states[1].outstanding.len(),
            cells.len(),
            "the survivor absorbs everything"
        );
    }

    #[test]
    fn a_fleet_with_no_survivors_fails() {
        let cells = small_campaign().expand().unwrap();
        let mut states = vec![WorkerState::new(TestSink::Broken(BrokenPipe))];
        let mut reassigned = 0;
        let err = distribute(&mut states, 0, cells, &mut reassigned).unwrap_err();
        assert!(
            matches!(err, FleetError::NoSurvivors { unassigned: 4 }),
            "{err}"
        );
    }

    #[test]
    fn zero_workers_is_a_config_error() {
        let err = run_fleet(
            &small_campaign(),
            Path::new("unused.jsonl"),
            &FleetConfig {
                workers: 0,
                ..FleetConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, FleetError::Config { .. }), "{err}");
    }

    #[test]
    fn a_spec_that_fails_check_is_refused_before_any_spawn() {
        // Duplicated groups make `campaign check` warn; the bogus worker
        // command would fail loudly if the coordinator tried to spawn.
        let dup = small_campaign().group(
            SweepGroup::product(
                vec![TopologySpec::Clique { n: 8 }],
                vec![GlobalAlgorithm::Bgi.into()],
                vec![AdversarySpec::StaticNone],
                vec![ProblemSpec::GlobalFrom(0)],
            )
            .rounds(RoundsRule::Fixed(2_000)),
        );
        let err = run_fleet(
            &dup,
            Path::new("unused.jsonl"),
            &FleetConfig {
                worker_command: Some(vec!["/nonexistent-worker".into()]),
                ..FleetConfig::default()
            },
        )
        .unwrap_err();
        let FleetError::SpecRejected { warnings } = err else {
            panic!("want SpecRejected, got {err}");
        };
        assert!(!warnings.is_empty());
    }

    #[test]
    fn a_complete_store_launches_no_workers() {
        let campaign = small_campaign();
        let path = temp_store("complete");
        let reference = CampaignRunner::new(&campaign).run_in_memory().unwrap();
        let mut bytes = Vec::new();
        for record in reference.records() {
            bytes.extend_from_slice(serde_json::to_string(record).unwrap().as_bytes());
            bytes.push(b'\n');
        }
        std::fs::write(&path, bytes).unwrap();

        let report = run_fleet(
            &campaign,
            &path,
            &FleetConfig {
                // Spawning would explode; a complete store must not spawn.
                worker_command: Some(vec!["/nonexistent-worker".into()]),
                ..FleetConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.total, 4);
        assert_eq!(report.skipped, 4);
        assert_eq!(report.workers, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn hung_workers_are_killed_and_the_fleet_reports_no_survivors() {
        // `sh -c 'exec sleep 60'` ignores the appended shard flags, never
        // sends Ready, and never exits on its own: pure hang (the exec
        // makes kill() reach the sleep itself, so its stdout closes). With
        // every worker hung there is nobody to re-assign to, so the fleet
        // must kill them and fail quickly rather than wait forever.
        let path = temp_store("hang");
        let err = run_fleet(
            &small_campaign(),
            &path,
            &FleetConfig {
                workers: 2,
                hang_timeout: Some(Duration::from_millis(400)),
                worker_command: Some(vec!["sh".into(), "-c".into(), "exec sleep 60".into()]),
                ..FleetConfig::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, FleetError::NoSurvivors { unassigned: 4 }),
            "{err}"
        );
        let _ = std::fs::remove_file(&path);
    }
}
