//! Errors produced while coordinating, transporting, or executing fleet work.

use std::fmt;

use dradio_campaign::CampaignError;

/// Everything that can go wrong in the fleet layer.
#[derive(Debug)]
pub enum FleetError {
    /// `campaign check` rejected the spec: the coordinator refuses to fan a
    /// questionable sweep out across processes. Carries the rendered
    /// warnings.
    SpecRejected {
        /// The check warnings, one per line, as `campaign check` prints them.
        warnings: Vec<String>,
    },
    /// The campaign layer failed (spec expansion, store I/O, cell
    /// execution).
    Campaign(CampaignError),
    /// A wire frame failed to parse or write — a protocol bug or a
    /// corrupted transport, never recoverable by retry.
    Protocol {
        /// Human-readable explanation.
        reason: String,
    },
    /// A worker process could not be spawned, crashed with work that no
    /// surviving worker could absorb, or reported a cell failure.
    Worker {
        /// The worker's shard index.
        shard: usize,
        /// Human-readable explanation.
        reason: String,
    },
    /// Every worker died while cells were still unassigned — nobody is left
    /// to absorb the re-assignments.
    NoSurvivors {
        /// Cells that were still waiting for a worker.
        unassigned: usize,
    },
    /// A worker process never completed the `Ready` handshake within the
    /// spawn-to-`Ready` deadline ([`crate::FleetConfig::ready_timeout`]),
    /// its restart budget is spent, and the fleet could not finish without
    /// it. Distinct from a hang: the worker produced *no* frames at all,
    /// which usually means a broken worker command, not a slow cell.
    NeverReady {
        /// The shard whose worker never handshook.
        shard: usize,
        /// Cells that were still waiting for a worker.
        unassigned: usize,
    },
    /// The fleet configuration itself is unusable (zero workers, empty
    /// worker command).
    Config {
        /// Human-readable explanation.
        reason: String,
    },
    /// Transport-level I/O failed (pipe writes, child process plumbing).
    Io {
        /// Human-readable explanation.
        reason: String,
    },
}

impl FleetError {
    /// Creates a protocol error.
    pub fn protocol(reason: impl Into<String>) -> Self {
        FleetError::Protocol {
            reason: reason.into(),
        }
    }

    /// Creates a transport I/O error.
    pub fn io(reason: impl Into<String>) -> Self {
        FleetError::Io {
            reason: reason.into(),
        }
    }

    /// Creates a worker error.
    pub fn worker(shard: usize, reason: impl Into<String>) -> Self {
        FleetError::Worker {
            shard,
            reason: reason.into(),
        }
    }

    /// Creates a configuration error.
    pub fn config(reason: impl Into<String>) -> Self {
        FleetError::Config {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::SpecRejected { warnings } => {
                write!(
                    f,
                    "campaign check rejected the spec ({} warning(s)); fix it or run \
                     single-process `campaign run` to override",
                    warnings.len()
                )
            }
            FleetError::Campaign(source) => write!(f, "{source}"),
            FleetError::Protocol { reason } => write!(f, "fleet protocol: {reason}"),
            FleetError::Worker { shard, reason } => write!(f, "fleet worker {shard}: {reason}"),
            FleetError::NoSurvivors { unassigned } => write!(
                f,
                "every fleet worker died with {unassigned} cell(s) still unassigned; \
                 completed cells are durable in the shard stores — rerun to resume"
            ),
            FleetError::NeverReady { shard, unassigned } => write!(
                f,
                "fleet worker {shard} never sent Ready before its spawn deadline \
                 ({unassigned} cell(s) still unassigned); check the worker command — \
                 completed cells are durable in the shard stores"
            ),
            FleetError::Config { reason } => write!(f, "fleet config: {reason}"),
            FleetError::Io { reason } => write!(f, "fleet transport: {reason}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Campaign(source) => Some(source),
            _ => None,
        }
    }
}

impl From<CampaignError> for FleetError {
    fn from(source: CampaignError) -> Self {
        FleetError::Campaign(source)
    }
}

/// Convenient result alias for fallible fleet operations.
pub type Result<T> = std::result::Result<T, FleetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases = vec![
            (
                FleetError::SpecRejected {
                    warnings: vec!["dup".into()],
                },
                "rejected the spec",
            ),
            (
                FleetError::Campaign(CampaignError::spec("no groups")),
                "invalid campaign spec",
            ),
            (FleetError::protocol("bad frame"), "fleet protocol"),
            (FleetError::worker(2, "crashed"), "fleet worker 2"),
            (
                FleetError::NoSurvivors { unassigned: 3 },
                "3 cell(s) still unassigned",
            ),
            (
                FleetError::NeverReady {
                    shard: 1,
                    unassigned: 2,
                },
                "fleet worker 1 never sent Ready",
            ),
            (FleetError::config("zero workers"), "fleet config"),
            (FleetError::io("broken pipe"), "fleet transport"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err} missing {needle}");
        }
    }

    #[test]
    fn campaign_errors_convert_and_chain() {
        let err: FleetError = CampaignError::store("short read").into();
        assert!(matches!(err, FleetError::Campaign(_)));
        assert!(std::error::Error::source(&err).is_some());
        assert!(std::error::Error::source(&FleetError::io("x")).is_none());
    }
}
