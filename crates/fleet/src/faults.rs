//! Deterministic fault injection for fleet chaos testing.
//!
//! A [`FaultPlan`] is a serializable schedule of worker misbehavior: each
//! [`WorkerFault`] names a shard, a trigger point (fire right after the
//! process's n-th *fresh* cell is appended — the durable-but-unacknowledged
//! crash window), and a [`FaultKind`]. The coordinator filters the plan per
//! shard and forwards it to each worker as `--faults`; the worker arms the
//! triggers in its cell-runner loop.
//!
//! Plans are either hand-written JSON (`repro campaign fleet --chaos
//! '<json>'`) or derived from a seed ([`FaultPlan::seeded`], `--chaos
//! <seed>`). Seeded generation is a pure function of `(seed, workers)` —
//! no ambient randomness — so a chaos run is exactly reproducible from its
//! seed, and the convergence contract stays testable: whatever the plan
//! does, fleet + restarts + merge must reproduce the uninterrupted
//! single-process store byte for byte.
//!
//! Shard 0 always draws a kill-class fault ([`FaultKind::Kill`],
//! [`FaultKind::TornTail`], or [`FaultKind::CorruptFrame`] — each ends with
//! the process dead) after its first fresh cell, so every seeded schedule
//! exercises the coordinator's supervised-restart path at least once.

use serde::{Deserialize, Error, Serialize, Value};

/// What a triggered fault does to the worker process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Abort the process immediately (exit code
    /// [`crate::INJECTED_EXIT_CODE`], no `Done` frame, no cleanup) — the
    /// classic crash in the durable-but-unacknowledged window.
    Kill,
    /// Truncate up to `tear_bytes` off the end of the shard store (capped so
    /// the tear never reaches past the just-appended, still-unacknowledged
    /// record), then abort — the on-disk signature of a kill mid-append.
    TornTail {
        /// Bytes to tear off the final (unacknowledged) record's line.
        tear_bytes: usize,
    },
    /// Sleep this long before acknowledging the cell — a silent wedge the
    /// coordinator's `hang_timeout` may or may not outwait.
    Hang {
        /// How long the worker goes silent, in milliseconds.
        millis: u64,
    },
    /// Emit a garbage line instead of the cell's `Done` frame. The
    /// coordinator treats a corrupt stream as a dead worker: kill, restart,
    /// re-assign.
    CorruptFrame,
}

serde::serde_enum!(FaultKind {
    Kill,
    TornTail { tear_bytes: usize },
    Hang { millis: u64 },
    CorruptFrame,
});

/// One scheduled fault: which shard, when, and what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFault {
    /// The shard whose worker process carries this fault.
    pub shard: usize,
    /// Fire right after the process has appended exactly this many *fresh*
    /// cells (resumed/skipped cells do not count) — so a restarted worker
    /// re-arms the trigger against its next uncommitted cell.
    pub after_cells: usize,
    /// What happens at the trigger.
    pub kind: FaultKind,
}

impl Serialize for WorkerFault {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("shard".into(), self.shard.to_value()),
            ("after_cells".into(), self.after_cells.to_value()),
            ("kind".into(), self.kind.to_value()),
        ])
    }
}

impl Deserialize for WorkerFault {
    fn from_value(value: &Value) -> std::result::Result<Self, Error> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| Error::new(format!("WorkerFault is missing {name:?}")))
        };
        Ok(WorkerFault {
            shard: usize::from_value(field("shard")?)?,
            after_cells: usize::from_value(field("after_cells")?)?,
            kind: FaultKind::from_value(field("kind")?)?,
        })
    }
}

/// A complete, serializable chaos schedule for one fleet run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The seed this plan was generated from, for provenance (`None` for
    /// hand-written plans).
    pub seed: Option<u64>,
    /// The scheduled faults, in shard order for seeded plans.
    pub faults: Vec<WorkerFault>,
}

impl Serialize for FaultPlan {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("seed".into(), self.seed.to_value()),
            ("faults".into(), self.faults.to_value()),
        ])
    }
}

impl Deserialize for FaultPlan {
    fn from_value(value: &Value) -> std::result::Result<Self, Error> {
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| Error::new(format!("FaultPlan is missing {name:?}")))
        };
        Ok(FaultPlan {
            seed: Option::<u64>::from_value(field("seed")?)?,
            faults: Vec::<WorkerFault>::from_value(field("faults")?)?,
        })
    }
}

/// The splitmix64 finalizer — the same generator-of-generators the engine
/// uses for stream seeds, local to this module so the fleet crate stays
/// free of simulation dependencies. Pure: the plan is a function of the
/// seed alone.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Derives a deterministic chaos schedule for a fleet of `workers`
    /// processes. Shard 0 always draws a kill-class fault after its first
    /// fresh cell (guaranteeing at least one supervised restart per
    /// schedule); every other shard draws from the full menu, including
    /// running clean.
    pub fn seeded(seed: u64, workers: usize) -> FaultPlan {
        let mut state = seed;
        let mut faults = Vec::new();
        for shard in 0..workers {
            let draw = splitmix64(&mut state);
            let tear = 5 + (splitmix64(&mut state) % 48) as usize;
            let millis = 200 + splitmix64(&mut state) % 600;
            let after = 1 + (splitmix64(&mut state) % 3) as usize;
            let (kind, after_cells) = if shard == 0 {
                let kind = match draw % 3 {
                    0 => FaultKind::Kill,
                    1 => FaultKind::TornTail { tear_bytes: tear },
                    _ => FaultKind::CorruptFrame,
                };
                (kind, 1)
            } else {
                let kind = match draw % 5 {
                    0 => continue, // this shard runs clean
                    1 => FaultKind::Kill,
                    2 => FaultKind::TornTail { tear_bytes: tear },
                    3 => FaultKind::Hang { millis },
                    _ => FaultKind::CorruptFrame,
                };
                (kind, after)
            };
            faults.push(WorkerFault {
                shard,
                after_cells,
                kind,
            });
        }
        FaultPlan {
            seed: Some(seed),
            faults,
        }
    }

    /// The faults scheduled for one shard's worker process (what the
    /// coordinator forwards as `--faults`).
    pub fn for_shard(&self, shard: usize) -> Vec<WorkerFault> {
        self.faults
            .iter()
            .filter(|f| f.shard == shard)
            .cloned()
            .collect()
    }

    /// Whether any scheduled fault ends with the worker process dead
    /// (directly, or via the coordinator killing a corrupted stream) — the
    /// schedules for which a fleet run must record at least one restart.
    pub fn has_kill(&self) -> bool {
        self.faults.iter().any(|f| {
            matches!(
                f.kind,
                FaultKind::Kill | FaultKind::TornTail { .. } | FaultKind::CorruptFrame
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_kinds_pin_their_wire_bytes() {
        let cases = [
            (FaultKind::Kill, r#""Kill""#),
            (
                FaultKind::TornTail { tear_bytes: 12 },
                r#"{"TornTail":{"tear_bytes":12}}"#,
            ),
            (
                FaultKind::Hang { millis: 250 },
                r#"{"Hang":{"millis":250}}"#,
            ),
            (FaultKind::CorruptFrame, r#""CorruptFrame""#),
        ];
        for (kind, bytes) in cases {
            assert_eq!(serde_json::to_string(&kind).unwrap(), bytes);
            assert_eq!(serde_json::from_str::<FaultKind>(bytes).unwrap(), kind);
        }
    }

    #[test]
    fn fault_plans_pin_their_wire_bytes() {
        let plan = FaultPlan {
            seed: Some(7),
            faults: vec![WorkerFault {
                shard: 0,
                after_cells: 1,
                kind: FaultKind::Kill,
            }],
        };
        let bytes = r#"{"seed":7,"faults":[{"shard":0,"after_cells":1,"kind":"Kill"}]}"#;
        assert_eq!(serde_json::to_string(&plan).unwrap(), bytes);
        assert_eq!(serde_json::from_str::<FaultPlan>(bytes).unwrap(), plan);

        // Hand-written plans have no seed; `null` round-trips.
        let hand = FaultPlan {
            seed: None,
            faults: vec![],
        };
        let hand_bytes = r#"{"seed":null,"faults":[]}"#;
        assert_eq!(serde_json::to_string(&hand).unwrap(), hand_bytes);
        assert_eq!(serde_json::from_str::<FaultPlan>(hand_bytes).unwrap(), hand);
    }

    #[test]
    fn seeded_plans_are_pure_functions_of_the_seed() {
        let a = FaultPlan::seeded(42, 4);
        let b = FaultPlan::seeded(42, 4);
        assert_eq!(a, b);
        assert_eq!(a.seed, Some(42));
        // Different seeds diverge somewhere across a handful of draws.
        let plans: Vec<FaultPlan> = (0..8).map(|s| FaultPlan::seeded(s, 4)).collect();
        assert!(
            plans.windows(2).any(|w| w[0].faults != w[1].faults),
            "eight consecutive seeds cannot all collide"
        );
    }

    #[test]
    fn every_seeded_plan_arms_a_kill_class_fault_on_shard_zero() {
        for seed in 0..64 {
            let plan = FaultPlan::seeded(seed, 3);
            let shard0 = plan.for_shard(0);
            assert_eq!(shard0.len(), 1, "seed {seed}");
            assert_eq!(shard0[0].after_cells, 1, "seed {seed}");
            assert!(
                matches!(
                    shard0[0].kind,
                    FaultKind::Kill | FaultKind::TornTail { .. } | FaultKind::CorruptFrame
                ),
                "seed {seed}: shard 0 must always die at least once"
            );
            assert!(plan.has_kill(), "seed {seed}");
        }
    }

    #[test]
    fn for_shard_filters_and_preserves_order() {
        let plan = FaultPlan {
            seed: None,
            faults: vec![
                WorkerFault {
                    shard: 1,
                    after_cells: 1,
                    kind: FaultKind::Kill,
                },
                WorkerFault {
                    shard: 0,
                    after_cells: 2,
                    kind: FaultKind::Hang { millis: 10 },
                },
                WorkerFault {
                    shard: 1,
                    after_cells: 3,
                    kind: FaultKind::CorruptFrame,
                },
            ],
        };
        let shard1 = plan.for_shard(1);
        assert_eq!(shard1.len(), 2);
        assert_eq!(shard1[0].after_cells, 1);
        assert_eq!(shard1[1].after_cells, 3);
        assert!(plan.for_shard(2).is_empty());
        // A hang alone is not a kill.
        let hang_only = FaultPlan {
            seed: None,
            faults: vec![WorkerFault {
                shard: 0,
                after_cells: 1,
                kind: FaultKind::Hang { millis: 10 },
            }],
        };
        assert!(!hang_only.has_kill());
    }
}
