//! Distributed campaign execution: a coordinator sharding cells across
//! local worker processes, and the merge-friendly shard stores they write.
//!
//! Single-process campaigns ([`dradio_campaign::CampaignRunner`]) already
//! parallelize trials and cells across threads; this crate scales the same
//! sweep across *processes*. The division of labor:
//!
//! * [`run_fleet`] (the **coordinator**) checks the spec, diffs the
//!   expansion against existing stores, shards the pending cells
//!   deterministically across `N` worker processes, supervises them, and
//!   re-assigns the work of workers that crash or hang.
//! * [`run_worker`] (a **worker**) serves one shard: it executes assigned
//!   cells and appends each to its own shard store
//!   ([`shard_store_path`]) *before* acknowledging it upstream.
//! * [`dradio_campaign::ResultStore::merge`] (exposed as `repro campaign
//!   merge`) folds the shard stores back into one store, byte-identical to
//!   a single-process run — records are pure functions of their cell spec,
//!   so shards union cleanly and duplicates collapse.
//!
//! Coordinator and worker speak the line-delimited JSON [`protocol`] over
//! the worker's stdin/stdout; the framing is transport-agnostic, so a
//! socket transport can replace the pipes without touching the protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod error;
pub mod protocol;
pub mod worker;

pub use coordinator::{run_fleet, shard_store_path, FleetConfig, FleetReport};
pub use error::{FleetError, Result};
pub use protocol::{parse_frame, write_frame, CoordinatorFrame, WorkerFrame};
pub use worker::{run_worker, WorkerConfig, WorkerReport, INJECTED_EXIT_CODE};
