//! Distributed campaign execution: a coordinator sharding cells across
//! local worker processes, and the merge-friendly shard stores they write.
//!
//! Single-process campaigns ([`dradio_campaign::CampaignRunner`]) already
//! parallelize trials and cells across threads; this crate scales the same
//! sweep across *processes*. The division of labor:
//!
//! * [`run_fleet`] (the **coordinator**) checks the spec, diffs the
//!   expansion against existing stores, and serves pending cells to `N`
//!   worker processes with worker-pull scheduling: each worker `Request`
//!   is answered with one leased `Assign`, expired leases re-queue, and
//!   workers that crash, hang, or corrupt their stream are **restarted**
//!   on their original shard store with capped exponential backoff, up to
//!   a per-shard budget.
//! * [`run_worker`] (a **worker**) serves one shard: it pulls cells,
//!   executes them, and appends each to its own shard store
//!   ([`shard_store_path`]) *before* acknowledging it upstream — so a
//!   restarted worker resumes past its own committed cells.
//! * [`FaultPlan`] (the **chaos harness**) injects deterministic, seeded
//!   faults — kills, torn shard tails, hangs, corrupt frames — into
//!   workers, so the whole recovery stack is testable: any fault schedule
//!   must converge to the same merged bytes as an undisturbed run.
//! * [`dradio_campaign::ResultStore::merge`] (exposed as `repro campaign
//!   merge`) folds the shard stores back into one store, byte-identical to
//!   a single-process run — records are pure functions of their cell spec,
//!   so shards union cleanly and duplicates collapse.
//!
//! Coordinator and worker speak the line-delimited JSON [`protocol`] over
//! the worker's stdin/stdout; the framing is transport-agnostic, so a
//! socket transport can replace the pipes without touching the protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod error;
pub mod faults;
pub mod protocol;
pub mod worker;

pub use coordinator::{run_fleet, shard_store_path, FleetConfig, FleetReport};
pub use error::{FleetError, Result};
pub use faults::{FaultKind, FaultPlan, WorkerFault};
pub use protocol::{parse_frame, write_frame, CoordinatorFrame, WorkerFrame};
pub use worker::{run_worker, WorkerConfig, WorkerReport, INJECTED_EXIT_CODE};
