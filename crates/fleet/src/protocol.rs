//! The coordinator ↔ worker wire protocol: line-delimited JSON frames.
//!
//! One frame per line, serialized with the workspace serde (externally
//! tagged enums, the exact layout the result store already pins), written
//! newline-included in a single call and flushed immediately. The transport
//! is deliberately minimal — any ordered byte stream carries it, so the
//! process-pipe transport the coordinator uses today (worker stdin/stdout)
//! can be swapped for a socket without touching a frame.
//!
//! The conversation:
//!
//! ```text
//! worker  -> Ready { shard, resumed }          (once, on startup)
//! worker  -> Request                           (one per idle cell runner)
//! coord   -> Assign { cell }                   (answers a Request; leased)
//! worker  -> Done { key, trials_run }          (one per finished cell)
//! worker  -> Failed { key, reason }            (cell could not run)
//! coord   -> Shutdown                          (drain and exit)
//! ```
//!
//! Scheduling is worker-pull: the coordinator holds the pending queue and
//! answers each `Request` with one `Assign`, so heterogeneous (or freshly
//! restarted) workers drain cells at their own rate instead of receiving a
//! fixed `i mod N` shard up front.
//!
//! Workers append each measured cell to their shard store **before**
//! emitting its `Done`, so the coordinator's knowledge is conservative: a
//! worker that crashes between append and `Done` gets the cell re-assigned,
//! the second copy is byte-identical, and `campaign merge` deduplicates it.

use std::io::Write;

use dradio_campaign::CellSpec;
use serde::{Deserialize, Serialize};

use crate::error::{FleetError, Result};

/// A frame the coordinator sends to a worker.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordinatorFrame {
    /// Run this cell and report back.
    Assign {
        /// The cell to measure.
        cell: CellSpec,
    },
    /// No more work is coming: finish anything queued and exit cleanly.
    Shutdown,
}

serde::serde_enum!(CoordinatorFrame {
    Assign { cell: CellSpec },
    Shutdown,
});

/// A frame a worker sends to the coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerFrame {
    /// Startup handshake: the worker's shard index and how many records its
    /// shard store already held (a resumed fleet run).
    Ready {
        /// The worker's shard index.
        shard: usize,
        /// Records already present in the shard store on open.
        resumed: usize,
    },
    /// One cell runner is idle: the coordinator should answer with an
    /// `Assign` (or nothing, if the pending queue is dry — `Shutdown`
    /// eventually follows). The shard is implied by the transport.
    Request,
    /// A cell is measured and durably appended to the shard store.
    Done {
        /// The cell's content-hash key.
        key: String,
        /// Trials the stored measurement aggregates.
        trials_run: usize,
    },
    /// A cell failed to build or run; the worker stays alive for other
    /// cells, the coordinator decides whether to abort the fleet.
    Failed {
        /// The cell's content-hash key.
        key: String,
        /// Human-readable failure description.
        reason: String,
    },
}

serde::serde_enum!(WorkerFrame {
    Ready { shard: usize, resumed: usize },
    Request,
    Done { key: String, trials_run: usize },
    Failed { key: String, reason: String },
});

/// Writes one frame as a JSON line (newline included, single write call)
/// and flushes, so the peer sees it immediately.
///
/// # Errors
///
/// [`FleetError::Protocol`] if the frame fails to serialize,
/// [`FleetError::Io`] if the transport write fails (a vanished peer).
pub fn write_frame<W: Write, T: Serialize>(writer: &mut W, frame: &T) -> Result<()> {
    let mut line = serde_json::to_string(frame)
        .map_err(|e| FleetError::protocol(format!("cannot serialize frame: {e}")))?;
    line.push('\n');
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| FleetError::io(format!("cannot write frame: {e}")))
}

/// Parses one received line as a frame.
///
/// # Errors
///
/// [`FleetError::Protocol`] when the line is not a valid frame — the peers
/// are release-locked halves of one binary, so this is a bug or a corrupted
/// transport, never something to retry.
pub fn parse_frame<T: Deserialize>(line: &str) -> Result<T> {
    serde_json::from_str(line.trim_end_matches('\n'))
        .map_err(|e| FleetError::protocol(format!("malformed frame {line:?}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dradio_campaign::TrialPolicy;
    use dradio_core::algorithms::GlobalAlgorithm;
    use dradio_scenario::{AdversarySpec, ProblemSpec, RecordMode, ScenarioSpec, TopologySpec};

    fn sample_cell() -> CellSpec {
        CellSpec {
            scenario: ScenarioSpec {
                topology: TopologySpec::Clique { n: 4 },
                algorithm: GlobalAlgorithm::Bgi.into(),
                adversary: AdversarySpec::StaticNone,
                problem: ProblemSpec::GlobalFrom(0),
                seed: 1,
                max_rounds: Some(64),
                collision_detection: false,
            },
            trials: TrialPolicy::Fixed(1),
            record_mode: RecordMode::None,
            curve: false,
            batch: false,
            backend: dradio_scenario::BackendChoice::Auto,
        }
    }

    #[test]
    fn coordinator_frames_pin_their_wire_bytes() {
        let cell = sample_cell();
        let assign = CoordinatorFrame::Assign { cell: cell.clone() };
        // The envelope is pinned here; the embedded CellSpec bytes are
        // pinned by the campaign spec's own registry entries.
        assert_eq!(
            serde_json::to_string(&assign).unwrap(),
            format!(
                "{{\"Assign\":{{\"cell\":{}}}}}",
                serde_json::to_string(&cell).unwrap()
            )
        );
        assert_eq!(
            serde_json::to_string(&CoordinatorFrame::Shutdown).unwrap(),
            "\"Shutdown\""
        );
        for frame in [assign, CoordinatorFrame::Shutdown] {
            let line = serde_json::to_string(&frame).unwrap();
            assert_eq!(parse_frame::<CoordinatorFrame>(&line).unwrap(), frame);
        }
    }

    #[test]
    fn worker_frames_pin_their_wire_bytes() {
        let cases = [
            (
                WorkerFrame::Ready {
                    shard: 2,
                    resumed: 3,
                },
                r#"{"Ready":{"shard":2,"resumed":3}}"#,
            ),
            (WorkerFrame::Request, r#""Request""#),
            (
                WorkerFrame::Done {
                    key: "00ff".into(),
                    trials_run: 8,
                },
                r#"{"Done":{"key":"00ff","trials_run":8}}"#,
            ),
            (
                WorkerFrame::Failed {
                    key: "00ff".into(),
                    reason: "bad topology".into(),
                },
                r#"{"Failed":{"key":"00ff","reason":"bad topology"}}"#,
            ),
        ];
        for (frame, bytes) in cases {
            assert_eq!(serde_json::to_string(&frame).unwrap(), bytes);
            assert_eq!(parse_frame::<WorkerFrame>(bytes).unwrap(), frame);
        }
    }

    #[test]
    fn frames_stream_one_per_line_and_flush() {
        let mut wire = Vec::new();
        write_frame(
            &mut wire,
            &CoordinatorFrame::Assign {
                cell: sample_cell(),
            },
        )
        .unwrap();
        write_frame(&mut wire, &CoordinatorFrame::Shutdown).unwrap();
        let text = String::from_utf8(wire).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(matches!(
            parse_frame::<CoordinatorFrame>(lines[0]).unwrap(),
            CoordinatorFrame::Assign { .. }
        ));
        assert_eq!(
            parse_frame::<CoordinatorFrame>(lines[1]).unwrap(),
            CoordinatorFrame::Shutdown
        );
    }

    #[test]
    fn malformed_frames_are_protocol_errors() {
        let err = parse_frame::<WorkerFrame>("not json").unwrap_err();
        assert!(matches!(err, FleetError::Protocol { .. }), "{err}");
        let err = parse_frame::<WorkerFrame>(r#"{"Unknown":{}}"#).unwrap_err();
        assert!(err.to_string().contains("malformed frame"), "{err}");
    }
}
