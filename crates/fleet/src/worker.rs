//! The worker half of the fleet: pulls cells from the coordinator, appends
//! them to its own shard store, reports completions upstream.
//!
//! [`run_worker`] is generic over the transport (`BufRead` in, `Write`
//! out), so the whole loop is unit-testable in process; the `repro campaign
//! worker` subcommand binds it to stdin/stdout under a coordinator.
//!
//! # Concurrency shape
//!
//! A dedicated reader thread drains the inbound stream into an internal
//! queue no matter what the cell runners are doing — so the coordinator can
//! write assignments without ever blocking on a pipe the worker is too busy
//! to read (the classic parent/child pipe deadlock). `threads` cell-runner
//! threads pull from that queue, each announcing its idleness upstream with
//! a `Request` frame before blocking — the worker-pull half of the
//! scheduling protocol: the coordinator leases one cell per `Request`, so a
//! slow (or freshly restarted) worker simply requests less often. One
//! runner (the default) executes cells with each cell's trials fanned out
//! across cores, mirroring `CampaignRunner`'s sequential mode; more runners
//! execute cells concurrently with sequential trials per cell. Either way
//! each record's bytes are a pure function of its cell spec, so the shard
//! stores merge identically.
//!
//! # Durability ordering
//!
//! A cell is appended to the shard store **before** its `Done` frame is
//! written. A crash between the two makes the coordinator re-assign a cell
//! that is already durable — the re-run produces byte-identical records and
//! `campaign merge` deduplicates them — whereas the opposite order could
//! acknowledge work that never hit disk.
//!
//! # Fault injection
//!
//! [`WorkerConfig::faults`] arms a [`FaultPlan`](crate::FaultPlan) slice
//! for this shard: each [`WorkerFault`] fires right after the process's
//! n-th fresh append — kill, torn-tail-then-kill, hang, or a corrupted
//! frame — always inside the durable-but-unacknowledged window the
//! coordinator must recover from. Kill-class faults fire while the store
//! lock is held, so an injected tear can only ever reach the runner's own
//! just-appended (unacknowledged) line, never an acknowledged record.

use std::collections::VecDeque;
use std::fs::OpenOptions;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use dradio_campaign::{execute_cell_batched, CellSpec, ResultStore};

use crate::error::{FleetError, Result};
use crate::faults::{FaultKind, WorkerFault};
use crate::protocol::{parse_frame, write_frame, CoordinatorFrame, WorkerFrame};

/// The process exit code injected kills abort with — distinguishable from a
/// panic or a clean shutdown in CI logs.
pub const INJECTED_EXIT_CODE: i32 = 17;

/// The line a [`FaultKind::CorruptFrame`] fault emits in place of a `Done`
/// frame — deliberately unparseable, so the coordinator's corrupt-stream
/// path triggers.
pub const CORRUPT_FRAME_LINE: &[u8] = b"%%chaos:corrupt-frame%%\n";

/// How a worker runs.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// This worker's shard index (echoed in the `Ready` handshake and used
    /// only for diagnostics — the store path is what actually isolates
    /// shards).
    pub shard: usize,
    /// The shard store this worker appends to.
    pub store: PathBuf,
    /// Cell-runner threads. `0` or `1`: cells in assignment order, trials
    /// parallel within each cell; `n > 1`: `n` cells concurrently, trials
    /// sequential per cell. Measurements are identical either way.
    pub threads: usize,
    /// Whether to run each cell's trials through the bit-sliced batch
    /// executor (unbatchable cells fall back to scalar). A pure execution
    /// strategy: shard store bytes are identical either way. Forwarded from
    /// the coordinator's `--batch`.
    pub batch: bool,
    /// The chaos faults armed for this shard (empty in real runs). Each
    /// fires once, right after this process's `after_cells`-th fresh
    /// append. Forwarded by the coordinator as `--faults`.
    pub faults: Vec<WorkerFault>,
}

/// What a [`run_worker`] call did, for the caller's diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerReport {
    /// The shard index served.
    pub shard: usize,
    /// Records already in the shard store when it was opened.
    pub resumed: usize,
    /// Torn-tail bytes the store repaired (truncated) on open — nonzero
    /// exactly when the previous incarnation of this shard died mid-append.
    pub repaired_tail_bytes: usize,
    /// Cells executed and appended by this run.
    pub executed: usize,
    /// Assigned cells skipped because the shard store already held them.
    pub skipped: usize,
    /// Assigned cells that failed to build or run (reported upstream as
    /// `Failed`, the worker keeps serving).
    pub failed: usize,
}

/// The internal assignment queue between the reader thread and the cell
/// runners. Closing stops *new* cells from arriving; whatever is already
/// queued still drains, matching the protocol's `Shutdown` contract
/// (finish everything assigned, then exit).
#[derive(Debug, Default)]
struct AssignQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

#[derive(Debug, Default)]
struct QueueState {
    cells: VecDeque<CellSpec>,
    closed: bool,
}

impl AssignQueue {
    fn push(&self, cell: CellSpec) {
        let mut state = self.lock();
        if !state.closed {
            state.cells.push_back(cell);
        }
        drop(state);
        self.ready.notify_one();
    }

    fn close(&self) {
        let mut state = self.lock();
        state.closed = true;
        drop(state);
        self.ready.notify_all();
    }

    /// Blocks for the next cell; `None` once the queue is closed *and*
    /// drained.
    fn pop(&self) -> Option<CellSpec> {
        let mut state = self.lock();
        loop {
            if let Some(cell) = state.cells.pop_front() {
                return Some(cell);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                // lint: allow(D4) -- queue users never panic while holding
                // the queue lock
                .expect("queue users do not poison the queue lock");
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state
            .lock()
            // lint: allow(D4) -- queue users never panic while holding the
            // queue lock
            .expect("queue users do not poison the queue lock")
    }
}

/// The fault armed to fire right after this process's `fresh`-th fresh
/// append, if any. At most one fault fires per trigger point; triggers are
/// per-process, so a restarted worker re-arms against its next fresh cell.
fn firing(faults: &[WorkerFault], fresh: usize) -> Option<&FaultKind> {
    faults
        .iter()
        .find(|f| f.after_cells == fresh)
        .map(|f| &f.kind)
}

/// Truncates `tear` bytes off the end of the shard store file — the
/// injected version of the torn tail a kill mid-append leaves behind.
/// Callers cap `tear` to the just-appended line and hold the store lock, so
/// the tear never destroys an acknowledged record.
fn tear_store_tail(path: &Path, tear: u64) -> std::io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    let len = file.metadata()?.len();
    file.set_len(len.saturating_sub(tear))
}

/// Serves one worker session over the given transport: handshakes `Ready`,
/// pulls work with `Request` frames, executes `Assign`ed cells into the
/// shard store, and exits on `Shutdown` or end-of-stream.
///
/// # Errors
///
/// [`FleetError::Campaign`] if the shard store fails to open or append,
/// [`FleetError::Protocol`] on malformed inbound frames, [`FleetError::Io`]
/// when the outbound transport breaks. Per-cell execution failures are
/// *not* errors here — they are reported upstream as `Failed` frames and
/// counted in the report.
pub fn run_worker<R, W>(config: &WorkerConfig, input: R, output: W) -> Result<WorkerReport>
where
    R: BufRead + Send,
    W: Write + Send,
{
    let store = ResultStore::open(&config.store).map_err(FleetError::from)?;
    let resumed = store.len();
    let repaired_tail_bytes = store.repaired_tail_bytes();
    if repaired_tail_bytes > 0 {
        // The previous incarnation died mid-append; the store has already
        // truncated the torn line, resume re-measures that cell.
        eprintln!(
            "worker {}: repaired a torn shard-store tail ({repaired_tail_bytes} byte(s)) \
             before resuming",
            config.shard
        );
    }
    let mut output = output;
    write_frame(
        &mut output,
        &WorkerFrame::Ready {
            shard: config.shard,
            resumed,
        },
    )?;

    let output = Mutex::new(output);
    let store = Mutex::new(store);
    let queue = AssignQueue::default();
    let executed = AtomicUsize::new(0);
    let skipped = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);
    let fatal: Mutex<Option<FleetError>> = Mutex::new(None);
    let threads = config.threads.max(1);
    let parallel_trials = threads == 1;

    std::thread::scope(|scope| {
        // The reader: drains the transport into the queue unconditionally,
        // so the coordinator's assignment writes never block on a busy
        // worker.
        {
            let queue = &queue;
            let fatal = &fatal;
            scope.spawn(move || {
                for line in input.lines() {
                    let line = match line {
                        Ok(line) => line,
                        Err(e) => {
                            set_fatal(fatal, FleetError::io(format!("cannot read frame: {e}")));
                            break;
                        }
                    };
                    if line.trim().is_empty() {
                        continue;
                    }
                    match parse_frame::<CoordinatorFrame>(&line) {
                        Ok(CoordinatorFrame::Assign { cell }) => queue.push(cell),
                        Ok(CoordinatorFrame::Shutdown) => break,
                        Err(e) => {
                            set_fatal(fatal, e);
                            break;
                        }
                    }
                }
                // Shutdown, EOF, and transport errors all end the session.
                queue.close();
            });
        }

        for _ in 0..threads {
            let queue = &queue;
            let store = &store;
            let output = &output;
            let fatal = &fatal;
            let (executed, skipped, failed) = (&executed, &skipped, &failed);
            scope.spawn(move || {
                loop {
                    // Pull: announce this runner is idle, then block for the
                    // lease the coordinator answers with. Assignments queued
                    // without a matching Request (scripted tests, legacy
                    // coordinators) drain exactly the same way.
                    if let Err(e) = send_frame(output, &WorkerFrame::Request) {
                        set_fatal(fatal, e);
                        queue.close();
                        return;
                    }
                    let Some(cell) = queue.pop() else { return };
                    let key = cell.key();
                    let already = {
                        let store = lock_store(store);
                        store.get(&key).map(|record| record.trials_run)
                    };
                    let frame = if let Some(trials_run) = already {
                        // Resumed shard: the cell is already durable, just
                        // acknowledge it.
                        skipped.fetch_add(1, Ordering::Relaxed);
                        WorkerFrame::Done { key, trials_run }
                    } else {
                        match execute_cell_batched(&cell, parallel_trials, config.batch) {
                            Ok(record) => {
                                let trials_run = record.trials_run;
                                // The exact bytes append writes (line +
                                // newline): the cap that keeps an injected
                                // tear inside the unacknowledged record.
                                let line_len =
                                    serde_json::to_string(&record).map(|s| s.len() + 1).ok();
                                let fresh = {
                                    let mut store_guard = lock_store(store);
                                    if let Err(e) = store_guard.append(record) {
                                        set_fatal(fatal, FleetError::Campaign(e));
                                        queue.close();
                                        return;
                                    }
                                    let fresh = executed.fetch_add(1, Ordering::Relaxed) + 1;
                                    // Kill-class faults fire under the store
                                    // lock: the file tail is still this
                                    // runner's own unacknowledged line.
                                    match firing(&config.faults, fresh) {
                                        Some(FaultKind::Kill) => {
                                            std::process::exit(INJECTED_EXIT_CODE);
                                        }
                                        Some(FaultKind::TornTail { tear_bytes }) => {
                                            if let Some(len) = line_len {
                                                let tear = (*tear_bytes).clamp(1, len - 1);
                                                let _ = tear_store_tail(&config.store, tear as u64);
                                            }
                                            std::process::exit(INJECTED_EXIT_CODE);
                                        }
                                        _ => {}
                                    }
                                    fresh
                                };
                                match firing(&config.faults, fresh) {
                                    Some(FaultKind::Hang { millis }) => {
                                        // Go silent in the durable-but-
                                        // unacknowledged window; the
                                        // coordinator's hang_timeout decides
                                        // whether to outwait or kill us.
                                        std::thread::sleep(Duration::from_millis(*millis));
                                    }
                                    Some(FaultKind::CorruptFrame) => {
                                        // Garbage instead of the Done frame;
                                        // the coordinator kills and restarts
                                        // us, and the restarted incarnation
                                        // re-acknowledges the durable cell.
                                        let sent = {
                                            let mut output = lock_output(output);
                                            output
                                                .write_all(CORRUPT_FRAME_LINE)
                                                .and_then(|()| output.flush())
                                        };
                                        if sent.is_err() {
                                            return;
                                        }
                                        continue;
                                    }
                                    _ => {}
                                }
                                WorkerFrame::Done { key, trials_run }
                            }
                            Err(e) => {
                                failed.fetch_add(1, Ordering::Relaxed);
                                WorkerFrame::Failed {
                                    key,
                                    reason: e.to_string(),
                                }
                            }
                        }
                    };
                    if let Err(e) = send_frame(output, &frame) {
                        set_fatal(fatal, e);
                        queue.close();
                        return;
                    }
                }
            });
        }
    });

    let fatal = fatal
        .into_inner()
        // lint: allow(D4) -- set_fatal cannot panic while holding the lock
        .expect("worker threads do not poison the fatal-error slot");
    match fatal {
        Some(error) => Err(error),
        None => Ok(WorkerReport {
            shard: config.shard,
            resumed,
            repaired_tail_bytes,
            executed: executed.into_inner(),
            skipped: skipped.into_inner(),
            failed: failed.into_inner(),
        }),
    }
}

/// Records the first fatal error; later ones (usually cascades of the
/// first) are dropped.
fn set_fatal(slot: &Mutex<Option<FleetError>>, error: FleetError) {
    let mut slot = slot
        .lock()
        // lint: allow(D4) -- the assignment below cannot panic
        .expect("worker threads do not poison the fatal-error slot");
    slot.get_or_insert(error);
}

fn lock_store(store: &Mutex<ResultStore>) -> std::sync::MutexGuard<'_, ResultStore> {
    store
        .lock()
        // lint: allow(D4) -- store users never panic while holding the
        // store lock
        .expect("store users do not poison the store lock")
}

fn lock_output<W: Write>(output: &Mutex<W>) -> std::sync::MutexGuard<'_, W> {
    output
        .lock()
        // lint: allow(D4) -- frame writers never panic while holding the
        // output lock
        .expect("frame writers do not poison the output lock")
}

/// Writes one frame under the output lock.
fn send_frame<W: Write>(output: &Mutex<W>, frame: &WorkerFrame) -> Result<()> {
    let mut output = lock_output(output);
    write_frame(&mut *output, frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dradio_campaign::{CampaignRunner, CampaignSpec, RoundsRule, SweepGroup, TrialPolicy};
    use dradio_core::algorithms::GlobalAlgorithm;
    use dradio_scenario::{AdversarySpec, ProblemSpec, TopologySpec};
    use std::io::Cursor;

    fn small_campaign() -> CampaignSpec {
        CampaignSpec::named("worker-test")
            .seed(5)
            .trials(TrialPolicy::Fixed(2))
            .group(
                SweepGroup::product(
                    vec![
                        TopologySpec::Clique { n: 8 },
                        TopologySpec::Clique { n: 16 },
                    ],
                    vec![
                        GlobalAlgorithm::Bgi.into(),
                        GlobalAlgorithm::Permuted.into(),
                    ],
                    vec![AdversarySpec::StaticNone],
                    vec![ProblemSpec::GlobalFrom(0)],
                )
                .rounds(RoundsRule::Fixed(2_000)),
            )
    }

    fn temp_store(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "dradio-fleet-worker-{tag}-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn config(store: PathBuf, threads: usize) -> WorkerConfig {
        WorkerConfig {
            shard: 3,
            store,
            threads,
            batch: false,
            faults: Vec::new(),
        }
    }

    /// Serializes a script of coordinator frames into transport bytes.
    fn script(frames: &[CoordinatorFrame]) -> Vec<u8> {
        let mut wire = Vec::new();
        for frame in frames {
            write_frame(&mut wire, frame).unwrap();
        }
        wire
    }

    /// Parses the outbound wire, dropping the pull-scheduling `Request`
    /// frames (their count is runner/timing-dependent) so tests can assert
    /// on the meaningful Ready/Done/Failed sequence.
    fn output_frames(wire: &[u8]) -> Vec<WorkerFrame> {
        String::from_utf8(wire.to_vec())
            .unwrap()
            .lines()
            .map(|line| parse_frame(line).unwrap())
            .filter(|frame| *frame != WorkerFrame::Request)
            .collect()
    }

    #[test]
    fn a_worker_session_runs_assigned_cells_and_acknowledges_each() {
        let campaign = small_campaign();
        let cells = campaign.expand().unwrap();
        let path = temp_store("session");
        let mut input = vec![];
        for cell in &cells {
            input.push(CoordinatorFrame::Assign { cell: cell.clone() });
        }
        input.push(CoordinatorFrame::Shutdown);

        let mut wire = Vec::new();
        let report = run_worker(
            &config(path.clone(), 1),
            Cursor::new(script(&input)),
            &mut wire,
        )
        .unwrap();
        assert_eq!(report.shard, 3);
        assert_eq!(report.resumed, 0);
        assert_eq!(report.repaired_tail_bytes, 0);
        assert_eq!(report.executed, cells.len());
        assert_eq!(report.skipped, 0);
        assert_eq!(report.failed, 0);

        // Handshake first, then one Done per cell in assignment order.
        let frames = output_frames(&wire);
        assert_eq!(
            frames[0],
            WorkerFrame::Ready {
                shard: 3,
                resumed: 0
            }
        );
        for (frame, cell) in frames[1..].iter().zip(&cells) {
            assert_eq!(
                frame,
                &WorkerFrame::Done {
                    key: cell.key(),
                    trials_run: 2,
                }
            );
        }

        // The shard store holds exactly what a campaign run would: the
        // worker path and the single-process path agree byte-for-byte.
        let reference = CampaignRunner::new(&campaign).run_in_memory().unwrap();
        let shard = ResultStore::open(&path).unwrap();
        assert_eq!(shard.records(), reference.records());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn idle_runners_announce_themselves_with_request_frames() {
        let campaign = small_campaign();
        let cell = campaign.expand().unwrap()[0].clone();
        let path = temp_store("request");
        let mut wire = Vec::new();
        run_worker(
            &config(path.clone(), 1),
            Cursor::new(script(&[
                CoordinatorFrame::Assign { cell },
                CoordinatorFrame::Shutdown,
            ])),
            &mut wire,
        )
        .unwrap();
        let raw: Vec<WorkerFrame> = String::from_utf8(wire)
            .unwrap()
            .lines()
            .map(|line| parse_frame(line).unwrap())
            .collect();
        assert!(
            matches!(raw[0], WorkerFrame::Ready { .. }),
            "handshake first: {raw:?}"
        );
        assert_eq!(
            raw[1],
            WorkerFrame::Request,
            "the runner requests before its first pop: {raw:?}"
        );
        assert!(
            raw.iter().any(|f| matches!(f, WorkerFrame::Done { .. })),
            "{raw:?}"
        );
    }

    #[test]
    fn resumed_shards_skip_durable_cells_but_still_acknowledge() {
        let campaign = small_campaign();
        let cells = campaign.expand().unwrap();
        let path = temp_store("resume");
        let mut input = vec![];
        for cell in &cells {
            input.push(CoordinatorFrame::Assign { cell: cell.clone() });
        }
        input.push(CoordinatorFrame::Shutdown);
        let wire_script = script(&input);

        run_worker(
            &config(path.clone(), 1),
            Cursor::new(wire_script.clone()),
            Vec::new(),
        )
        .unwrap();
        let bytes = std::fs::read(&path).unwrap();

        // Same session again: everything is already durable.
        let mut wire = Vec::new();
        let report = run_worker(
            &config(path.clone(), 1),
            Cursor::new(wire_script),
            &mut wire,
        )
        .unwrap();
        assert_eq!(report.resumed, cells.len());
        assert_eq!(report.executed, 0);
        assert_eq!(report.skipped, cells.len());
        let frames = output_frames(&wire);
        assert_eq!(
            frames[0],
            WorkerFrame::Ready {
                shard: 3,
                resumed: cells.len(),
            }
        );
        assert_eq!(frames.len(), 1 + cells.len(), "every skip is acknowledged");
        assert_eq!(std::fs::read(&path).unwrap(), bytes, "no re-appends");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_torn_shard_tail_is_repaired_and_reported_on_resume() {
        let campaign = small_campaign();
        let cells = campaign.expand().unwrap();
        let path = temp_store("torn-resume");
        let mut input = vec![];
        for cell in &cells {
            input.push(CoordinatorFrame::Assign { cell: cell.clone() });
        }
        input.push(CoordinatorFrame::Shutdown);
        let wire_script = script(&input);
        run_worker(
            &config(path.clone(), 1),
            Cursor::new(wire_script.clone()),
            Vec::new(),
        )
        .unwrap();
        let full = std::fs::read(&path).unwrap();

        // Tear 17 bytes off the final line, as a kill mid-append would.
        tear_store_tail(&path, 17).unwrap();
        let report = run_worker(
            &config(path.clone(), 1),
            Cursor::new(wire_script),
            Vec::new(),
        )
        .unwrap();
        assert!(report.repaired_tail_bytes > 0, "{report:?}");
        assert_eq!(report.resumed, cells.len() - 1);
        assert_eq!(report.executed, 1, "only the torn cell re-runs");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            full,
            "repair + re-run reproduces the untorn bytes"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_corrupt_frame_fault_garbles_the_ack_but_not_the_store() {
        let campaign = small_campaign();
        let cells = campaign.expand().unwrap();
        let path = temp_store("corrupt-fault");
        let mut cfg = config(path.clone(), 1);
        cfg.faults = vec![WorkerFault {
            shard: cfg.shard,
            after_cells: 1,
            kind: FaultKind::CorruptFrame,
        }];
        let mut input = vec![];
        for cell in &cells[..2] {
            input.push(CoordinatorFrame::Assign { cell: cell.clone() });
        }
        input.push(CoordinatorFrame::Shutdown);

        let mut wire = Vec::new();
        let report = run_worker(&cfg, Cursor::new(script(&input)), &mut wire).unwrap();
        assert_eq!(report.executed, 2, "the worker keeps serving after chaos");

        let text = String::from_utf8(wire).unwrap();
        assert!(
            text.contains("%%chaos:corrupt-frame%%"),
            "the garbage line replaces the first Done: {text}"
        );
        let dones = text
            .lines()
            .filter_map(|l| parse_frame::<WorkerFrame>(l).ok())
            .filter(|f| matches!(f, WorkerFrame::Done { .. }))
            .count();
        assert_eq!(dones, 1, "only the second cell is acknowledged: {text}");
        // Both cells are durable regardless: the store never lies.
        let shard = ResultStore::open(&path).unwrap();
        assert_eq!(shard.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn a_hang_fault_delays_but_still_acknowledges() {
        let campaign = small_campaign();
        let cell = campaign.expand().unwrap()[0].clone();
        let path = temp_store("hang-fault");
        let mut cfg = config(path.clone(), 1);
        cfg.faults = vec![WorkerFault {
            shard: cfg.shard,
            after_cells: 1,
            kind: FaultKind::Hang { millis: 20 },
        }];
        let mut wire = Vec::new();
        let report = run_worker(
            &cfg,
            Cursor::new(script(&[
                CoordinatorFrame::Assign { cell: cell.clone() },
                CoordinatorFrame::Shutdown,
            ])),
            &mut wire,
        )
        .unwrap();
        assert_eq!(report.executed, 1);
        let frames = output_frames(&wire);
        assert!(
            matches!(&frames[1], WorkerFrame::Done { key, .. } if key == &cell.key()),
            "{frames:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tear_store_tail_clamps_to_the_requested_bytes() {
        let path = temp_store("tear");
        std::fs::write(&path, b"0123456789").unwrap();
        tear_store_tail(&path, 4).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"012345");
        // Over-tearing empties the file rather than erroring.
        tear_store_tail(&path, 100).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn failing_cells_report_failed_and_the_worker_keeps_serving() {
        // GlobalFrom(99) on an 8-node clique cannot build; the next
        // assignment must still run.
        let campaign = small_campaign();
        let good = campaign.expand().unwrap()[0].clone();
        let mut bad = good.clone();
        bad.scenario.problem = ProblemSpec::GlobalFrom(99);

        let path = temp_store("failing");
        let mut wire = Vec::new();
        let report = run_worker(
            &config(path.clone(), 1),
            Cursor::new(script(&[
                CoordinatorFrame::Assign { cell: bad.clone() },
                CoordinatorFrame::Assign { cell: good.clone() },
                CoordinatorFrame::Shutdown,
            ])),
            &mut wire,
        )
        .unwrap();
        assert_eq!(report.failed, 1);
        assert_eq!(report.executed, 1);
        let frames = output_frames(&wire);
        assert!(
            matches!(&frames[1], WorkerFrame::Failed { key, .. } if key == &bad.key()),
            "{frames:?}"
        );
        assert!(
            matches!(&frames[2], WorkerFrame::Done { key, .. } if key == &good.key()),
            "{frames:?}"
        );
        let shard = ResultStore::open(&path).unwrap();
        assert_eq!(shard.len(), 1, "only the good cell is durable");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn end_of_stream_without_shutdown_ends_the_session_cleanly() {
        // A vanished coordinator (EOF on the transport) must not wedge the
        // worker: it finishes and exits as if shut down.
        let campaign = small_campaign();
        let cell = campaign.expand().unwrap()[0].clone();
        let path = temp_store("eof");
        let report = run_worker(
            &config(path.clone(), 1),
            Cursor::new(script(&[CoordinatorFrame::Assign { cell }])),
            Vec::new(),
        )
        .unwrap();
        assert_eq!(report.executed, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn multi_threaded_workers_store_the_same_records_in_some_order() {
        let campaign = small_campaign();
        let cells = campaign.expand().unwrap();
        let path = temp_store("threads");
        let mut input = vec![];
        for cell in &cells {
            input.push(CoordinatorFrame::Assign { cell: cell.clone() });
        }
        input.push(CoordinatorFrame::Shutdown);

        let report = run_worker(
            &config(path.clone(), 4),
            Cursor::new(script(&input)),
            Vec::new(),
        )
        .unwrap();
        assert_eq!(report.executed, cells.len());

        // Append order is scheduling-dependent, record content is not: the
        // key set and each record's bytes match the single-process run
        // (merge re-establishes expansion order).
        let reference = CampaignRunner::new(&campaign).run_in_memory().unwrap();
        let shard = ResultStore::open(&path).unwrap();
        assert_eq!(shard.len(), reference.len());
        for record in reference.records() {
            assert_eq!(shard.get(&record.key), Some(record));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_inbound_frames_are_fatal() {
        let path = temp_store("malformed");
        let err = run_worker(
            &config(path.clone(), 1),
            Cursor::new(b"this is not a frame\n".to_vec()),
            Vec::new(),
        )
        .unwrap_err();
        assert!(matches!(err, FleetError::Protocol { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
