//! The dual graph `(G, G')` network model.

use std::fmt;

use crate::error::GraphError;
use crate::geometry::Embedding;
use crate::graph::{Edge, Graph, GraphBackend};
use crate::node::NodeId;
use crate::Result;

/// A dual graph network `(G, G')` with `E ⊆ E'` over a common vertex set.
///
/// * Edges of `G` are **reliable**: they are present in the communication
///   topology of every round.
/// * Edges of `G' \ G` are **dynamic**: an adversarial link process decides,
///   round by round, which of them are present.
///
/// When `G = G'` the model degenerates to the classic static protocol model,
/// which is how the static baselines of Figure 1 (row 4) are simulated.
///
/// An optional Euclidean [`Embedding`] records node positions for networks
/// that satisfy the paper's *geographic constraint* (Section 2): nodes at
/// distance `≤ 1` are connected in `G` and nodes at distance `> r` are not
/// connected in `G'`.
///
/// # Example
///
/// ```
/// use dradio_graphs::{DualGraph, GraphBuilder};
/// let g = GraphBuilder::new(3).edge(0, 1).edge(1, 2).build()?;
/// let g_prime = GraphBuilder::new(3).edge(0, 1).edge(1, 2).edge(0, 2).build()?;
/// let dual = DualGraph::new(g, g_prime)?;
/// assert_eq!(dual.len(), 3);
/// assert_eq!(dual.dynamic_edges().len(), 1); // only (0, 2) is dynamic
/// # Ok::<(), dradio_graphs::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DualGraph {
    g: Graph,
    g_prime: Graph,
    embedding: Option<Embedding>,
    name: String,
}

impl DualGraph {
    /// Creates a dual graph from a reliable layer `g` and an unreliable layer
    /// `g_prime`.
    ///
    /// # Errors
    ///
    /// * [`GraphError::LayerSizeMismatch`] if the layers have different vertex
    ///   counts.
    /// * [`GraphError::NotContained`] if some edge of `g` is missing from
    ///   `g_prime`.
    pub fn new(g: Graph, g_prime: Graph) -> Result<Self> {
        if g.len() != g_prime.len() {
            return Err(GraphError::LayerSizeMismatch {
                g: g.len(),
                g_prime: g_prime.len(),
            });
        }
        if let Some(missing) = g.first_missing_in(&g_prime) {
            return Err(GraphError::NotContained { missing });
        }
        Ok(DualGraph {
            g,
            g_prime,
            embedding: None,
            name: String::from("dual"),
        })
    }

    /// Creates a *static* dual graph with `G = G'`, i.e. the classic protocol
    /// model over `g`.
    pub fn static_model(g: Graph) -> Self {
        DualGraph {
            g_prime: g.clone(),
            g,
            embedding: None,
            name: String::from("static"),
        }
    }

    /// Attaches a Euclidean embedding (used by geographic topologies).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::LayerSizeMismatch`] if the embedding has a
    /// different number of points than the graph has vertices.
    pub fn with_embedding(mut self, embedding: Embedding) -> Result<Self> {
        if embedding.len() != self.len() {
            return Err(GraphError::LayerSizeMismatch {
                g: self.len(),
                g_prime: embedding.len(),
            });
        }
        self.embedding = Some(embedding);
        Ok(self)
    }

    /// Sets a human-readable name used in experiment tables.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Human-readable topology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The reliable layer `G`.
    pub fn g(&self) -> &Graph {
        &self.g
    }

    /// The unreliable layer `G'`.
    pub fn g_prime(&self) -> &Graph {
        &self.g_prime
    }

    /// The Euclidean embedding, if the topology has one.
    pub fn embedding(&self) -> Option<&Embedding> {
        self.embedding.as_ref()
    }

    /// Number of vertices `n`.
    pub fn len(&self) -> usize {
        self.g.len()
    }

    /// Returns `true` if the network has no vertices.
    pub fn is_empty(&self) -> bool {
        self.g.is_empty()
    }

    /// Maximum degree `Δ` measured in `G'`, as defined in Section 2 of the
    /// paper (processes are assumed to know this value).
    pub fn max_degree(&self) -> usize {
        self.g_prime.max_degree()
    }

    /// Returns `true` if `G = G'`, i.e. there are no dynamic links.
    pub fn is_static(&self) -> bool {
        self.g.edge_count() == self.g_prime.edge_count()
    }

    /// The storage backend of the reliable layer (generators keep both
    /// layers on the same backend).
    pub fn graph_backend(&self) -> GraphBackend {
        self.g.backend()
    }

    /// Returns this network with both layers converted to `backend` (cheap
    /// clones where a layer already matches); name and embedding carry over.
    /// Simulation outcomes are backend-independent — only memory footprint
    /// and row-scan strategy change.
    pub fn with_graph_backend(&self, backend: GraphBackend) -> DualGraph {
        DualGraph {
            g: self.g.with_backend(backend),
            g_prime: self.g_prime.with_backend(backend),
            embedding: self.embedding.clone(),
            name: self.name.clone(),
        }
    }

    /// Returns the dynamic edges `E' \ E` in canonical order.
    pub fn dynamic_edges(&self) -> Vec<Edge> {
        self.g_prime
            .edges()
            .into_iter()
            .filter(|e| {
                let (u, v) = e.endpoints();
                !self.g.has_edge(u, v)
            })
            .collect()
    }

    /// Returns `true` if the containment invariant `E ⊆ E'` holds.
    ///
    /// Constructors already enforce the invariant; this is exposed so tests
    /// and property checks can assert it cheaply after transformations.
    pub fn is_valid(&self) -> bool {
        self.g.len() == self.g_prime.len() && self.g.is_subgraph_of(&self.g_prime)
    }

    /// Neighbors of `u` in the reliable layer `G`.
    pub fn g_neighbors(&self, u: NodeId) -> &[NodeId] {
        self.g.neighbors(u)
    }

    /// Neighbors of `u` in the unreliable layer `G'` (written `N_{G'}(u)` in
    /// the paper).
    pub fn g_prime_neighbors(&self, u: NodeId) -> &[NodeId] {
        self.g_prime.neighbors(u)
    }

    /// Checks the geographic constraint of Section 2 against the attached
    /// embedding: for all `u ≠ v`, `d(u,v) ≤ 1 ⇒ (u,v) ∈ G` and
    /// `d(u,v) > r ⇒ (u,v) ∉ G'`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingEmbedding`] if the dual graph has no
    /// embedding attached.
    pub fn satisfies_geographic_constraint(&self, r: f64) -> Result<bool> {
        let emb = self
            .embedding
            .as_ref()
            .ok_or(GraphError::MissingEmbedding)?;
        for u in self.g.nodes() {
            for v in self.g.nodes() {
                if u >= v {
                    continue;
                }
                let d = emb.distance(u, v);
                if d <= 1.0 && !self.g.has_edge(u, v) {
                    return Ok(false);
                }
                if d > r && self.g_prime.has_edge(u, v) {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }
}

impl fmt::Display for DualGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (n = {}, |E| = {}, |E'| = {}, Δ = {})",
            self.name,
            self.len(),
            self.g.edge_count(),
            self.g_prime.edge_count(),
            self.max_degree()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn triangle_line() -> (Graph, Graph) {
        let g = GraphBuilder::new(3).edge(0, 1).edge(1, 2).build().unwrap();
        let gp = GraphBuilder::new(3)
            .edge(0, 1)
            .edge(1, 2)
            .edge(0, 2)
            .build()
            .unwrap();
        (g, gp)
    }

    #[test]
    fn construction_enforces_containment() {
        let (g, gp) = triangle_line();
        assert!(DualGraph::new(g.clone(), gp).is_ok());
        // Reversed layers violate E ⊆ E'.
        let gp_small = GraphBuilder::new(3).edge(0, 1).build().unwrap();
        let err = DualGraph::new(g, gp_small).unwrap_err();
        assert!(matches!(err, GraphError::NotContained { .. }));
    }

    #[test]
    fn construction_enforces_size_match() {
        let g = Graph::empty(3);
        let gp = Graph::empty(4);
        assert!(matches!(
            DualGraph::new(g, gp),
            Err(GraphError::LayerSizeMismatch { g: 3, g_prime: 4 })
        ));
    }

    #[test]
    fn static_model_has_no_dynamic_edges() {
        let g = Graph::complete(5);
        let dual = DualGraph::static_model(g);
        assert!(dual.is_static());
        assert!(dual.dynamic_edges().is_empty());
        assert!(dual.is_valid());
    }

    #[test]
    fn dynamic_edges_are_exactly_the_difference() {
        let (g, gp) = triangle_line();
        let dual = DualGraph::new(g, gp).unwrap();
        let dyn_edges = dual.dynamic_edges();
        assert_eq!(dyn_edges.len(), 1);
        assert_eq!(dyn_edges[0].endpoints(), (NodeId::new(0), NodeId::new(2)));
        assert!(!dual.is_static());
    }

    #[test]
    fn max_degree_is_measured_in_g_prime() {
        let (g, gp) = triangle_line();
        let dual = DualGraph::new(g, gp).unwrap();
        assert_eq!(dual.max_degree(), 2);
        assert_eq!(dual.g().max_degree(), 2);
    }

    #[test]
    fn neighbors_accessors_distinguish_layers() {
        let (g, gp) = triangle_line();
        let dual = DualGraph::new(g, gp).unwrap();
        assert_eq!(dual.g_neighbors(NodeId::new(0)), &[NodeId::new(1)]);
        assert_eq!(
            dual.g_prime_neighbors(NodeId::new(0)),
            &[NodeId::new(1), NodeId::new(2)]
        );
    }

    #[test]
    fn geographic_check_requires_embedding() {
        let (g, gp) = triangle_line();
        let dual = DualGraph::new(g, gp).unwrap();
        assert_eq!(
            dual.satisfies_geographic_constraint(2.0),
            Err(GraphError::MissingEmbedding)
        );
    }

    #[test]
    fn name_and_display() {
        let (g, gp) = triangle_line();
        let dual = DualGraph::new(g, gp).unwrap().with_name("toy");
        assert_eq!(dual.name(), "toy");
        let shown = dual.to_string();
        assert!(shown.contains("toy"));
        assert!(shown.contains("n = 3"));
    }

    #[test]
    fn embedding_size_is_validated() {
        use crate::geometry::{Embedding, Point};
        let (g, gp) = triangle_line();
        let dual = DualGraph::new(g, gp).unwrap();
        let short = Embedding::new(vec![Point::new(0.0, 0.0)]);
        assert!(dual.with_embedding(short).is_err());
    }
}
