//! Error types for graph construction and queries.

use std::error::Error;
use std::fmt;

use crate::node::NodeId;

/// Errors produced by graph construction, topology generation, and queries.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node identifier referenced a vertex outside `0..n`.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The number of vertices in the graph.
        n: usize,
    },
    /// A self-loop `(u, u)` was requested; the radio model forbids them.
    SelfLoop {
        /// The node for which a self-loop was requested.
        node: NodeId,
    },
    /// A dual graph was built whose reliable edge set is not contained in
    /// the unreliable edge set (`E ⊄ E'`).
    NotContained {
        /// A witness edge present in `G` but missing from `G'`.
        missing: (NodeId, NodeId),
    },
    /// The two layers of a dual graph have different vertex counts.
    LayerSizeMismatch {
        /// Number of vertices in `G`.
        g: usize,
        /// Number of vertices in `G'`.
        g_prime: usize,
    },
    /// A topology generator was asked for an unsupported parameter value.
    InvalidParameter {
        /// Human-readable description of the violated requirement.
        reason: String,
    },
    /// An operation requiring a connected graph was called on a disconnected
    /// graph.
    Disconnected,
    /// An operation requiring a Euclidean embedding was called on a graph
    /// without one.
    MissingEmbedding,
    /// An edge mutation was attempted on a backend whose rows are packed
    /// (CSR graphs are immutable once built; convert to dense to mutate).
    ImmutableBackend {
        /// The mutating operation that was refused.
        op: &'static str,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} vertices")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop requested at {node}"),
            GraphError::NotContained { missing } => write!(
                f,
                "reliable edge ({}, {}) missing from the unreliable layer",
                missing.0, missing.1
            ),
            GraphError::LayerSizeMismatch { g, g_prime } => write!(
                f,
                "dual graph layers disagree on vertex count: |V(G)| = {g}, |V(G')| = {g_prime}"
            ),
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid topology parameter: {reason}")
            }
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::MissingEmbedding => {
                write!(
                    f,
                    "operation requires a Euclidean embedding but none is attached"
                )
            }
            GraphError::ImmutableBackend { op } => {
                write!(
                    f,
                    "{op} is not supported on the CSR backend (packed rows are immutable; convert to dense to mutate)"
                )
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<GraphError> = vec![
            GraphError::NodeOutOfRange {
                node: NodeId::new(9),
                n: 4,
            },
            GraphError::SelfLoop {
                node: NodeId::new(1),
            },
            GraphError::NotContained {
                missing: (NodeId::new(0), NodeId::new(1)),
            },
            GraphError::LayerSizeMismatch { g: 3, g_prime: 4 },
            GraphError::InvalidParameter {
                reason: "n must be even".to_string(),
            },
            GraphError::Disconnected,
            GraphError::MissingEmbedding,
            GraphError::ImmutableBackend { op: "add_edge" },
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase() || msg.starts_with("dual"));
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error>(_e: E) {}
        takes_error(GraphError::Disconnected);
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(GraphError::Disconnected, GraphError::Disconnected);
        assert_ne!(GraphError::Disconnected, GraphError::MissingEmbedding);
    }
}
