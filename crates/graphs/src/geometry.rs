//! Euclidean embeddings used by geographic dual graphs.

use std::fmt;

use crate::node::NodeId;

/// A point in the Euclidean plane.
///
/// # Example
///
/// ```
/// use dradio_graphs::Point;
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert!((a.distance(b) - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when
    /// only comparisons are needed).
    pub fn distance_squared(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

/// A Euclidean embedding: one [`Point`] per node of a graph.
///
/// Geographic dual graphs (Section 2 of the paper) carry an embedding so the
/// geographic constraint can be validated and so the region decomposition of
/// Section 4.3 can be computed.
///
/// # Example
///
/// ```
/// use dradio_graphs::{Embedding, NodeId, Point};
/// let emb = Embedding::new(vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)]);
/// assert_eq!(emb.len(), 2);
/// assert!(emb.distance(NodeId::new(0), NodeId::new(1)) <= 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Embedding {
    points: Vec<Point>,
}

impl Embedding {
    /// Creates an embedding from a list of points; point `i` is the position
    /// of node `i`.
    pub fn new(points: Vec<Point>) -> Self {
        Embedding { points }
    }

    /// Number of embedded nodes.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the embedding has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Position of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range for this embedding.
    pub fn position(&self, u: NodeId) -> Point {
        self.points[u.index()]
    }

    /// Position of node `u`, or `None` if out of range.
    pub fn get(&self, u: NodeId) -> Option<Point> {
        self.points.get(u.index()).copied()
    }

    /// Euclidean distance between nodes `u` and `v`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn distance(&self, u: NodeId, v: NodeId) -> f64 {
        self.position(u).distance(self.position(v))
    }

    /// Iterates over `(node, point)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Point)> + '_ {
        self.points
            .iter()
            .enumerate()
            .map(|(i, &p)| (NodeId::new(i), p))
    }

    /// Bounding box `(min, max)` of all points, or `None` for an empty
    /// embedding.
    pub fn bounding_box(&self) -> Option<(Point, Point)> {
        if self.points.is_empty() {
            return None;
        }
        let mut min = self.points[0];
        let mut max = self.points[0];
        for p in &self.points[1..] {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        Some((min, max))
    }
}

impl FromIterator<Point> for Embedding {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Self {
        Embedding::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance_is_euclidean() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert!((a.distance_squared(b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn point_distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(-1.5, 0.25);
        let b = Point::new(2.0, -3.0);
        assert_eq!(a.distance(b), b.distance(a));
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn embedding_round_trips_points() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        let emb = Embedding::new(pts.clone());
        assert_eq!(emb.len(), 2);
        assert_eq!(emb.position(NodeId::new(1)), pts[1]);
        assert_eq!(emb.get(NodeId::new(5)), None);
    }

    #[test]
    fn embedding_distance_uses_positions() {
        let emb = Embedding::new(vec![Point::new(0.0, 0.0), Point::new(0.0, 2.0)]);
        assert!((emb.distance(NodeId::new(0), NodeId::new(1)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bounding_box_covers_all_points() {
        let emb: Embedding = vec![
            Point::new(1.0, -2.0),
            Point::new(-3.0, 4.0),
            Point::new(0.5, 0.5),
        ]
        .into_iter()
        .collect();
        let (min, max) = emb.bounding_box().unwrap();
        assert_eq!(min, Point::new(-3.0, -2.0));
        assert_eq!(max, Point::new(1.0, 4.0));
        assert!(Embedding::default().bounding_box().is_none());
    }

    #[test]
    fn iter_enumerates_in_order() {
        let emb = Embedding::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]);
        let ids: Vec<usize> = emb.iter().map(|(u, _)| u.index()).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn display_formats_coordinates() {
        assert_eq!(Point::new(1.0, 2.5).to_string(), "(1.000, 2.500)");
    }
}
