//! Simple undirected graphs with O(1) edge queries and a pluggable
//! dense/CSR storage backend.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::GraphError;
use crate::node::NodeId;
use crate::Result;

/// An undirected edge between two nodes, stored in canonical (sorted) order.
///
/// # Example
///
/// ```
/// use dradio_graphs::{Edge, NodeId};
/// let e = Edge::new(NodeId::new(3), NodeId::new(1));
/// assert_eq!(e.endpoints(), (NodeId::new(1), NodeId::new(3)));
/// assert!(e.touches(NodeId::new(3)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    lo: NodeId,
    hi: NodeId,
}

impl Edge {
    /// Creates an edge between `u` and `v`, normalizing endpoint order.
    ///
    /// # Panics
    ///
    /// Panics if `u == v`; the radio model has no self-loops.
    pub fn new(u: NodeId, v: NodeId) -> Self {
        assert_ne!(u, v, "self-loops are not allowed in radio network graphs");
        if u < v {
            Edge { lo: u, hi: v }
        } else {
            Edge { lo: v, hi: u }
        }
    }

    /// Returns the endpoints in canonical (ascending) order.
    pub fn endpoints(self) -> (NodeId, NodeId) {
        (self.lo, self.hi)
    }

    /// Returns `true` if `node` is one of the endpoints.
    pub fn touches(self, node: NodeId) -> bool {
        self.lo == node || self.hi == node
    }

    /// Returns the endpoint opposite to `node`, or `None` if `node` is not an
    /// endpoint of this edge.
    pub fn other(self, node: NodeId) -> Option<NodeId> {
        if node == self.lo {
            Some(self.hi)
        } else if node == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.lo, self.hi)
    }
}

/// The physical representation backing a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphBackend {
    /// Row-aligned adjacency bit matrix plus sorted adjacency lists: O(n²)
    /// bits of memory, O(1) edge queries, and word-parallel row scans. The
    /// right choice for the paper's small dense networks.
    Dense,
    /// Compressed sparse rows (offsets + sorted targets): O(n + m) memory,
    /// O(log deg) edge queries, cache-friendly sorted row iteration. The
    /// only representation that fits million-node sparse topologies.
    Csr,
}

impl fmt::Display for GraphBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphBackend::Dense => write!(f, "dense"),
            GraphBackend::Csr => write!(f, "csr"),
        }
    }
}

/// Largest vertex count for which [`auto_backend`] always picks
/// [`GraphBackend::Dense`]. Below this floor the whole bit matrix is at most
/// half a megabyte, every registered campaign store was produced dense, and
/// the word-parallel reception scans are fastest — so small networks never
/// change representation out from under existing byte-stability pins.
pub const DENSE_AUTO_MAX_NODES: usize = 2048;

/// Picks the storage backend for an `n`-vertex graph expected to carry
/// `expected_edges` undirected edges: dense below the
/// [`DENSE_AUTO_MAX_NODES`] floor (bit-exact compatibility with existing
/// stores, fastest at that scale), dense above it only when rows are full
/// enough that word scans beat list walks (m ≥ n²/16), CSR otherwise.
pub fn auto_backend(n: usize, expected_edges: u64) -> GraphBackend {
    if n <= DENSE_AUTO_MAX_NODES {
        return GraphBackend::Dense;
    }
    let dense_pays = expected_edges.saturating_mul(16) >= (n as u64).saturating_mul(n as u64);
    if dense_pays {
        GraphBackend::Dense
    } else {
        GraphBackend::Csr
    }
}

/// Estimated resident bytes of the dense backend for an `n`-vertex graph:
/// the row-aligned bit matrix (which dominates) plus the adjacency lists.
pub fn dense_bytes_estimate(n: usize, expected_edges: u64) -> u64 {
    let n = n as u64;
    let matrix = n * n.div_ceil(64) * 8;
    let lists = 2 * expected_edges * 8 + n * 24;
    matrix + lists
}

/// Estimated resident bytes of the CSR backend for an `n`-vertex graph with
/// `expected_edges` undirected edges: one offset per vertex plus two stored
/// targets per edge.
pub fn csr_bytes_estimate(n: usize, expected_edges: u64) -> u64 {
    (n as u64 + 1) * 8 + 2 * expected_edges * 8
}

/// One adjacency row, in whatever shape the backend stores it.
///
/// Hot-path consumers (the scalar reception strategies and the batch
/// executor's word algebra) match on this once per listener and run the
/// backend-appropriate scan: word intersection against a packed transmitter
/// bitset for [`NeighborRow::Dense`], a sorted neighbor walk for
/// [`NeighborRow::Sparse`]. Both enumerate the same neighbor set in the same
/// ascending order.
#[derive(Debug, Clone, Copy)]
pub enum NeighborRow<'a> {
    /// A packed bitset row (dense backend): bit `v` (word `v / 64`, bit
    /// `v % 64`) is set iff the edge `(u, v)` is present.
    Dense(&'a [u64]),
    /// The sorted neighbor ids of the row (CSR backend).
    Sparse(&'a [NodeId]),
}

/// The backend-specific edge storage. `Dense` is field-for-field the
/// pre-CSR representation, so every dense graph behaves (and hashes, and
/// serializes through its consumers) exactly as before.
#[derive(Debug, Clone)]
enum GraphStorage {
    Dense {
        /// Words per adjacency row (`⌈n / 64⌉`).
        words_per_row: usize,
        adjacency: Vec<Vec<NodeId>>,
        /// Row-aligned bit matrix: bit `v` of row `u` (word `u·words_per_row
        /// + v/64`) is set iff the edge `(u, v)` is present.
        bits: Vec<u64>,
    },
    Csr {
        /// `offsets[u]..offsets[u + 1]` delimits row `u` in `targets`.
        offsets: Vec<usize>,
        /// Concatenated sorted neighbor lists.
        targets: Vec<NodeId>,
    },
}

/// A simple undirected graph over the vertex set `{0, ..., n-1}`.
///
/// Two storage backends live behind one accessor surface (see
/// [`GraphBackend`]):
///
/// * **Dense** (the default) keeps a sorted adjacency list per node plus a
///   packed bit matrix, so a whole adjacency row is available as a word
///   slice. The simulator intersects these rows with its packed transmitter
///   bitset to resolve reception 64 candidates at a time.
/// * **Csr** keeps compressed sparse rows only — O(n + m) memory — built by
///   the streaming topology generators for networks far too large for an
///   n×n matrix. CSR graphs are immutable once built.
///
/// [`Graph::neighbor_row`] exposes the row in its native shape; `neighbors`,
/// `has_edge`, `degree`, `edges` and the rest behave identically on both.
///
/// # Example
///
/// ```
/// use dradio_graphs::{Graph, NodeId};
/// let mut g = Graph::empty(4);
/// g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
/// g.add_edge(NodeId::new(1), NodeId::new(2)).unwrap();
/// assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
/// assert_eq!(g.degree(NodeId::new(1)), 2);
/// assert_eq!(g.edge_count(), 2);
/// // Row 1 has bits 0 and 2 set.
/// assert_eq!(g.neighbor_bits(NodeId::new(1)), &[0b101]);
/// // The same graph in CSR form is equal and answers identically.
/// let sparse = g.to_csr();
/// assert_eq!(sparse, g);
/// assert!(sparse.has_edge(NodeId::new(2), NodeId::new(1)));
/// ```
#[derive(Debug, Clone)]
pub struct Graph {
    n: usize,
    storage: GraphStorage,
    edge_count: usize,
}

impl PartialEq for Graph {
    /// Structural equality: same vertex set and same edge set, regardless of
    /// backend — a CSR graph equals its dense counterpart.
    fn eq(&self, other: &Self) -> bool {
        if self.n != other.n || self.edge_count != other.edge_count {
            return false;
        }
        (0..self.n).all(|u| self.neighbors(NodeId::new(u)) == other.neighbors(NodeId::new(u)))
    }
}

impl Eq for Graph {}

impl Graph {
    /// Creates a dense graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        Graph {
            n,
            storage: GraphStorage::Dense {
                words_per_row,
                adjacency: vec![Vec::new(); n],
                bits: vec![0u64; n.saturating_mul(words_per_row)],
            },
            edge_count: 0,
        }
    }

    /// Creates a complete graph (clique) on `n` vertices.
    pub fn complete(n: usize) -> Self {
        let mut g = Graph::empty(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(NodeId::new(i), NodeId::new(j))
                    // lint: allow(D4) -- i < j < n by the loop bounds
                    .expect("indices are in range and distinct");
            }
        }
        g
    }

    /// Builds a CSR graph from an undirected edge list. Duplicate pairs (in
    /// either orientation) collapse to one edge; rows come out sorted. The
    /// whole construction is O(n + m) — no n×n matrix is ever touched.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`] if
    /// any pair is invalid.
    pub fn csr_from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Graph> {
        let mut degree = vec![0usize; n];
        for &(u, v) in edges {
            if u >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: NodeId::new(u),
                    n,
                });
            }
            if v >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: NodeId::new(v),
                    n,
                });
            }
            if u == v {
                return Err(GraphError::SelfLoop {
                    node: NodeId::new(u),
                });
            }
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut scratch = vec![NodeId::new(0); acc];
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        for &(u, v) in edges {
            scratch[cursor[u]] = NodeId::new(v);
            cursor[u] += 1;
            scratch[cursor[v]] = NodeId::new(u);
            cursor[v] += 1;
        }
        // Sort each row and drop duplicate entries (a pair listed twice).
        let mut targets = Vec::with_capacity(acc);
        let mut deduped = Vec::with_capacity(n + 1);
        deduped.push(0usize);
        for u in 0..n {
            let row = &mut scratch[offsets[u]..offsets[u + 1]];
            row.sort_unstable();
            let mut prev: Option<NodeId> = None;
            for &v in row.iter() {
                if Some(v) != prev {
                    targets.push(v);
                    prev = Some(v);
                }
            }
            deduped.push(targets.len());
        }
        let edge_count = targets.len() / 2;
        Ok(Graph {
            n,
            storage: GraphStorage::Csr {
                offsets: deduped,
                targets,
            },
            edge_count,
        })
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Which physical representation backs this graph.
    pub fn backend(&self) -> GraphBackend {
        match &self.storage {
            GraphStorage::Dense { .. } => GraphBackend::Dense,
            GraphStorage::Csr { .. } => GraphBackend::Csr,
        }
    }

    /// Number of `u64` words in each adjacency-row bitset (`⌈n / 64⌉`).
    ///
    /// Defined for both backends — simulator bitsets (transmitter sets,
    /// lane masks) are sized from it regardless of how adjacency is stored.
    pub fn row_words(&self) -> usize {
        match &self.storage {
            GraphStorage::Dense { words_per_row, .. } => *words_per_row,
            GraphStorage::Csr { .. } => self.n.div_ceil(64),
        }
    }

    // CSR row access: the scalar and batch reception loops call these once
    // per listener per round; no allocation permitted.
    // lint: hot-path

    /// The packed adjacency row of `u`: bit `v` (word `v / 64`, bit `v % 64`)
    /// is set iff the edge `(u, v)` is present. Out-of-range nodes have an
    /// empty row.
    ///
    /// Dense backend only — CSR graphs store no bit matrix and report an
    /// empty row. Backend-agnostic consumers use
    /// [`neighbor_row`](Graph::neighbor_row) instead.
    pub fn neighbor_bits(&self, u: NodeId) -> &[u64] {
        match &self.storage {
            GraphStorage::Dense {
                words_per_row,
                bits,
                ..
            } => {
                if u.index() >= self.n {
                    return &[];
                }
                let start = u.index() * words_per_row;
                &bits[start..start + words_per_row]
            }
            GraphStorage::Csr { .. } => &[],
        }
    }

    /// The adjacency row of `u` in the backend's native shape — the packed
    /// bitset for dense graphs, the sorted neighbor slice for CSR graphs.
    /// Out-of-range nodes have an empty sparse row.
    pub fn neighbor_row(&self, u: NodeId) -> NeighborRow<'_> {
        match &self.storage {
            GraphStorage::Dense {
                words_per_row,
                bits,
                ..
            } => {
                if u.index() >= self.n {
                    return NeighborRow::Sparse(&[]);
                }
                let start = u.index() * words_per_row;
                NeighborRow::Dense(&bits[start..start + words_per_row])
            }
            GraphStorage::Csr { offsets, targets } => {
                if u.index() >= self.n {
                    return NeighborRow::Sparse(&[]);
                }
                NeighborRow::Sparse(&targets[offsets[u.index()]..offsets[u.index() + 1]])
            }
        }
    }

    /// Returns `true` if the undirected edge `(u, v)` is present.
    ///
    /// O(1) on the dense backend, O(log deg(u)) on CSR. Out-of-range
    /// endpoints simply report `false`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u.index() >= self.n || v.index() >= self.n || u == v {
            return false;
        }
        match &self.storage {
            GraphStorage::Dense {
                words_per_row,
                bits,
                ..
            } => {
                let idx = u.index() * words_per_row * 64 + v.index();
                bits[idx / 64] >> (idx % 64) & 1 == 1
            }
            GraphStorage::Csr { offsets, targets } => targets
                [offsets[u.index()]..offsets[u.index() + 1]]
                .binary_search(&v)
                .is_ok(),
        }
    }

    /// Returns the neighbors of `u` in ascending order.
    ///
    /// Out-of-range nodes have no neighbors.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        if u.index() >= self.n {
            return &[];
        }
        match &self.storage {
            GraphStorage::Dense { adjacency, .. } => &adjacency[u.index()],
            GraphStorage::Csr { offsets, targets } => {
                &targets[offsets[u.index()]..offsets[u.index() + 1]]
            }
        }
    }

    /// Degree of `u` (0 for out-of-range nodes).
    pub fn degree(&self, u: NodeId) -> usize {
        self.neighbors(u).len()
    }

    // lint: end-hot-path

    fn check_node(&self, node: NodeId) -> Result<()> {
        if node.index() >= self.n {
            Err(GraphError::NodeOutOfRange { node, n: self.n })
        } else {
            Ok(())
        }
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// Adding an edge twice is a no-op and reports `Ok(false)`; a newly added
    /// edge reports `Ok(true)`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if either endpoint is not a
    /// vertex, [`GraphError::SelfLoop`] if `u == v`, and
    /// [`GraphError::ImmutableBackend`] on a CSR graph (CSR rows are packed;
    /// convert with [`to_dense`](Graph::to_dense) to mutate).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if self.has_edge(u, v) {
            return Ok(false);
        }
        match &mut self.storage {
            GraphStorage::Dense {
                words_per_row,
                adjacency,
                bits,
            } => {
                let a = u.index() * *words_per_row * 64 + v.index();
                let b = v.index() * *words_per_row * 64 + u.index();
                bits[a / 64] |= 1u64 << (a % 64);
                bits[b / 64] |= 1u64 << (b % 64);
                adjacency[u.index()].push(v);
                adjacency[v.index()].push(u);
                // Keep adjacency sorted so iteration order is deterministic.
                adjacency[u.index()].sort_unstable();
                adjacency[v.index()].sort_unstable();
                self.edge_count += 1;
                Ok(true)
            }
            GraphStorage::Csr { .. } => Err(GraphError::ImmutableBackend { op: "add_edge" }),
        }
    }

    /// Removes the undirected edge `(u, v)` if present, reporting whether an
    /// edge was removed.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if either endpoint is invalid
    /// and [`GraphError::ImmutableBackend`] on a CSR graph.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v || !self.has_edge(u, v) {
            return Ok(false);
        }
        match &mut self.storage {
            GraphStorage::Dense {
                words_per_row,
                adjacency,
                bits,
            } => {
                let a = u.index() * *words_per_row * 64 + v.index();
                let b = v.index() * *words_per_row * 64 + u.index();
                bits[a / 64] &= !(1u64 << (a % 64));
                bits[b / 64] &= !(1u64 << (b % 64));
                adjacency[u.index()].retain(|&w| w != v);
                adjacency[v.index()].retain(|&w| w != u);
                self.edge_count -= 1;
                Ok(true)
            }
            GraphStorage::Csr { .. } => Err(GraphError::ImmutableBackend { op: "remove_edge" }),
        }
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        match &self.storage {
            GraphStorage::Dense { adjacency, .. } => {
                adjacency.iter().map(Vec::len).max().unwrap_or(0)
            }
            GraphStorage::Csr { offsets, .. } => {
                offsets.windows(2).map(|w| w[1] - w[0]).max().unwrap_or(0)
            }
        }
    }

    /// Iterates over all vertices.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + Clone {
        NodeId::all(self.n)
    }

    /// Iterates over all edges in canonical order.
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.edge_count);
        for u in 0..self.n {
            for &v in self.neighbors(NodeId::new(u)) {
                if u < v.index() {
                    out.push(Edge::new(NodeId::new(u), v));
                }
            }
        }
        out
    }

    /// Returns this graph re-packed as CSR (a cheap clone if it already is).
    pub fn to_csr(&self) -> Graph {
        if let GraphStorage::Csr { .. } = &self.storage {
            return self.clone();
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        offsets.push(0usize);
        let mut targets = Vec::with_capacity(2 * self.edge_count);
        for u in 0..self.n {
            targets.extend_from_slice(self.neighbors(NodeId::new(u)));
            offsets.push(targets.len());
        }
        Graph {
            n: self.n,
            storage: GraphStorage::Csr { offsets, targets },
            edge_count: self.edge_count,
        }
    }

    /// Returns this graph re-packed densely (a cheap clone if it already
    /// is). The result is bit-for-bit what incremental dense construction
    /// would have produced — rows are sorted and the bit matrix exact.
    pub fn to_dense(&self) -> Graph {
        if let GraphStorage::Dense { .. } = &self.storage {
            return self.clone();
        }
        let words_per_row = self.n.div_ceil(64);
        let mut adjacency = Vec::with_capacity(self.n);
        let mut bits = vec![0u64; self.n.saturating_mul(words_per_row)];
        for u in 0..self.n {
            let row = self.neighbors(NodeId::new(u));
            adjacency.push(row.to_vec());
            for &v in row {
                bits[u * words_per_row + v.index() / 64] |= 1u64 << (v.index() % 64);
            }
        }
        Graph {
            n: self.n,
            storage: GraphStorage::Dense {
                words_per_row,
                adjacency,
                bits,
            },
            edge_count: self.edge_count,
        }
    }

    /// Returns this graph converted to the requested backend (a cheap clone
    /// when it is already there).
    pub fn with_backend(&self, backend: GraphBackend) -> Graph {
        match backend {
            GraphBackend::Dense => self.to_dense(),
            GraphBackend::Csr => self.to_csr(),
        }
    }

    /// Returns the union of this graph with `other` (same vertex count
    /// required). The result keeps `self`'s backend.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::LayerSizeMismatch`] if the vertex counts differ.
    pub fn union(&self, other: &Graph) -> Result<Graph> {
        if self.n != other.n {
            return Err(GraphError::LayerSizeMismatch {
                g: self.n,
                g_prime: other.n,
            });
        }
        match &self.storage {
            GraphStorage::Dense { .. } => {
                let mut g = self.clone();
                for e in other.edges() {
                    let (u, v) = e.endpoints();
                    g.add_edge(u, v)?;
                }
                Ok(g)
            }
            GraphStorage::Csr { .. } => {
                // Merge the two sorted rows of every vertex.
                let mut offsets = Vec::with_capacity(self.n + 1);
                offsets.push(0usize);
                let mut targets = Vec::with_capacity(2 * (self.edge_count + other.edge_count));
                for u in 0..self.n {
                    let (a, b) = (
                        self.neighbors(NodeId::new(u)),
                        other.neighbors(NodeId::new(u)),
                    );
                    let (mut i, mut j) = (0usize, 0usize);
                    while i < a.len() || j < b.len() {
                        let next = match (a.get(i), b.get(j)) {
                            (Some(&x), Some(&y)) if x == y => {
                                i += 1;
                                j += 1;
                                x
                            }
                            (Some(&x), Some(&y)) if x < y => {
                                i += 1;
                                x
                            }
                            (Some(_), Some(&y)) => {
                                j += 1;
                                y
                            }
                            (Some(&x), None) => {
                                i += 1;
                                x
                            }
                            (None, Some(&y)) => {
                                j += 1;
                                y
                            }
                            (None, None) => break,
                        };
                        targets.push(next);
                    }
                    offsets.push(targets.len());
                }
                let edge_count = targets.len() / 2;
                Ok(Graph {
                    n: self.n,
                    storage: GraphStorage::Csr { offsets, targets },
                    edge_count,
                })
            }
        }
    }

    /// Returns `true` if every edge of `self` is also an edge of `other`.
    pub fn is_subgraph_of(&self, other: &Graph) -> bool {
        if self.n != other.n {
            return false;
        }
        self.edges().iter().all(|e| {
            let (u, v) = e.endpoints();
            other.has_edge(u, v)
        })
    }

    /// Returns the first edge of `self` that is missing from `other`, if any.
    pub fn first_missing_in(&self, other: &Graph) -> Option<(NodeId, NodeId)> {
        self.edges()
            .into_iter()
            .map(Edge::endpoints)
            .find(|&(u, v)| !other.has_edge(u, v))
    }
}

/// Streaming row-by-row construction of a CSR [`Graph`] — the path the
/// large-scale topology generators use to never materialize an n×n matrix.
///
/// Rows must be pushed for every vertex in index order, each sorted
/// ascending; [`CsrBuilder::build`] validates shape, range, self-loops and
/// symmetry once at the end.
///
/// # Example
///
/// ```
/// use dradio_graphs::{CsrBuilder, NodeId};
/// // A path 0 – 1 – 2, one row per vertex.
/// let mut b = CsrBuilder::new(3);
/// b.row([NodeId::new(1)]);
/// b.row([NodeId::new(0), NodeId::new(2)]);
/// b.row([NodeId::new(1)]);
/// let g = b.build().unwrap();
/// assert_eq!(g.edge_count(), 2);
/// assert!(g.has_edge(NodeId::new(1), NodeId::new(2)));
/// ```
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    n: usize,
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
}

impl CsrBuilder {
    /// Starts a builder for a CSR graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        CsrBuilder::with_edge_capacity(n, 0)
    }

    /// Starts a builder pre-allocated for `edges` undirected edges.
    pub fn with_edge_capacity(n: usize, edges: usize) -> Self {
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        CsrBuilder {
            n,
            offsets,
            targets: Vec::with_capacity(2 * edges),
        }
    }

    /// Appends the next vertex's neighbor row (sorted ascending).
    pub fn row<I: IntoIterator<Item = NodeId>>(&mut self, neighbors: I) -> &mut Self {
        self.targets.extend(neighbors);
        self.offsets.push(self.targets.len());
        self
    }

    /// Finishes the graph, validating one row per vertex, sorted unique
    /// in-range neighbors, no self-loops, and symmetry.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameter`] for shape violations (row count,
    /// unsorted or asymmetric rows), [`GraphError::NodeOutOfRange`] /
    /// [`GraphError::SelfLoop`] for bad entries.
    pub fn build(self) -> Result<Graph> {
        let CsrBuilder {
            n,
            offsets,
            targets,
        } = self;
        if offsets.len() != n + 1 {
            return Err(GraphError::InvalidParameter {
                reason: format!(
                    "CSR builder for {n} vertices was given {} rows",
                    offsets.len() - 1
                ),
            });
        }
        for u in 0..n {
            let row = &targets[offsets[u]..offsets[u + 1]];
            let mut prev: Option<NodeId> = None;
            for &v in row {
                if v.index() >= n {
                    return Err(GraphError::NodeOutOfRange { node: v, n });
                }
                if v.index() == u {
                    return Err(GraphError::SelfLoop {
                        node: NodeId::new(u),
                    });
                }
                if prev.is_some_and(|p| p >= v) {
                    return Err(GraphError::InvalidParameter {
                        reason: format!("CSR row {u} is not sorted strictly ascending"),
                    });
                }
                prev = Some(v);
            }
        }
        // Symmetry: every stored arc must have its reverse.
        for u in 0..n {
            for &v in &targets[offsets[u]..offsets[u + 1]] {
                let back = &targets[offsets[v.index()]..offsets[v.index() + 1]];
                if back.binary_search(&NodeId::new(u)).is_err() {
                    return Err(GraphError::InvalidParameter {
                        reason: format!("CSR rows are asymmetric: ({u}, {v}) has no reverse"),
                    });
                }
            }
        }
        let edge_count = targets.len() / 2;
        Ok(Graph {
            n,
            storage: GraphStorage::Csr { offsets, targets },
            edge_count,
        })
    }
}

/// Incremental builder for [`Graph`].
///
/// The builder accepts raw `usize` indices, deduplicates edges, and validates
/// everything once at [`GraphBuilder::build`] time, which keeps topology
/// generator code short.
///
/// # Example
///
/// ```
/// use dradio_graphs::GraphBuilder;
/// let g = GraphBuilder::new(3).edge(0, 1).edge(1, 2).edge(0, 1).build().unwrap();
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: BTreeSet<(usize, usize)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: BTreeSet::new(),
        }
    }

    /// Adds an undirected edge by raw index; duplicates are ignored.
    pub fn edge(mut self, u: usize, v: usize) -> Self {
        let (a, b) = if u <= v { (u, v) } else { (v, u) };
        self.edges.insert((a, b));
        self
    }

    /// Adds every edge from an iterator of index pairs.
    pub fn edges<I: IntoIterator<Item = (usize, usize)>>(mut self, iter: I) -> Self {
        for (u, v) in iter {
            self = self.edge(u, v);
        }
        self
    }

    /// Builds the graph, validating all endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`] if
    /// any recorded edge is invalid.
    pub fn build(self) -> Result<Graph> {
        let mut g = Graph::empty(self.n);
        for (u, v) in self.edges {
            g.add_edge(NodeId::new(u), NodeId::new(v))?;
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_normalizes_order() {
        let e = Edge::new(NodeId::new(5), NodeId::new(2));
        assert_eq!(e.endpoints(), (NodeId::new(2), NodeId::new(5)));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(NodeId::new(1), NodeId::new(1));
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(NodeId::new(1), NodeId::new(2));
        assert_eq!(e.other(NodeId::new(1)), Some(NodeId::new(2)));
        assert_eq!(e.other(NodeId::new(2)), Some(NodeId::new(1)));
        assert_eq!(e.other(NodeId::new(3)), None);
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(5);
        assert_eq!(g.len(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert_eq!(g.backend(), GraphBackend::Dense);
    }

    #[test]
    fn zero_vertex_graph_is_empty() {
        let g = Graph::empty(0);
        assert!(g.is_empty());
        assert_eq!(g.edges().len(), 0);
    }

    #[test]
    fn add_edge_is_symmetric_and_idempotent() {
        let mut g = Graph::empty(4);
        assert!(g.add_edge(NodeId::new(0), NodeId::new(2)).unwrap());
        assert!(!g.add_edge(NodeId::new(2), NodeId::new(0)).unwrap());
        assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(g.has_edge(NodeId::new(2), NodeId::new(0)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn add_edge_rejects_out_of_range() {
        let mut g = Graph::empty(3);
        let err = g.add_edge(NodeId::new(0), NodeId::new(7)).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { .. }));
    }

    #[test]
    fn add_edge_rejects_self_loop() {
        let mut g = Graph::empty(3);
        let err = g.add_edge(NodeId::new(1), NodeId::new(1)).unwrap_err();
        assert_eq!(
            err,
            GraphError::SelfLoop {
                node: NodeId::new(1)
            }
        );
    }

    #[test]
    fn remove_edge_round_trip() {
        let mut g = Graph::empty(3);
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        assert!(g.remove_edge(NodeId::new(1), NodeId::new(0)).unwrap());
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert_eq!(g.edge_count(), 0);
        assert!(!g.remove_edge(NodeId::new(1), NodeId::new(0)).unwrap());
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut g = Graph::empty(5);
        g.add_edge(NodeId::new(2), NodeId::new(4)).unwrap();
        g.add_edge(NodeId::new(2), NodeId::new(0)).unwrap();
        g.add_edge(NodeId::new(2), NodeId::new(3)).unwrap();
        let nbrs: Vec<usize> = g
            .neighbors(NodeId::new(2))
            .iter()
            .map(|v| v.index())
            .collect();
        assert_eq!(nbrs, vec![0, 3, 4]);
    }

    #[test]
    fn complete_graph_degrees() {
        let g = Graph::complete(6);
        assert_eq!(g.edge_count(), 15);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 5);
        }
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn edges_enumeration_matches_count() {
        let g = Graph::complete(7);
        assert_eq!(g.edges().len(), g.edge_count());
    }

    #[test]
    fn union_combines_edges() {
        let a = GraphBuilder::new(4).edge(0, 1).build().unwrap();
        let b = GraphBuilder::new(4).edge(2, 3).build().unwrap();
        let u = a.union(&b).unwrap();
        assert!(u.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(u.has_edge(NodeId::new(2), NodeId::new(3)));
        assert_eq!(u.edge_count(), 2);
    }

    #[test]
    fn union_rejects_size_mismatch() {
        let a = Graph::empty(3);
        let b = Graph::empty(4);
        assert!(matches!(
            a.union(&b),
            Err(GraphError::LayerSizeMismatch { .. })
        ));
    }

    #[test]
    fn subgraph_detection() {
        let small = GraphBuilder::new(4).edge(0, 1).build().unwrap();
        let big = GraphBuilder::new(4).edge(0, 1).edge(1, 2).build().unwrap();
        assert!(small.is_subgraph_of(&big));
        assert!(!big.is_subgraph_of(&small));
        assert_eq!(
            big.first_missing_in(&small),
            Some((NodeId::new(1), NodeId::new(2)))
        );
        assert_eq!(small.first_missing_in(&big), None);
    }

    #[test]
    fn builder_deduplicates_and_validates() {
        let g = GraphBuilder::new(3)
            .edges([(0, 1), (1, 0), (1, 2)])
            .build()
            .unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(GraphBuilder::new(2).edge(0, 5).build().is_err());
    }

    #[test]
    fn neighbor_bits_mirror_the_adjacency_lists() {
        // 70 nodes forces two words per row.
        let mut g = Graph::empty(70);
        assert_eq!(g.row_words(), 2);
        g.add_edge(NodeId::new(3), NodeId::new(65)).unwrap();
        g.add_edge(NodeId::new(3), NodeId::new(0)).unwrap();
        let row = g.neighbor_bits(NodeId::new(3));
        assert_eq!(row.len(), 2);
        assert_eq!(row[0], 1u64); // bit 0
        assert_eq!(row[1], 1u64 << 1); // bit 65 = word 1, bit 1
                                       // Every row agrees with the adjacency list, for every node.
        for u in g.nodes() {
            let row = g.neighbor_bits(u);
            for v in g.nodes() {
                let from_bits = row[v.index() / 64] >> (v.index() % 64) & 1 == 1;
                assert_eq!(from_bits, g.neighbors(u).contains(&v), "({u}, {v})");
            }
        }
        // Out-of-range rows are empty.
        assert!(g.neighbor_bits(NodeId::new(99)).is_empty());
    }

    #[test]
    fn neighbor_bits_clear_on_removal() {
        let mut g = Graph::complete(5);
        g.remove_edge(NodeId::new(1), NodeId::new(2)).unwrap();
        let row = g.neighbor_bits(NodeId::new(1));
        assert_eq!(row[0] >> 2 & 1, 0);
        assert_eq!(g.neighbor_bits(NodeId::new(2))[0] >> 1 & 1, 0);
    }

    #[test]
    fn has_edge_is_false_for_out_of_range() {
        let g = Graph::complete(3);
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(10)));
        assert!(!g.has_edge(NodeId::new(10), NodeId::new(0)));
        assert!(!g.has_edge(NodeId::new(1), NodeId::new(1)));
    }

    // ---- CSR backend ----

    #[test]
    fn csr_round_trips_and_equals_its_dense_source() {
        let mut dense = Graph::empty(70);
        dense.add_edge(NodeId::new(3), NodeId::new(65)).unwrap();
        dense.add_edge(NodeId::new(3), NodeId::new(0)).unwrap();
        dense.add_edge(NodeId::new(64), NodeId::new(65)).unwrap();
        let csr = dense.to_csr();
        assert_eq!(csr.backend(), GraphBackend::Csr);
        assert_eq!(csr, dense, "cross-backend structural equality");
        assert_eq!(csr.edge_count(), dense.edge_count());
        assert_eq!(csr.row_words(), dense.row_words());
        assert_eq!(csr.max_degree(), dense.max_degree());
        assert_eq!(csr.edges(), dense.edges());
        for u in dense.nodes() {
            assert_eq!(csr.neighbors(u), dense.neighbors(u));
            assert_eq!(csr.degree(u), dense.degree(u));
            for v in dense.nodes() {
                assert_eq!(csr.has_edge(u, v), dense.has_edge(u, v), "({u}, {v})");
            }
        }
        // And back: dense reconstruction is bit-for-bit the original.
        let back = csr.to_dense();
        assert_eq!(back.backend(), GraphBackend::Dense);
        assert_eq!(back, dense);
        for u in dense.nodes() {
            assert_eq!(back.neighbor_bits(u), dense.neighbor_bits(u));
        }
        // with_backend is the same conversions under one name.
        assert_eq!(dense.with_backend(GraphBackend::Csr), csr);
        assert_eq!(csr.with_backend(GraphBackend::Dense), dense);
        assert_eq!(
            csr.with_backend(GraphBackend::Csr).backend(),
            GraphBackend::Csr
        );
    }

    #[test]
    fn neighbor_row_exposes_the_native_shape() {
        let mut dense = Graph::empty(5);
        dense.add_edge(NodeId::new(1), NodeId::new(3)).unwrap();
        match dense.neighbor_row(NodeId::new(1)) {
            NeighborRow::Dense(words) => assert_eq!(words, &[0b1000]),
            NeighborRow::Sparse(_) => panic!("dense graphs expose bit rows"),
        }
        let csr = dense.to_csr();
        match csr.neighbor_row(NodeId::new(1)) {
            NeighborRow::Sparse(row) => assert_eq!(row, &[NodeId::new(3)]),
            NeighborRow::Dense(_) => panic!("CSR graphs expose sorted rows"),
        }
        // Out-of-range rows are empty on both backends.
        match csr.neighbor_row(NodeId::new(42)) {
            NeighborRow::Sparse(row) => assert!(row.is_empty()),
            NeighborRow::Dense(_) => panic!("out-of-range rows are sparse-empty"),
        }
        // CSR graphs report empty legacy bit rows rather than lying.
        assert!(csr.neighbor_bits(NodeId::new(1)).is_empty());
    }

    #[test]
    fn csr_graphs_reject_mutation() {
        let mut csr = GraphBuilder::new(4).edge(0, 1).build().unwrap().to_csr();
        // Adding an edge that is *not* already present fails ...
        let err = csr.add_edge(NodeId::new(1), NodeId::new(2)).unwrap_err();
        assert!(matches!(
            err,
            GraphError::ImmutableBackend { op: "add_edge" }
        ));
        // ... but re-adding a present edge is still the no-op Ok(false), so
        // idempotent callers (dual construction) keep working unchanged.
        assert!(!csr.add_edge(NodeId::new(0), NodeId::new(1)).unwrap());
        let err = csr.remove_edge(NodeId::new(0), NodeId::new(1)).unwrap_err();
        assert!(matches!(
            err,
            GraphError::ImmutableBackend { op: "remove_edge" }
        ));
        // Removing an absent edge stays the no-op Ok(false).
        assert!(!csr.remove_edge(NodeId::new(1), NodeId::new(3)).unwrap());
    }

    #[test]
    fn csr_builder_streams_rows() {
        // A 2×2 grid: 0-1, 0-2, 1-3, 2-3.
        let mut b = CsrBuilder::with_edge_capacity(4, 4);
        b.row([NodeId::new(1), NodeId::new(2)]);
        b.row([NodeId::new(0), NodeId::new(3)]);
        b.row([NodeId::new(0), NodeId::new(3)]);
        b.row([NodeId::new(1), NodeId::new(2)]);
        let g = b.build().unwrap();
        assert_eq!(g.backend(), GraphBackend::Csr);
        assert_eq!(g.edge_count(), 4);
        let dense = GraphBuilder::new(4)
            .edges([(0, 1), (0, 2), (1, 3), (2, 3)])
            .build()
            .unwrap();
        assert_eq!(g, dense);
    }

    #[test]
    fn csr_builder_validates_shape_and_symmetry() {
        // Wrong row count.
        let mut b = CsrBuilder::new(3);
        b.row([NodeId::new(1)]);
        assert!(matches!(
            b.build(),
            Err(GraphError::InvalidParameter { .. })
        ));
        // Unsorted row.
        let mut b = CsrBuilder::new(3);
        b.row([NodeId::new(2), NodeId::new(1)]);
        b.row([NodeId::new(0)]);
        b.row([NodeId::new(0)]);
        assert!(matches!(
            b.build(),
            Err(GraphError::InvalidParameter { .. })
        ));
        // Self-loop.
        let mut b = CsrBuilder::new(2);
        b.row([NodeId::new(0)]);
        b.row([NodeId::new(0)]);
        assert!(matches!(b.build(), Err(GraphError::SelfLoop { .. })));
        // Out of range.
        let mut b = CsrBuilder::new(2);
        b.row([NodeId::new(5)]);
        b.row([]);
        assert!(matches!(b.build(), Err(GraphError::NodeOutOfRange { .. })));
        // Asymmetric.
        let mut b = CsrBuilder::new(2);
        b.row([NodeId::new(1)]);
        b.row([]);
        assert!(matches!(
            b.build(),
            Err(GraphError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn csr_from_edges_sorts_and_deduplicates() {
        let g = Graph::csr_from_edges(5, &[(4, 2), (0, 2), (2, 3), (2, 0)]).unwrap();
        assert_eq!(g.edge_count(), 3);
        let nbrs: Vec<usize> = g
            .neighbors(NodeId::new(2))
            .iter()
            .map(|v| v.index())
            .collect();
        assert_eq!(nbrs, vec![0, 3, 4]);
        assert!(Graph::csr_from_edges(3, &[(0, 3)]).is_err());
        assert!(Graph::csr_from_edges(3, &[(1, 1)]).is_err());
    }

    #[test]
    fn csr_union_merges_sorted_rows() {
        let a = GraphBuilder::new(4).edge(0, 1).edge(1, 2).build().unwrap();
        let b = GraphBuilder::new(4).edge(2, 3).edge(1, 2).build().unwrap();
        let dense_union = a.union(&b).unwrap();
        let csr_union = a.to_csr().union(&b.to_csr()).unwrap();
        assert_eq!(csr_union.backend(), GraphBackend::Csr);
        assert_eq!(csr_union, dense_union);
        // Mixed operands work too.
        assert_eq!(a.to_csr().union(&b).unwrap(), dense_union);
    }

    #[test]
    fn auto_backend_keeps_small_and_dense_graphs_dense() {
        // Everything at or below the floor stays dense, no matter how sparse.
        assert_eq!(auto_backend(8, 1), GraphBackend::Dense);
        assert_eq!(auto_backend(DENSE_AUTO_MAX_NODES, 10), GraphBackend::Dense);
        // Above the floor, sparse graphs go CSR ...
        assert_eq!(auto_backend(1_000_000, 2_000_000), GraphBackend::Csr);
        assert_eq!(auto_backend(100_000, 400_000), GraphBackend::Csr);
        // ... while near-complete ones stay dense.
        let n = 4096u64;
        assert_eq!(auto_backend(4096, n * (n - 1) / 2), GraphBackend::Dense);
    }

    #[test]
    fn byte_estimates_rank_the_backends_correctly() {
        // Million-node grid: the dense matrix alone is ~116 GiB; CSR fits
        // in well under a gigabyte.
        let n = 1_000_000;
        let m = 2_000_000u64;
        assert!(dense_bytes_estimate(n, m) > 110u64 * (1 << 30));
        assert!(csr_bytes_estimate(n, m) < 1u64 << 30);
        // Tiny clique: both estimates are tiny and of the same order.
        assert!(dense_bytes_estimate(64, 2016) < 64 * 1024);
    }
}
