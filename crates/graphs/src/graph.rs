//! Simple undirected graphs with O(1) edge queries.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::GraphError;
use crate::node::NodeId;
use crate::Result;

/// An undirected edge between two nodes, stored in canonical (sorted) order.
///
/// # Example
///
/// ```
/// use dradio_graphs::{Edge, NodeId};
/// let e = Edge::new(NodeId::new(3), NodeId::new(1));
/// assert_eq!(e.endpoints(), (NodeId::new(1), NodeId::new(3)));
/// assert!(e.touches(NodeId::new(3)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    lo: NodeId,
    hi: NodeId,
}

impl Edge {
    /// Creates an edge between `u` and `v`, normalizing endpoint order.
    ///
    /// # Panics
    ///
    /// Panics if `u == v`; the radio model has no self-loops.
    pub fn new(u: NodeId, v: NodeId) -> Self {
        assert_ne!(u, v, "self-loops are not allowed in radio network graphs");
        if u < v {
            Edge { lo: u, hi: v }
        } else {
            Edge { lo: v, hi: u }
        }
    }

    /// Returns the endpoints in canonical (ascending) order.
    pub fn endpoints(self) -> (NodeId, NodeId) {
        (self.lo, self.hi)
    }

    /// Returns `true` if `node` is one of the endpoints.
    pub fn touches(self, node: NodeId) -> bool {
        self.lo == node || self.hi == node
    }

    /// Returns the endpoint opposite to `node`, or `None` if `node` is not an
    /// endpoint of this edge.
    pub fn other(self, node: NodeId) -> Option<NodeId> {
        if node == self.lo {
            Some(self.hi)
        } else if node == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.lo, self.hi)
    }
}

/// A simple undirected graph over the vertex set `{0, ..., n-1}`.
///
/// The representation keeps both a sorted adjacency list per node (for fast,
/// deterministic iteration) and a packed bitset of edges (for O(1) edge
/// queries), which is the access pattern the round simulator needs: "who are
/// the transmitting neighbors of `u` this round?".
///
/// The bit matrix is stored row-aligned: every vertex owns
/// [`row_words`](Graph::row_words) consecutive `u64` words, so a whole
/// adjacency row is available as a word slice through
/// [`neighbor_bits`](Graph::neighbor_bits). The simulator intersects these
/// rows with its packed transmitter bitset to resolve reception 64 candidate
/// neighbors at a time instead of chasing `Vec<NodeId>` chains per listener.
///
/// # Example
///
/// ```
/// use dradio_graphs::{Graph, NodeId};
/// let mut g = Graph::empty(4);
/// g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
/// g.add_edge(NodeId::new(1), NodeId::new(2)).unwrap();
/// assert!(g.has_edge(NodeId::new(0), NodeId::new(1)));
/// assert_eq!(g.degree(NodeId::new(1)), 2);
/// assert_eq!(g.edge_count(), 2);
/// // Row 1 has bits 0 and 2 set.
/// assert_eq!(g.neighbor_bits(NodeId::new(1)), &[0b101]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    /// Words per adjacency row (`⌈n / 64⌉`).
    words_per_row: usize,
    adjacency: Vec<Vec<NodeId>>,
    /// Row-aligned bit matrix: bit `v` of row `u` (word `u·words_per_row +
    /// v/64`) is set iff the edge `(u, v)` is present.
    bits: Vec<u64>,
    edge_count: usize,
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        Graph {
            n,
            words_per_row,
            adjacency: vec![Vec::new(); n],
            bits: vec![0u64; n.saturating_mul(words_per_row)],
            edge_count: 0,
        }
    }

    /// Creates a complete graph (clique) on `n` vertices.
    pub fn complete(n: usize) -> Self {
        let mut g = Graph::empty(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(NodeId::new(i), NodeId::new(j))
                    // lint: allow(D4) -- i < j < n by the loop bounds
                    .expect("indices are in range and distinct");
            }
        }
        g
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    fn bit_index(&self, u: NodeId, v: NodeId) -> usize {
        u.index() * self.words_per_row * 64 + v.index()
    }

    /// Number of `u64` words in each adjacency-row bitset (`⌈n / 64⌉`).
    pub fn row_words(&self) -> usize {
        self.words_per_row
    }

    /// The packed adjacency row of `u`: bit `v` (word `v / 64`, bit `v % 64`)
    /// is set iff the edge `(u, v)` is present. Out-of-range nodes have an
    /// empty row.
    pub fn neighbor_bits(&self, u: NodeId) -> &[u64] {
        if u.index() >= self.n {
            return &[];
        }
        let start = u.index() * self.words_per_row;
        &self.bits[start..start + self.words_per_row]
    }

    fn check_node(&self, node: NodeId) -> Result<()> {
        if node.index() >= self.n {
            Err(GraphError::NodeOutOfRange { node, n: self.n })
        } else {
            Ok(())
        }
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// Adding an edge twice is a no-op and reports `Ok(false)`; a newly added
    /// edge reports `Ok(true)`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if either endpoint is not a
    /// vertex and [`GraphError::SelfLoop`] if `u == v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if self.has_edge(u, v) {
            return Ok(false);
        }
        let (a, b) = (self.bit_index(u, v), self.bit_index(v, u));
        self.bits[a / 64] |= 1u64 << (a % 64);
        self.bits[b / 64] |= 1u64 << (b % 64);
        self.adjacency[u.index()].push(v);
        self.adjacency[v.index()].push(u);
        // Keep adjacency sorted so iteration order is deterministic.
        self.adjacency[u.index()].sort_unstable();
        self.adjacency[v.index()].sort_unstable();
        self.edge_count += 1;
        Ok(true)
    }

    /// Removes the undirected edge `(u, v)` if present, reporting whether an
    /// edge was removed.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if either endpoint is invalid.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<bool> {
        self.check_node(u)?;
        self.check_node(v)?;
        if u == v || !self.has_edge(u, v) {
            return Ok(false);
        }
        let (a, b) = (self.bit_index(u, v), self.bit_index(v, u));
        self.bits[a / 64] &= !(1u64 << (a % 64));
        self.bits[b / 64] &= !(1u64 << (b % 64));
        self.adjacency[u.index()].retain(|&w| w != v);
        self.adjacency[v.index()].retain(|&w| w != u);
        self.edge_count -= 1;
        Ok(true)
    }

    /// Returns `true` if the undirected edge `(u, v)` is present.
    ///
    /// Out-of-range endpoints simply report `false`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u.index() >= self.n || v.index() >= self.n || u == v {
            return false;
        }
        let idx = self.bit_index(u, v);
        self.bits[idx / 64] >> (idx % 64) & 1 == 1
    }

    /// Returns the neighbors of `u` in ascending order.
    ///
    /// Out-of-range nodes have no neighbors.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        if u.index() >= self.n {
            return &[];
        }
        &self.adjacency[u.index()]
    }

    /// Degree of `u` (0 for out-of-range nodes).
    pub fn degree(&self, u: NodeId) -> usize {
        self.neighbors(u).len()
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n)
            .map(|i| self.adjacency[i].len())
            .max()
            .unwrap_or(0)
    }

    /// Iterates over all vertices.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + Clone {
        NodeId::all(self.n)
    }

    /// Iterates over all edges in canonical order.
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.edge_count);
        for u in 0..self.n {
            for &v in &self.adjacency[u] {
                if u < v.index() {
                    out.push(Edge::new(NodeId::new(u), v));
                }
            }
        }
        out
    }

    /// Returns the union of this graph with `other` (same vertex count
    /// required).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::LayerSizeMismatch`] if the vertex counts differ.
    pub fn union(&self, other: &Graph) -> Result<Graph> {
        if self.n != other.n {
            return Err(GraphError::LayerSizeMismatch {
                g: self.n,
                g_prime: other.n,
            });
        }
        let mut g = self.clone();
        for e in other.edges() {
            let (u, v) = e.endpoints();
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Returns `true` if every edge of `self` is also an edge of `other`.
    pub fn is_subgraph_of(&self, other: &Graph) -> bool {
        if self.n != other.n {
            return false;
        }
        self.edges().iter().all(|e| {
            let (u, v) = e.endpoints();
            other.has_edge(u, v)
        })
    }

    /// Returns the first edge of `self` that is missing from `other`, if any.
    pub fn first_missing_in(&self, other: &Graph) -> Option<(NodeId, NodeId)> {
        self.edges()
            .into_iter()
            .map(Edge::endpoints)
            .find(|&(u, v)| !other.has_edge(u, v))
    }
}

/// Incremental builder for [`Graph`].
///
/// The builder accepts raw `usize` indices, deduplicates edges, and validates
/// everything once at [`GraphBuilder::build`] time, which keeps topology
/// generator code short.
///
/// # Example
///
/// ```
/// use dradio_graphs::GraphBuilder;
/// let g = GraphBuilder::new(3).edge(0, 1).edge(1, 2).edge(0, 1).build().unwrap();
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: BTreeSet<(usize, usize)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: BTreeSet::new(),
        }
    }

    /// Adds an undirected edge by raw index; duplicates are ignored.
    pub fn edge(mut self, u: usize, v: usize) -> Self {
        let (a, b) = if u <= v { (u, v) } else { (v, u) };
        self.edges.insert((a, b));
        self
    }

    /// Adds every edge from an iterator of index pairs.
    pub fn edges<I: IntoIterator<Item = (usize, usize)>>(mut self, iter: I) -> Self {
        for (u, v) in iter {
            self = self.edge(u, v);
        }
        self
    }

    /// Builds the graph, validating all endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`] if
    /// any recorded edge is invalid.
    pub fn build(self) -> Result<Graph> {
        let mut g = Graph::empty(self.n);
        for (u, v) in self.edges {
            g.add_edge(NodeId::new(u), NodeId::new(v))?;
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_normalizes_order() {
        let e = Edge::new(NodeId::new(5), NodeId::new(2));
        assert_eq!(e.endpoints(), (NodeId::new(2), NodeId::new(5)));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(NodeId::new(1), NodeId::new(1));
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(NodeId::new(1), NodeId::new(2));
        assert_eq!(e.other(NodeId::new(1)), Some(NodeId::new(2)));
        assert_eq!(e.other(NodeId::new(2)), Some(NodeId::new(1)));
        assert_eq!(e.other(NodeId::new(3)), None);
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(5);
        assert_eq!(g.len(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn zero_vertex_graph_is_empty() {
        let g = Graph::empty(0);
        assert!(g.is_empty());
        assert_eq!(g.edges().len(), 0);
    }

    #[test]
    fn add_edge_is_symmetric_and_idempotent() {
        let mut g = Graph::empty(4);
        assert!(g.add_edge(NodeId::new(0), NodeId::new(2)).unwrap());
        assert!(!g.add_edge(NodeId::new(2), NodeId::new(0)).unwrap());
        assert!(g.has_edge(NodeId::new(0), NodeId::new(2)));
        assert!(g.has_edge(NodeId::new(2), NodeId::new(0)));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn add_edge_rejects_out_of_range() {
        let mut g = Graph::empty(3);
        let err = g.add_edge(NodeId::new(0), NodeId::new(7)).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { .. }));
    }

    #[test]
    fn add_edge_rejects_self_loop() {
        let mut g = Graph::empty(3);
        let err = g.add_edge(NodeId::new(1), NodeId::new(1)).unwrap_err();
        assert_eq!(
            err,
            GraphError::SelfLoop {
                node: NodeId::new(1)
            }
        );
    }

    #[test]
    fn remove_edge_round_trip() {
        let mut g = Graph::empty(3);
        g.add_edge(NodeId::new(0), NodeId::new(1)).unwrap();
        assert!(g.remove_edge(NodeId::new(1), NodeId::new(0)).unwrap());
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(1)));
        assert_eq!(g.edge_count(), 0);
        assert!(!g.remove_edge(NodeId::new(1), NodeId::new(0)).unwrap());
    }

    #[test]
    fn neighbors_are_sorted() {
        let mut g = Graph::empty(5);
        g.add_edge(NodeId::new(2), NodeId::new(4)).unwrap();
        g.add_edge(NodeId::new(2), NodeId::new(0)).unwrap();
        g.add_edge(NodeId::new(2), NodeId::new(3)).unwrap();
        let nbrs: Vec<usize> = g
            .neighbors(NodeId::new(2))
            .iter()
            .map(|v| v.index())
            .collect();
        assert_eq!(nbrs, vec![0, 3, 4]);
    }

    #[test]
    fn complete_graph_degrees() {
        let g = Graph::complete(6);
        assert_eq!(g.edge_count(), 15);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 5);
        }
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn edges_enumeration_matches_count() {
        let g = Graph::complete(7);
        assert_eq!(g.edges().len(), g.edge_count());
    }

    #[test]
    fn union_combines_edges() {
        let a = GraphBuilder::new(4).edge(0, 1).build().unwrap();
        let b = GraphBuilder::new(4).edge(2, 3).build().unwrap();
        let u = a.union(&b).unwrap();
        assert!(u.has_edge(NodeId::new(0), NodeId::new(1)));
        assert!(u.has_edge(NodeId::new(2), NodeId::new(3)));
        assert_eq!(u.edge_count(), 2);
    }

    #[test]
    fn union_rejects_size_mismatch() {
        let a = Graph::empty(3);
        let b = Graph::empty(4);
        assert!(matches!(
            a.union(&b),
            Err(GraphError::LayerSizeMismatch { .. })
        ));
    }

    #[test]
    fn subgraph_detection() {
        let small = GraphBuilder::new(4).edge(0, 1).build().unwrap();
        let big = GraphBuilder::new(4).edge(0, 1).edge(1, 2).build().unwrap();
        assert!(small.is_subgraph_of(&big));
        assert!(!big.is_subgraph_of(&small));
        assert_eq!(
            big.first_missing_in(&small),
            Some((NodeId::new(1), NodeId::new(2)))
        );
        assert_eq!(small.first_missing_in(&big), None);
    }

    #[test]
    fn builder_deduplicates_and_validates() {
        let g = GraphBuilder::new(3)
            .edges([(0, 1), (1, 0), (1, 2)])
            .build()
            .unwrap();
        assert_eq!(g.edge_count(), 2);
        assert!(GraphBuilder::new(2).edge(0, 5).build().is_err());
    }

    #[test]
    fn neighbor_bits_mirror_the_adjacency_lists() {
        // 70 nodes forces two words per row.
        let mut g = Graph::empty(70);
        assert_eq!(g.row_words(), 2);
        g.add_edge(NodeId::new(3), NodeId::new(65)).unwrap();
        g.add_edge(NodeId::new(3), NodeId::new(0)).unwrap();
        let row = g.neighbor_bits(NodeId::new(3));
        assert_eq!(row.len(), 2);
        assert_eq!(row[0], 1u64); // bit 0
        assert_eq!(row[1], 1u64 << 1); // bit 65 = word 1, bit 1
                                       // Every row agrees with the adjacency list, for every node.
        for u in g.nodes() {
            let row = g.neighbor_bits(u);
            for v in g.nodes() {
                let from_bits = row[v.index() / 64] >> (v.index() % 64) & 1 == 1;
                assert_eq!(from_bits, g.neighbors(u).contains(&v), "({u}, {v})");
            }
        }
        // Out-of-range rows are empty.
        assert!(g.neighbor_bits(NodeId::new(99)).is_empty());
    }

    #[test]
    fn neighbor_bits_clear_on_removal() {
        let mut g = Graph::complete(5);
        g.remove_edge(NodeId::new(1), NodeId::new(2)).unwrap();
        let row = g.neighbor_bits(NodeId::new(1));
        assert_eq!(row[0] >> 2 & 1, 0);
        assert_eq!(g.neighbor_bits(NodeId::new(2))[0] >> 1 & 1, 0);
    }

    #[test]
    fn has_edge_is_false_for_out_of_range() {
        let g = Graph::complete(3);
        assert!(!g.has_edge(NodeId::new(0), NodeId::new(10)));
        assert!(!g.has_edge(NodeId::new(10), NodeId::new(0)));
        assert!(!g.has_edge(NodeId::new(1), NodeId::new(1)));
    }
}
