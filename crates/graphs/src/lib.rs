//! Graph and dual-graph representations for radio network simulation.
//!
//! This crate provides the *structural* substrate of the dual graph radio
//! network model of Ghaffari, Lynch and Newport (PODC 2013):
//!
//! * [`Graph`] — a simple undirected graph over [`NodeId`]s with O(1) edge
//!   queries and cache-friendly adjacency iteration.
//! * [`DualGraph`] — a pair `(G, G')` of graphs over the same vertex set with
//!   `E ⊆ E'`. Edges of `G` are *reliable*; edges of `G' \ E` are *dynamic*
//!   and controlled by an adversarial link process at simulation time.
//! * [`topology`] — generators for every network used in the paper (dual
//!   clique, bracelet, geographic/unit-disk graphs with a grey zone) plus
//!   standard families (lines, rings, grids, trees, stars, Erdős–Rényi).
//! * [`geometry`] and [`regions`] — Euclidean embeddings and the constant
//!   density region decomposition used by the geographic local broadcast
//!   algorithm (Section 4.3 of the paper).
//! * [`properties`] — BFS, diameters, connectivity, degree statistics.
//!
//! # Example
//!
//! ```
//! use dradio_graphs::topology;
//! use dradio_graphs::properties;
//!
//! // The dual clique network from Section 3 of the paper: two cliques of
//! // size n/2 joined by a single reliable bridge, with every cross edge
//! // present (but unreliable) in G'.
//! let dual = topology::dual_clique(64).expect("even n >= 4");
//! assert_eq!(dual.len(), 64);
//! assert!(dual.is_valid());
//! // G has constant diameter (here 3: across either clique and the bridge).
//! assert!(properties::diameter(dual.g()).unwrap() <= 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dual;
pub mod error;
pub mod geometry;
pub mod graph;
pub mod node;
pub mod properties;
pub mod regions;
pub mod topology;

pub use dual::DualGraph;
pub use error::GraphError;
pub use geometry::{Embedding, Point};
pub use graph::{
    auto_backend, csr_bytes_estimate, dense_bytes_estimate, CsrBuilder, Edge, Graph, GraphBackend,
    GraphBuilder, NeighborRow, DENSE_AUTO_MAX_NODES,
};
pub use node::NodeId;
pub use regions::RegionDecomposition;

/// Convenient result alias for fallible graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;
