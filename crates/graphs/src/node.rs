//! Node identifiers.

use std::fmt;

/// Identifier of a node (vertex) in a network graph.
///
/// Nodes are always numbered densely `0..n` within a graph, which lets the
/// simulator index per-node state with plain vectors. The newtype prevents
/// accidentally mixing node indices with round numbers or other counters.
///
/// # Example
///
/// ```
/// use dradio_graphs::NodeId;
/// let u = NodeId::new(3);
/// assert_eq!(u.index(), 3);
/// assert_eq!(format!("{u}"), "v3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node identifier from a dense index.
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// Returns the dense index backing this identifier.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Returns an iterator over the first `n` node identifiers `0..n`.
    ///
    /// # Example
    ///
    /// ```
    /// use dradio_graphs::NodeId;
    /// let ids: Vec<_> = NodeId::all(3).collect();
    /// assert_eq!(ids, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = NodeId> + Clone {
        (0..n).map(NodeId)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index_round_trip() {
        for i in [0usize, 1, 7, 1024, usize::MAX] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn conversion_round_trip() {
        let id: NodeId = 42usize.into();
        let back: usize = id.into();
        assert_eq!(back, 42);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(NodeId::new(5) > NodeId::new(0));
    }

    #[test]
    fn all_yields_dense_prefix() {
        assert_eq!(NodeId::all(0).count(), 0);
        let v: Vec<_> = NodeId::all(4).map(|u| u.index()).collect();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(NodeId::new(0).to_string(), "v0");
        assert_eq!(NodeId::new(17).to_string(), "v17");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NodeId::default(), NodeId::new(0));
    }
}
