//! Structural graph properties: BFS, distances, diameter, connectivity,
//! degree statistics, and greedy independent sets.
//!
//! These are the quantities the experiments sweep over (`n`, `D`, `Δ`) and
//! the preconditions the problems assume (both broadcast problems require the
//! reliable layer `G` to be connected).

use std::collections::VecDeque;

use crate::error::GraphError;
use crate::graph::Graph;
use crate::node::NodeId;
use crate::Result;

/// Breadth-first distances from `source`; unreachable nodes map to `None`.
///
/// # Example
///
/// ```
/// use dradio_graphs::{properties, GraphBuilder, NodeId};
/// let g = GraphBuilder::new(3).edge(0, 1).build()?;
/// let dist = properties::bfs_distances(&g, NodeId::new(0));
/// assert_eq!(dist[1], Some(1));
/// assert_eq!(dist[2], None);
/// # Ok::<(), dradio_graphs::GraphError>(())
/// ```
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<Option<usize>> {
    let mut dist = vec![None; g.len()];
    if source.index() >= g.len() {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source.index()] = Some(0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        // lint: allow(D4) -- nodes are queued only after their distance is set
        let du = dist[u.index()].expect("queued nodes have distances");
        for &v in g.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Groups nodes into BFS layers from `source`: element `d` of the result is
/// the set of nodes at distance exactly `d`. Unreachable nodes are omitted.
pub fn bfs_layers(g: &Graph, source: NodeId) -> Vec<Vec<NodeId>> {
    let dist = bfs_distances(g, source);
    let max = dist.iter().flatten().copied().max();
    let Some(max) = max else { return Vec::new() };
    let mut layers = vec![Vec::new(); max + 1];
    for (i, d) in dist.iter().enumerate() {
        if let Some(d) = d {
            layers[*d].push(NodeId::new(i));
        }
    }
    layers
}

/// Eccentricity of `source`: the largest BFS distance to any reachable node.
///
/// # Errors
///
/// Returns [`GraphError::Disconnected`] if some node is unreachable from
/// `source` (eccentricity is then undefined for the whole graph).
pub fn eccentricity(g: &Graph, source: NodeId) -> Result<usize> {
    let dist = bfs_distances(g, source);
    let mut max = 0;
    for d in &dist {
        match d {
            Some(d) => max = max.max(*d),
            None => return Err(GraphError::Disconnected),
        }
    }
    Ok(max)
}

/// Returns `true` if `g` is connected (the empty graph and the one-node graph
/// are connected).
pub fn is_connected(g: &Graph) -> bool {
    if g.len() <= 1 {
        return true;
    }
    bfs_distances(g, NodeId::new(0)).iter().all(Option::is_some)
}

/// Exact diameter of `g` (max over all pairs of shortest-path distances),
/// computed with one BFS per node.
///
/// # Errors
///
/// Returns [`GraphError::Disconnected`] for disconnected graphs and for the
/// empty graph.
pub fn diameter(g: &Graph) -> Result<usize> {
    if g.is_empty() {
        return Err(GraphError::Disconnected);
    }
    let mut best = 0;
    for u in g.nodes() {
        best = best.max(eccentricity(g, u)?);
    }
    Ok(best)
}

/// Connected components, each listed in ascending node order; components are
/// ordered by their smallest node.
pub fn connected_components(g: &Graph) -> Vec<Vec<NodeId>> {
    let mut seen = vec![false; g.len()];
    let mut components = Vec::new();
    for start in g.nodes() {
        if seen[start.index()] {
            continue;
        }
        let mut component = Vec::new();
        let mut queue = VecDeque::new();
        seen[start.index()] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            component.push(u);
            for &v in g.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
        component.sort_unstable();
        components.push(component);
    }
    components
}

/// Summary statistics of the degree distribution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
}

/// Computes [`DegreeStats`] for `g`; the empty graph reports all zeros.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    if g.is_empty() {
        return DegreeStats::default();
    }
    let degrees: Vec<usize> = g.nodes().map(|u| g.degree(u)).collect();
    // lint: allow(D4) -- degrees is non-empty (checked at function entry)
    let min = *degrees.iter().min().expect("non-empty");
    // lint: allow(D4) -- degrees is non-empty (checked at function entry)
    let max = *degrees.iter().max().expect("non-empty");
    let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
    DegreeStats { min, max, mean }
}

/// Greedy maximal independent set (by ascending node id).
///
/// The bracelet lower-bound construction relies on neighborhoods with *large*
/// independent sets, while geographic graphs have constant-size independent
/// sets per neighborhood; this helper lets experiments and tests measure that
/// distinction directly.
pub fn greedy_independent_set(g: &Graph) -> Vec<NodeId> {
    let mut chosen = Vec::new();
    let mut blocked = vec![false; g.len()];
    for u in g.nodes() {
        if blocked[u.index()] {
            continue;
        }
        chosen.push(u);
        blocked[u.index()] = true;
        for &v in g.neighbors(u) {
            blocked[v.index()] = true;
        }
    }
    chosen
}

/// Size of the largest independent subset of `set` restricted to the
/// subgraph induced on `set`, computed greedily (a lower bound on the true
/// independence number).
pub fn greedy_independent_subset(g: &Graph, set: &[NodeId]) -> usize {
    let mut chosen: Vec<NodeId> = Vec::new();
    for &u in set {
        if chosen.iter().all(|&c| !g.has_edge(u, c)) {
            chosen.push(u);
        }
    }
    chosen.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn path(n: usize) -> Graph {
        GraphBuilder::new(n)
            .edges((1..n).map(|i| (i - 1, i)))
            .build()
            .unwrap()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, NodeId::new(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn bfs_distances_handles_out_of_range_source() {
        let g = path(3);
        let d = bfs_distances(&g, NodeId::new(99));
        assert!(d.iter().all(Option::is_none));
    }

    #[test]
    fn bfs_layers_partition_reachable_nodes() {
        let g = path(4);
        let layers = bfs_layers(&g, NodeId::new(1));
        assert_eq!(layers.len(), 3);
        assert_eq!(layers[0], vec![NodeId::new(1)]);
        assert_eq!(layers[1], vec![NodeId::new(0), NodeId::new(2)]);
        assert_eq!(layers[2], vec![NodeId::new(3)]);
    }

    #[test]
    fn eccentricity_and_diameter_of_path() {
        let g = path(6);
        assert_eq!(eccentricity(&g, NodeId::new(0)).unwrap(), 5);
        assert_eq!(eccentricity(&g, NodeId::new(3)).unwrap(), 3);
        assert_eq!(diameter(&g).unwrap(), 5);
    }

    #[test]
    fn diameter_of_complete_graph_is_one() {
        let g = Graph::complete(7);
        assert_eq!(diameter(&g).unwrap(), 1);
    }

    #[test]
    fn diameter_rejects_disconnected_and_empty() {
        let g = GraphBuilder::new(4).edge(0, 1).build().unwrap();
        assert_eq!(diameter(&g), Err(GraphError::Disconnected));
        assert_eq!(diameter(&Graph::empty(0)), Err(GraphError::Disconnected));
    }

    #[test]
    fn connectivity_detection() {
        assert!(is_connected(&path(4)));
        assert!(is_connected(&Graph::empty(1)));
        assert!(is_connected(&Graph::empty(0)));
        let g = GraphBuilder::new(4).edge(0, 1).edge(2, 3).build().unwrap();
        assert!(!is_connected(&g));
    }

    #[test]
    fn components_partition_vertices() {
        let g = GraphBuilder::new(5).edge(0, 1).edge(3, 4).build().unwrap();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![NodeId::new(0), NodeId::new(1)]);
        assert_eq!(comps[1], vec![NodeId::new(2)]);
        assert_eq!(comps[2], vec![NodeId::new(3), NodeId::new(4)]);
        let total: usize = comps.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn degree_stats_on_star() {
        let g = GraphBuilder::new(5)
            .edges((1..5).map(|i| (0, i)))
            .build()
            .unwrap();
        let stats = degree_stats(&g);
        assert_eq!(stats.min, 1);
        assert_eq!(stats.max, 4);
        assert!((stats.mean - 8.0 / 5.0).abs() < 1e-12);
        assert_eq!(degree_stats(&Graph::empty(0)), DegreeStats::default());
    }

    #[test]
    fn independent_set_is_independent() {
        let g = Graph::complete(6);
        assert_eq!(greedy_independent_set(&g).len(), 1);
        let p = path(6);
        let set = greedy_independent_set(&p);
        for &u in &set {
            for &v in &set {
                if u != v {
                    assert!(!p.has_edge(u, v));
                }
            }
        }
        assert!(set.len() >= 3);
    }

    #[test]
    fn independent_subset_counts_within_set() {
        let g = Graph::complete(4);
        let all: Vec<NodeId> = g.nodes().collect();
        assert_eq!(greedy_independent_subset(&g, &all), 1);
        let p = path(4);
        let all: Vec<NodeId> = p.nodes().collect();
        assert_eq!(greedy_independent_subset(&p, &all), 2);
        assert_eq!(greedy_independent_subset(&p, &[]), 0);
    }
}
