//! Region decomposition of geographic dual graphs.
//!
//! Section 4.3 of the paper uses the following property of geographic graphs
//! (first established in the "Structuring Unreliable Radio Networks" paper it
//! cites): the nodes can be partitioned into regions such that
//!
//! 1. all nodes in the same region are adjacent in `G`, and
//! 2. each region has at most a constant number `γ_r` of neighboring regions
//!    (regions containing a `G'`-neighbor of one of its nodes), where the
//!    constant depends only on the geographic parameter `r`.
//!
//! The decomposition implemented here is the standard grid construction: tile
//! the plane with axis-aligned square cells of side `1/√2`. Any two points in
//! the same cell are at distance at most 1, so by the geographic constraint
//! they are adjacent in `G` (property 1). Any `G'` edge spans distance at most
//! `r`, so neighboring regions of a cell lie within a window of
//! `O(r²)` cells (property 2).

use std::collections::BTreeMap;

use crate::dual::DualGraph;
use crate::error::GraphError;
use crate::node::NodeId;
use crate::Result;

/// Side length of the grid cells: `1/√2`, so that the diameter of a cell is 1
/// and all nodes inside one cell are `G`-adjacent under the geographic
/// constraint.
pub const CELL_SIDE: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// Identifier of a grid cell (region).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId {
    /// Cell column index.
    pub col: i64,
    /// Cell row index.
    pub row: i64,
}

/// A grid-based region decomposition of an embedded dual graph.
///
/// # Example
///
/// ```
/// use dradio_graphs::topology::{self, GeometricConfig};
/// use dradio_graphs::RegionDecomposition;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(7);
/// let dual = topology::random_geometric(&GeometricConfig::new(50, 4.0, 1.5), &mut rng)?;
/// let regions = RegionDecomposition::build(&dual, 1.5)?;
/// assert_eq!(regions.node_count(), 50);
/// // Every node belongs to exactly one region.
/// assert!(regions.region_count() >= 1);
/// # Ok::<(), dradio_graphs::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RegionDecomposition {
    /// Region of each node, indexed by node id.
    node_region: Vec<RegionId>,
    /// Members of each region, sorted by node id.
    members: BTreeMap<RegionId, Vec<NodeId>>,
    /// Neighboring regions of each region (regions containing a `G'` neighbor
    /// of one of its members), excluding the region itself.
    neighbors: BTreeMap<RegionId, Vec<RegionId>>,
    /// Geographic parameter `r` the decomposition was built for.
    r: f64,
}

impl RegionDecomposition {
    /// Builds the decomposition for an embedded dual graph with geographic
    /// parameter `r`.
    ///
    /// # Errors
    ///
    /// * [`GraphError::MissingEmbedding`] if the dual graph has no embedding.
    /// * [`GraphError::InvalidParameter`] if `r < 1`.
    pub fn build(dual: &DualGraph, r: f64) -> Result<Self> {
        if r < 1.0 {
            return Err(GraphError::InvalidParameter {
                reason: format!("geographic parameter r must be >= 1, got {r}"),
            });
        }
        let emb = dual.embedding().ok_or(GraphError::MissingEmbedding)?;
        let mut node_region = Vec::with_capacity(dual.len());
        let mut members: BTreeMap<RegionId, Vec<NodeId>> = BTreeMap::new();
        for (u, p) in emb.iter() {
            let region = RegionId {
                col: (p.x / CELL_SIDE).floor() as i64,
                row: (p.y / CELL_SIDE).floor() as i64,
            };
            node_region.push(region);
            members.entry(region).or_default().push(u);
        }
        // Region adjacency: region S neighbors region T if some node of S has
        // a G' neighbor in T (and S != T).
        let mut neighbors: BTreeMap<RegionId, Vec<RegionId>> = BTreeMap::new();
        for (&region, nodes) in &members {
            let mut adjacent: Vec<RegionId> = Vec::new();
            for &u in nodes {
                for &v in dual.g_prime_neighbors(u) {
                    let other = node_region[v.index()];
                    if other != region && !adjacent.contains(&other) {
                        adjacent.push(other);
                    }
                }
            }
            adjacent.sort_unstable();
            neighbors.insert(region, adjacent);
        }
        Ok(RegionDecomposition {
            node_region,
            members,
            neighbors,
            r,
        })
    }

    /// The geographic parameter the decomposition was built for.
    pub fn r(&self) -> f64 {
        self.r
    }

    /// Number of nodes covered by the decomposition.
    pub fn node_count(&self) -> usize {
        self.node_region.len()
    }

    /// Number of non-empty regions.
    pub fn region_count(&self) -> usize {
        self.members.len()
    }

    /// Region containing node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn region_of(&self, u: NodeId) -> RegionId {
        self.node_region[u.index()]
    }

    /// Members of `region` in ascending node order (empty if the region has
    /// no nodes).
    pub fn members(&self, region: RegionId) -> &[NodeId] {
        self.members.get(&region).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Neighboring regions of `region` (regions containing a `G'` neighbor of
    /// one of its members).
    pub fn neighboring_regions(&self, region: RegionId) -> &[RegionId] {
        self.neighbors
            .get(&region)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterates over all non-empty regions.
    pub fn regions(&self) -> impl Iterator<Item = RegionId> + '_ {
        self.members.keys().copied()
    }

    /// Largest number of members in any region.
    pub fn max_region_size(&self) -> usize {
        self.members.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Largest number of neighboring regions over all regions — the empirical
    /// `γ_r` of this particular network.
    pub fn max_region_neighbors(&self) -> usize {
        self.neighbors.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Theoretical upper bound on the number of neighboring regions for a
    /// decomposition with parameter `r`: all cells within `⌈r/CELL_SIDE⌉ + 1`
    /// cells in each axis direction.
    pub fn gamma_bound(r: f64) -> usize {
        let reach = (r / CELL_SIDE).ceil() as usize + 1;
        let window = 2 * reach + 1;
        window * window - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{self, GeometricConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample(n: usize, side: f64, r: f64, seed: u64) -> DualGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        topology::random_geometric(&GeometricConfig::new(n, side, r), &mut rng).unwrap()
    }

    #[test]
    fn build_requires_embedding() {
        let dual = DualGraph::static_model(crate::graph::Graph::complete(4));
        assert_eq!(
            RegionDecomposition::build(&dual, 1.5).unwrap_err(),
            GraphError::MissingEmbedding
        );
    }

    #[test]
    fn build_rejects_small_r() {
        let dual = sample(20, 3.0, 1.5, 1);
        assert!(matches!(
            RegionDecomposition::build(&dual, 0.5),
            Err(GraphError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn every_node_has_exactly_one_region() {
        let dual = sample(80, 5.0, 1.5, 2);
        let rd = RegionDecomposition::build(&dual, 1.5).unwrap();
        assert_eq!(rd.node_count(), 80);
        let total: usize = rd.regions().map(|r| rd.members(r).len()).sum();
        assert_eq!(total, 80);
        for u in NodeId::all(80) {
            let region = rd.region_of(u);
            assert!(rd.members(region).contains(&u));
        }
    }

    #[test]
    fn same_region_nodes_are_g_adjacent() {
        // Property 1 of the decomposition: cells of side 1/sqrt(2) have
        // diameter 1, so the geographic constraint forces G adjacency.
        let dual = sample(120, 4.0, 1.5, 3);
        let rd = RegionDecomposition::build(&dual, 1.5).unwrap();
        for region in rd.regions() {
            let members = rd.members(region);
            for (i, &u) in members.iter().enumerate() {
                for &v in &members[i + 1..] {
                    assert!(
                        dual.g().has_edge(u, v),
                        "nodes {u} and {v} share region {region:?} but are not G-adjacent"
                    );
                }
            }
        }
    }

    #[test]
    fn region_neighbor_counts_respect_gamma_bound() {
        let r = 2.0;
        let dual = sample(150, 6.0, r, 4);
        let rd = RegionDecomposition::build(&dual, r).unwrap();
        assert!(rd.max_region_neighbors() <= RegionDecomposition::gamma_bound(r));
    }

    #[test]
    fn gamma_bound_grows_with_r_but_is_constant_in_n() {
        assert!(RegionDecomposition::gamma_bound(1.0) < RegionDecomposition::gamma_bound(3.0));
        // Same r, different networks: the bound does not depend on n.
        assert_eq!(
            RegionDecomposition::gamma_bound(1.5),
            RegionDecomposition::gamma_bound(1.5)
        );
    }

    #[test]
    fn neighboring_regions_exclude_self_and_are_sorted() {
        let dual = sample(100, 4.0, 1.5, 5);
        let rd = RegionDecomposition::build(&dual, 1.5).unwrap();
        for region in rd.regions() {
            let nbrs = rd.neighboring_regions(region);
            assert!(!nbrs.contains(&region));
            let mut sorted = nbrs.to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, nbrs);
        }
    }
}
