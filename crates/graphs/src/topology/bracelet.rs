//! The bracelet network of Section 4.2 (oblivious local broadcast lower
//! bound).

use crate::dual::DualGraph;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::node::NodeId;
use crate::Result;

/// The bracelet network together with its construction metadata.
///
/// For a band parameter `k` (written `√(n/2)` in the paper, so `n = 2k²`):
///
/// * there are `k` bands on side `A` and `k` bands on side `B`, each band a
///   `G`-path of `k` nodes;
/// * the *heads* of the bands (`a_1, …, a_k` and `b_1, …, b_k`) form the sets
///   `A` and `B`;
/// * one clasp edge `(a_t, b_t)` joins the two sides in `G`;
/// * the *tails* of all `2k` bands are joined into a clique in `G` so the
///   graph is connected;
/// * `G'` additionally contains every cross pair `(a_i, b_j)`.
///
/// Note the head-to-head `G'` edges form a large bipartite structure with a
/// large independence number — exactly the property the lower bound exploits
/// and the property geographic graphs cannot have.
#[derive(Debug, Clone)]
pub struct Bracelet {
    dual: DualGraph,
    bands_a: Vec<Vec<NodeId>>,
    bands_b: Vec<Vec<NodeId>>,
    clasp: (NodeId, NodeId),
    k: usize,
}

impl Bracelet {
    /// The underlying dual graph.
    pub fn dual(&self) -> &DualGraph {
        &self.dual
    }

    /// Consumes the wrapper and returns the dual graph.
    pub fn into_dual(self) -> DualGraph {
        self.dual
    }

    /// The band parameter `k = √(n/2)`.
    pub fn band_length(&self) -> usize {
        self.k
    }

    /// Total number of nodes `n = 2k²`.
    pub fn len(&self) -> usize {
        self.dual.len()
    }

    /// Returns `true` if the network is empty (it never is for `k ≥ 1`).
    pub fn is_empty(&self) -> bool {
        self.dual.is_empty()
    }

    /// Bands of side `A`; band `i` starts with the head `a_{i+1}`.
    pub fn bands_a(&self) -> &[Vec<NodeId>] {
        &self.bands_a
    }

    /// Bands of side `B`; band `i` starts with the head `b_{i+1}`.
    pub fn bands_b(&self) -> &[Vec<NodeId>] {
        &self.bands_b
    }

    /// Heads of the `A` bands (the set `A` in the paper).
    pub fn heads_a(&self) -> Vec<NodeId> {
        self.bands_a.iter().map(|band| band[0]).collect()
    }

    /// Heads of the `B` bands (the set `B` in the paper).
    pub fn heads_b(&self) -> Vec<NodeId> {
        self.bands_b.iter().map(|band| band[0]).collect()
    }

    /// The clasp edge `(a_t, b_t)` joining the two sides in `G`.
    pub fn clasp(&self) -> (NodeId, NodeId) {
        self.clasp
    }

    /// The band (ordered head to tail) containing `u`, if `u` is a band node.
    pub fn band_of(&self, u: NodeId) -> Option<&[NodeId]> {
        self.bands_a
            .iter()
            .chain(self.bands_b.iter())
            .find(|band| band.contains(&u))
            .map(Vec::as_slice)
    }
}

/// Builds a bracelet network with band parameter `k` (so `n = 2k²`), with the
/// clasp at the first band pair `(a_1, b_1)`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `k < 2`.
///
/// # Example
///
/// ```
/// use dradio_graphs::topology;
/// let b = topology::bracelet(4)?;
/// assert_eq!(b.len(), 32);           // n = 2 k^2
/// assert_eq!(b.heads_a().len(), 4);  // k bands per side
/// assert!(b.dual().is_valid());
/// # Ok::<(), dradio_graphs::GraphError>(())
/// ```
pub fn bracelet(k: usize) -> Result<Bracelet> {
    bracelet_with_clasp(k, 0)
}

/// Builds a bracelet network with the clasp at band pair `t` (0-based,
/// `t < k`). The lower-bound reduction sweeps the clasp position as the
/// hitting-game target.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `k < 2` or `t >= k`.
pub fn bracelet_with_clasp(k: usize, t: usize) -> Result<Bracelet> {
    if k < 2 {
        return Err(GraphError::InvalidParameter {
            reason: format!("bracelet requires band parameter k >= 2, got {k}"),
        });
    }
    if t >= k {
        return Err(GraphError::InvalidParameter {
            reason: format!("clasp index {t} out of range for k = {k}"),
        });
    }
    let n = 2 * k * k;
    let mut g = Graph::empty(n);
    let mut g_prime = Graph::empty(n);

    // Node layout: side A occupies indices [0, k^2), side B occupies
    // [k^2, 2k^2). Band i on a side occupies k consecutive indices starting
    // at offset + i * k; position 0 within the band is the head.
    let band_node = |side_offset: usize, band: usize, pos: usize| -> NodeId {
        NodeId::new(side_offset + band * k + pos)
    };

    let mut bands_a = Vec::with_capacity(k);
    let mut bands_b = Vec::with_capacity(k);
    for (side_offset, bands) in [(0usize, &mut bands_a), (k * k, &mut bands_b)] {
        for band in 0..k {
            let nodes: Vec<NodeId> = (0..k)
                .map(|pos| band_node(side_offset, band, pos))
                .collect();
            for pair in nodes.windows(2) {
                g.add_edge(pair[0], pair[1])?;
            }
            bands.push(nodes);
        }
    }

    // Tails of all bands form a clique in G (keeps the graph connected).
    let tails: Vec<NodeId> = bands_a
        .iter()
        .chain(bands_b.iter())
        // lint: allow(D4) -- band size is validated positive before bands are built
        .map(|band| *band.last().expect("bands are non-empty"))
        .collect();
    for i in 0..tails.len() {
        for j in (i + 1)..tails.len() {
            g.add_edge(tails[i], tails[j])?;
        }
    }

    // Clasp: a single G edge between the chosen head pair.
    let clasp = (bands_a[t][0], bands_b[t][0]);
    g.add_edge(clasp.0, clasp.1)?;

    // G' = G plus every cross pair of heads (a_i, b_j).
    for e in g.edges() {
        let (u, v) = e.endpoints();
        g_prime.add_edge(u, v)?;
    }
    for band_a in &bands_a {
        for band_b in &bands_b {
            g_prime.add_edge(band_a[0], band_b[0])?;
        }
    }

    let dual = DualGraph::new(g, g_prime)?.with_name(format!("bracelet(k={k}, n={n}, clasp={t})"));
    Ok(Bracelet {
        dual,
        bands_a,
        bands_b,
        clasp,
        k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn rejects_small_k_and_bad_clasp() {
        assert!(bracelet(1).is_err());
        assert!(bracelet_with_clasp(3, 3).is_err());
        assert!(bracelet_with_clasp(3, 2).is_ok());
    }

    #[test]
    fn node_count_is_2k_squared() {
        for k in [2usize, 3, 5] {
            let b = bracelet(k).unwrap();
            assert_eq!(b.len(), 2 * k * k);
            assert_eq!(b.band_length(), k);
            assert_eq!(b.bands_a().len(), k);
            assert_eq!(b.bands_b().len(), k);
            assert!(b.bands_a().iter().all(|band| band.len() == k));
        }
    }

    #[test]
    fn g_is_connected_and_valid() {
        let b = bracelet(4).unwrap();
        assert!(properties::is_connected(b.dual().g()));
        assert!(b.dual().is_valid());
    }

    #[test]
    fn clasp_is_the_only_head_to_head_g_edge() {
        let b = bracelet_with_clasp(4, 2).unwrap();
        let heads_a = b.heads_a();
        let heads_b = b.heads_b();
        let mut cross = Vec::new();
        for &a in &heads_a {
            for &hb in &heads_b {
                if b.dual().g().has_edge(a, hb) {
                    cross.push((a, hb));
                }
            }
        }
        assert_eq!(cross, vec![b.clasp()]);
    }

    #[test]
    fn g_prime_contains_all_head_pairs() {
        let b = bracelet(3).unwrap();
        for &a in &b.heads_a() {
            for &hb in &b.heads_b() {
                assert!(b.dual().g_prime().has_edge(a, hb));
            }
        }
    }

    #[test]
    fn heads_have_large_independent_neighborhood_in_g_prime() {
        // The property the lower bound exploits: a head of A neighbors all k
        // heads of B in G', and those heads are pairwise non-adjacent, giving
        // an independence number of ~sqrt(n/2) in a single neighborhood.
        let k = 5;
        let b = bracelet(k).unwrap();
        let a1 = b.heads_a()[0];
        let nbrs: Vec<NodeId> = b.dual().g_prime_neighbors(a1).to_vec();
        let independent = properties::greedy_independent_subset(b.dual().g_prime(), &nbrs);
        assert!(
            independent >= k - 1,
            "independence {independent} too small for k = {k}"
        );
    }

    #[test]
    fn band_of_locates_members() {
        let b = bracelet(3).unwrap();
        let head = b.heads_a()[1];
        let band = b.band_of(head).unwrap();
        assert_eq!(band[0], head);
        assert_eq!(band.len(), 3);
        // A node index beyond n is in no band.
        assert!(b.band_of(NodeId::new(10_000)).is_none());
    }

    #[test]
    fn bands_are_g_paths() {
        let b = bracelet(4).unwrap();
        for band in b.bands_a().iter().chain(b.bands_b()) {
            for pair in band.windows(2) {
                assert!(b.dual().g().has_edge(pair[0], pair[1]));
            }
            // Heads are not G-adjacent to interior nodes of other bands.
            assert_eq!(
                b.dual().g().degree(band[0]).min(4),
                b.dual().g().degree(band[0]).min(4)
            );
        }
    }

    #[test]
    fn diameter_scales_with_band_length() {
        // Bands of length k give a diameter of order k (head -> tail -> other
        // tail -> other head), much larger than the dual clique's constant.
        let b = bracelet(5).unwrap();
        let d = properties::diameter(b.dual().g()).unwrap();
        assert!(d >= 5, "expected diameter at least k, got {d}");
    }
}
