//! Cliques and the dual clique lower-bound network of Section 3.

use crate::dual::DualGraph;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::node::NodeId;
use crate::Result;

/// A static clique on `n` nodes (protocol model: `G = G'`).
///
/// # Example
///
/// ```
/// use dradio_graphs::topology;
/// let dual = topology::clique(5);
/// assert!(dual.is_static());
/// assert_eq!(dual.max_degree(), 4);
/// ```
pub fn clique(n: usize) -> DualGraph {
    DualGraph::static_model(Graph::complete(n)).with_name(format!("clique(n={n})"))
}

/// The dual clique network together with its construction metadata.
///
/// The network partitions the `n` nodes into two equal halves `A` and `B`,
/// each forming a clique in `G`; one bridge edge `(t_A, t_B)` joins the
/// halves in `G`; and `G'` is the complete graph. The graph has constant
/// diameter and is the network in which the paper proves that broadcast with
/// an (online or offline) adaptive adversary requires `Ω(n / log n)` rounds.
#[derive(Debug, Clone)]
pub struct DualClique {
    dual: DualGraph,
    a: Vec<NodeId>,
    b: Vec<NodeId>,
    bridge: (NodeId, NodeId),
}

impl DualClique {
    /// The underlying dual graph.
    pub fn dual(&self) -> &DualGraph {
        &self.dual
    }

    /// Consumes the wrapper and returns the dual graph.
    pub fn into_dual(self) -> DualGraph {
        self.dual
    }

    /// Nodes of side `A` (contains the global broadcast source by
    /// convention).
    pub fn side_a(&self) -> &[NodeId] {
        &self.a
    }

    /// Nodes of side `B`.
    pub fn side_b(&self) -> &[NodeId] {
        &self.b
    }

    /// The single reliable bridge `(t_A, t_B)` with `t_A ∈ A`, `t_B ∈ B`.
    pub fn bridge(&self) -> (NodeId, NodeId) {
        self.bridge
    }
}

/// Builds the dual clique network on `n` nodes with the bridge at the default
/// position `(n/2 - 1, n/2)` — i.e. the last node of side `A` and the first
/// node of side `B`.
///
/// The default deliberately does *not* place the bridge at node 0, which is
/// the conventional global broadcast source: the lower-bound constructions of
/// the paper rely on the bridge being some a-priori unremarkable node of `A`,
/// and a source that happens to sit on the bridge would trivialize the
/// adversary's task of isolating side `B`. Use [`dual_clique_with_bridge`] to
/// place the bridge explicitly.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] unless `n` is even and `n ≥ 4`.
///
/// # Example
///
/// ```
/// use dradio_graphs::topology;
/// use dradio_graphs::properties;
/// let dc = topology::dual_clique(16)?;
/// assert_eq!(dc.len(), 16);
/// assert!(properties::diameter(dc.g())? <= 3);
/// // G' is complete: the adversary may connect any pair.
/// assert_eq!(dc.g_prime().edge_count(), 16 * 15 / 2);
/// # Ok::<(), dradio_graphs::GraphError>(())
/// ```
pub fn dual_clique(n: usize) -> Result<DualGraph> {
    if n < 4 || !n.is_multiple_of(2) {
        return Err(GraphError::InvalidParameter {
            reason: format!("dual clique requires even n >= 4, got {n}"),
        });
    }
    dual_clique_with_bridge(n, n / 2 - 1, n / 2).map(DualClique::into_dual)
}

/// Builds the dual clique network on `n` nodes with an explicit bridge
/// `(t_a, t_b)` (raw indices; `t_a` must lie in `[0, n/2)` and `t_b` in
/// `[n/2, n)`).
///
/// The lower-bound proof of Theorem 3.1 places the hitting-game target at the
/// bridge; experiments that re-enact the proof use this constructor to sweep
/// the target.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n` is odd, `n < 4`, or the
/// bridge endpoints are on the wrong sides.
pub fn dual_clique_with_bridge(n: usize, t_a: usize, t_b: usize) -> Result<DualClique> {
    if n < 4 || !n.is_multiple_of(2) {
        return Err(GraphError::InvalidParameter {
            reason: format!("dual clique requires even n >= 4, got {n}"),
        });
    }
    let half = n / 2;
    if t_a >= half || t_b < half || t_b >= n {
        return Err(GraphError::InvalidParameter {
            reason: format!(
                "bridge endpoints must satisfy t_a in [0, {half}) and t_b in [{half}, {n}), got ({t_a}, {t_b})"
            ),
        });
    }
    let mut g = Graph::empty(n);
    for i in 0..half {
        for j in (i + 1)..half {
            g.add_edge(NodeId::new(i), NodeId::new(j))?;
        }
    }
    for i in half..n {
        for j in (i + 1)..n {
            g.add_edge(NodeId::new(i), NodeId::new(j))?;
        }
    }
    g.add_edge(NodeId::new(t_a), NodeId::new(t_b))?;
    let g_prime = Graph::complete(n);
    let dual =
        DualGraph::new(g, g_prime)?.with_name(format!("dual-clique(n={n}, bridge=({t_a},{t_b}))"));
    Ok(DualClique {
        dual,
        a: (0..half).map(NodeId::new).collect(),
        b: (half..n).map(NodeId::new).collect(),
        bridge: (NodeId::new(t_a), NodeId::new(t_b)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn clique_is_static_and_complete() {
        let c = clique(6);
        assert!(c.is_static());
        assert_eq!(c.g().edge_count(), 15);
        assert_eq!(properties::diameter(c.g()).unwrap(), 1);
    }

    #[test]
    fn dual_clique_rejects_bad_sizes() {
        assert!(dual_clique(3).is_err());
        assert!(dual_clique(7).is_err());
        assert!(dual_clique(2).is_err());
        assert!(dual_clique(4).is_ok());
    }

    #[test]
    fn dual_clique_structure() {
        let dc = dual_clique_with_bridge(12, 2, 8).unwrap();
        let dual = dc.dual();
        assert!(dual.is_valid());
        assert_eq!(dc.side_a().len(), 6);
        assert_eq!(dc.side_b().len(), 6);
        // Bridge is a G edge.
        let (ta, tb) = dc.bridge();
        assert!(dual.g().has_edge(ta, tb));
        // The only G edge between A and B is the bridge.
        let mut cross = 0;
        for &a in dc.side_a() {
            for &b in dc.side_b() {
                if dual.g().has_edge(a, b) {
                    cross += 1;
                }
            }
        }
        assert_eq!(cross, 1);
        // G' is complete.
        assert_eq!(dual.g_prime().edge_count(), 12 * 11 / 2);
    }

    #[test]
    fn dual_clique_has_constant_diameter() {
        for n in [8usize, 16, 32, 64] {
            let dual = dual_clique(n).unwrap();
            let d = properties::diameter(dual.g()).unwrap();
            assert!(d <= 3, "dual clique of size {n} has diameter {d} > 3");
        }
    }

    #[test]
    fn dual_clique_bridge_validation() {
        assert!(dual_clique_with_bridge(8, 5, 6).is_err()); // t_a on wrong side
        assert!(dual_clique_with_bridge(8, 1, 2).is_err()); // t_b on wrong side
        assert!(dual_clique_with_bridge(8, 3, 7).is_ok());
    }

    #[test]
    fn dual_clique_g_is_connected() {
        let dual = dual_clique(20).unwrap();
        assert!(properties::is_connected(dual.g()));
    }
}
