//! Geographic (unit-disk style) dual graphs with a grey zone.
//!
//! These topologies satisfy the geographic constraint of Section 2 of the
//! paper: nodes at distance `≤ 1` are connected in `G`, nodes at distance
//! `> r` are not connected in `G'`, and pairs in the *grey zone* `(1, r]`
//! are connected in `G'` but not `G` — their links exist but are unreliable.

use std::collections::BTreeMap;

use rand::Rng;

use crate::dual::DualGraph;
use crate::error::GraphError;
use crate::geometry::{Embedding, Point};
use crate::graph::{auto_backend, Graph, GraphBackend};
use crate::node::NodeId;
use crate::properties;
use crate::Result;

/// Parameters for [`random_geometric`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometricConfig {
    /// Number of nodes.
    pub n: usize,
    /// Side length of the square deployment area.
    pub side: f64,
    /// Geographic parameter `r ≥ 1`: pairs farther than `r` share no `G'`
    /// edge; pairs in `(1, r]` are grey-zone (dynamic) links.
    pub r: f64,
    /// Maximum number of placement attempts to obtain a connected reliable
    /// layer.
    pub max_attempts: usize,
}

impl GeometricConfig {
    /// Creates a configuration with the default attempt budget (200).
    pub fn new(n: usize, side: f64, r: f64) -> Self {
        GeometricConfig {
            n,
            side,
            r,
            max_attempts: 200,
        }
    }

    /// Sets the attempt budget for sampling a connected deployment.
    pub fn with_max_attempts(mut self, attempts: usize) -> Self {
        self.max_attempts = attempts;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.n == 0 {
            return Err(GraphError::InvalidParameter {
                reason: "n must be >= 1".into(),
            });
        }
        if self.r < 1.0 {
            return Err(GraphError::InvalidParameter {
                reason: format!("geographic parameter r must be >= 1, got {}", self.r),
            });
        }
        if self.side <= 0.0 {
            return Err(GraphError::InvalidParameter {
                reason: format!("deployment side must be positive, got {}", self.side),
            });
        }
        if self.max_attempts == 0 {
            return Err(GraphError::InvalidParameter {
                reason: "max_attempts must be >= 1".into(),
            });
        }
        Ok(())
    }
}

/// Classifies all node pairs at distance `≤ 1` (reliable) and in `(1, r]`
/// (grey zone) in ~`O(n + m)` expected time via a spatial hash with cell
/// size `r`: partners within distance `r` can only live in the 3×3 cell
/// neighborhood, so the quadratic all-pairs scan is never needed.
///
/// A `BTreeMap` keys the buckets so iteration order is deterministic
/// (hash-map iteration would vary run to run). Pairs are emitted in bucket
/// order, not lexicographic order; both [`Graph`] backends canonicalize
/// edge order internally, so the resulting graphs are identical to the
/// old scan's.
type PairList = Vec<(usize, usize)>;

fn classify_pairs(points: &[Point], r: f64) -> (PairList, PairList) {
    let mut buckets: BTreeMap<(i64, i64), Vec<u32>> = BTreeMap::new();
    let cell = |p: &Point| ((p.x / r).floor() as i64, (p.y / r).floor() as i64);
    for (i, p) in points.iter().enumerate() {
        buckets.entry(cell(p)).or_default().push(i as u32);
    }
    let mut reliable = Vec::new();
    let mut grey = Vec::new();
    for (&(cx, cy), members) in &buckets {
        for dx in -1..=1i64 {
            for dy in -1..=1i64 {
                let Some(other) = buckets.get(&(cx + dx, cy + dy)) else {
                    continue;
                };
                for &i in members {
                    for &j in other {
                        if j <= i {
                            // Cross-bucket pairs are visited from both ends;
                            // keep exactly the lo→hi orientation.
                            continue;
                        }
                        let d = points[i as usize].distance(points[j as usize]);
                        if d <= 1.0 {
                            reliable.push((i as usize, j as usize));
                        } else if d <= r {
                            grey.push((i as usize, j as usize));
                        }
                    }
                }
            }
        }
    }
    (reliable, grey)
}

/// Builds the dual graph induced by a set of points under the geographic
/// constraint with parameter `r`.
///
/// Pair discovery runs through a spatial hash (expected `O(n + m)` instead
/// of the former all-pairs `O(n²)` scan), and the storage backend follows
/// [`auto_backend`], so million-point deployments build without ever
/// materializing an adjacency matrix.
pub fn dual_from_points(points: Vec<Point>, r: f64, name: impl Into<String>) -> Result<DualGraph> {
    if r < 1.0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("geographic parameter r must be >= 1, got {r}"),
        });
    }
    let n = points.len();
    let (reliable, grey) = classify_pairs(&points, r);
    let backend = auto_backend(n, (reliable.len() + grey.len()) as u64);
    let (g, g_prime) = match backend {
        GraphBackend::Dense => {
            let mut g = Graph::empty(n);
            let mut g_prime = Graph::empty(n);
            for &(i, j) in &reliable {
                let (u, v) = (NodeId::new(i), NodeId::new(j));
                g.add_edge(u, v)?;
                g_prime.add_edge(u, v)?;
            }
            for &(i, j) in &grey {
                g_prime.add_edge(NodeId::new(i), NodeId::new(j))?;
            }
            (g, g_prime)
        }
        GraphBackend::Csr => {
            let g = Graph::csr_from_edges(n, &reliable)?;
            let mut all = reliable;
            all.extend_from_slice(&grey);
            (g, Graph::csr_from_edges(n, &all)?)
        }
    };
    DualGraph::new(g, g_prime)?
        .with_embedding(Embedding::new(points))
        .map(|d| d.with_name(name))
}

/// Samples a random geographic dual graph: `n` points placed uniformly in a
/// `side × side` square, re-sampled until the reliable layer is connected.
///
/// # Errors
///
/// * [`GraphError::InvalidParameter`] for invalid configuration values.
/// * [`GraphError::Disconnected`] if no connected deployment was found within
///   the attempt budget (decrease `side` or increase `n`).
///
/// # Example
///
/// ```
/// use dradio_graphs::topology::{random_geometric, GeometricConfig};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// let mut rng = ChaCha8Rng::seed_from_u64(11);
/// let dual = random_geometric(&GeometricConfig::new(60, 4.0, 2.0), &mut rng)?;
/// assert!(dual.satisfies_geographic_constraint(2.0)?);
/// # Ok::<(), dradio_graphs::GraphError>(())
/// ```
pub fn random_geometric<R: Rng + ?Sized>(
    config: &GeometricConfig,
    rng: &mut R,
) -> Result<DualGraph> {
    config.validate()?;
    for _ in 0..config.max_attempts {
        let points: Vec<Point> = (0..config.n)
            .map(|_| {
                Point::new(
                    rng.gen_range(0.0..config.side),
                    rng.gen_range(0.0..config.side),
                )
            })
            .collect();
        let dual = dual_from_points(
            points,
            config.r,
            format!(
                "geometric(n={}, side={:.1}, r={:.1})",
                config.n, config.side, config.r
            ),
        )?;
        if properties::is_connected(dual.g()) {
            return Ok(dual);
        }
    }
    Err(GraphError::Disconnected)
}

/// Builds a deterministic geographic dual graph on a `cols × rows` grid of
/// points with the given `spacing` between adjacent grid positions.
///
/// With `spacing ≤ 1` horizontally/vertically adjacent nodes are reliable
/// neighbors; diagonal or farther pairs within distance `r` are grey-zone
/// links. The family gives reproducible diameter sweeps for the geographic
/// experiments (no sampling, no connectivity retries).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for zero dimensions, non-positive
/// spacing, spacing greater than 1 (the grid would be disconnected in `G`),
/// or `r < 1`.
pub fn grid_geometric(cols: usize, rows: usize, spacing: f64, r: f64) -> Result<DualGraph> {
    if cols == 0 || rows == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "grid_geometric requires both dimensions >= 1".into(),
        });
    }
    if spacing <= 0.0 || spacing > 1.0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("spacing must be in (0, 1], got {spacing}"),
        });
    }
    let mut points = Vec::with_capacity(cols * rows);
    for row in 0..rows {
        for col in 0..cols {
            points.push(Point::new(col as f64 * spacing, row as f64 * spacing));
        }
    }
    dual_from_points(
        points,
        r,
        format!("grid-geometric({cols}x{rows}, s={spacing:.2}, r={r:.1})"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn config_validation() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(random_geometric(&GeometricConfig::new(0, 2.0, 1.5), &mut rng).is_err());
        assert!(random_geometric(&GeometricConfig::new(10, 2.0, 0.5), &mut rng).is_err());
        assert!(random_geometric(&GeometricConfig::new(10, -1.0, 1.5), &mut rng).is_err());
        assert!(random_geometric(
            &GeometricConfig::new(10, 2.0, 1.5).with_max_attempts(0),
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn random_geometric_satisfies_constraint() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let r = 1.8;
        let dual = random_geometric(&GeometricConfig::new(70, 4.0, r), &mut rng).unwrap();
        assert!(dual.is_valid());
        assert!(dual.satisfies_geographic_constraint(r).unwrap());
        assert!(properties::is_connected(dual.g()));
        assert!(dual.embedding().is_some());
    }

    #[test]
    fn random_geometric_is_deterministic_per_seed() {
        let cfg = GeometricConfig::new(40, 3.0, 1.5);
        let a = random_geometric(&cfg, &mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        let b = random_geometric(&cfg, &mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        assert_eq!(a.g().edges(), b.g().edges());
        assert_eq!(a.g_prime().edges(), b.g_prime().edges());
    }

    #[test]
    fn sparse_deployment_reports_disconnected() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // 3 nodes in a 100x100 area will essentially never form a connected
        // unit-disk graph.
        let cfg = GeometricConfig::new(3, 100.0, 1.0).with_max_attempts(5);
        assert_eq!(
            random_geometric(&cfg, &mut rng).unwrap_err(),
            GraphError::Disconnected
        );
    }

    #[test]
    fn grid_geometric_structure() {
        let dual = grid_geometric(5, 4, 1.0, 1.5).unwrap();
        assert_eq!(dual.len(), 20);
        assert!(dual.is_valid());
        assert!(dual.satisfies_geographic_constraint(1.5).unwrap());
        // Diagonal neighbors are at distance sqrt(2) ~ 1.414 <= r, so they are
        // grey-zone (dynamic) links.
        assert!(!dual.dynamic_edges().is_empty());
        assert!(properties::is_connected(dual.g()));
    }

    #[test]
    fn grid_geometric_rejects_bad_parameters() {
        assert!(grid_geometric(0, 3, 1.0, 1.5).is_err());
        assert!(grid_geometric(3, 3, 0.0, 1.5).is_err());
        assert!(grid_geometric(3, 3, 1.2, 1.5).is_err());
        assert!(grid_geometric(3, 3, 1.0, 0.9).is_err());
    }

    #[test]
    fn tighter_r_removes_grey_zone_edges() {
        let wide = grid_geometric(4, 4, 1.0, 2.5).unwrap();
        let narrow = grid_geometric(4, 4, 1.0, 1.0).unwrap();
        assert!(wide.dynamic_edges().len() > narrow.dynamic_edges().len());
        // r = 1 means G' = G (no grey zone at all).
        assert!(narrow.is_static());
    }

    /// The pre-spatial-hash all-pairs scan, kept verbatim as the reference
    /// implementation the hash-based generator is pinned against.
    fn quadratic_reference(points: Vec<Point>, r: f64) -> DualGraph {
        let n = points.len();
        let mut g = Graph::empty(n);
        let mut g_prime = Graph::empty(n);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = points[i].distance(points[j]);
                let (u, v) = (NodeId::new(i), NodeId::new(j));
                if d <= 1.0 {
                    g.add_edge(u, v).unwrap();
                    g_prime.add_edge(u, v).unwrap();
                } else if d <= r {
                    g_prime.add_edge(u, v).unwrap();
                }
            }
        }
        DualGraph::new(g, g_prime).unwrap()
    }

    #[test]
    fn spatial_hash_matches_quadratic_scan_for_existing_seeds() {
        // Same seeds and configs as the long-standing generator tests: the
        // spatial hash must reproduce the historical edge sets exactly.
        for (seed, n, side, r) in [
            (5u64, 40usize, 3.0, 1.5),
            (11, 60, 4.0, 2.0),
            (42, 70, 4.0, 1.8),
        ] {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let points: Vec<Point> = (0..n)
                .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
                .collect();
            let fast = dual_from_points(points.clone(), r, "fast").unwrap();
            let slow = quadratic_reference(points, r);
            assert_eq!(fast.g().edges(), slow.g().edges());
            assert_eq!(fast.g_prime().edges(), slow.g_prime().edges());
        }
    }

    #[test]
    fn dual_from_points_respects_thresholds() {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(0.9, 0.0),
            Point::new(2.4, 0.0),
        ];
        let dual = dual_from_points(points, 1.6, "manual").unwrap();
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        assert!(dual.g().has_edge(a, b)); // distance 0.9 <= 1
        assert!(!dual.g().has_edge(b, c)); // distance 1.5 > 1 ...
        assert!(dual.g_prime().has_edge(b, c)); // ... but <= r: grey zone
        assert!(!dual.g_prime().has_edge(a, c)); // distance 2.4 > r
    }
}
