//! Geographic (unit-disk style) dual graphs with a grey zone.
//!
//! These topologies satisfy the geographic constraint of Section 2 of the
//! paper: nodes at distance `≤ 1` are connected in `G`, nodes at distance
//! `> r` are not connected in `G'`, and pairs in the *grey zone* `(1, r]`
//! are connected in `G'` but not `G` — their links exist but are unreliable.

use rand::Rng;

use crate::dual::DualGraph;
use crate::error::GraphError;
use crate::geometry::{Embedding, Point};
use crate::graph::Graph;
use crate::node::NodeId;
use crate::properties;
use crate::Result;

/// Parameters for [`random_geometric`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometricConfig {
    /// Number of nodes.
    pub n: usize,
    /// Side length of the square deployment area.
    pub side: f64,
    /// Geographic parameter `r ≥ 1`: pairs farther than `r` share no `G'`
    /// edge; pairs in `(1, r]` are grey-zone (dynamic) links.
    pub r: f64,
    /// Maximum number of placement attempts to obtain a connected reliable
    /// layer.
    pub max_attempts: usize,
}

impl GeometricConfig {
    /// Creates a configuration with the default attempt budget (200).
    pub fn new(n: usize, side: f64, r: f64) -> Self {
        GeometricConfig {
            n,
            side,
            r,
            max_attempts: 200,
        }
    }

    /// Sets the attempt budget for sampling a connected deployment.
    pub fn with_max_attempts(mut self, attempts: usize) -> Self {
        self.max_attempts = attempts;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.n == 0 {
            return Err(GraphError::InvalidParameter {
                reason: "n must be >= 1".into(),
            });
        }
        if self.r < 1.0 {
            return Err(GraphError::InvalidParameter {
                reason: format!("geographic parameter r must be >= 1, got {}", self.r),
            });
        }
        if self.side <= 0.0 {
            return Err(GraphError::InvalidParameter {
                reason: format!("deployment side must be positive, got {}", self.side),
            });
        }
        if self.max_attempts == 0 {
            return Err(GraphError::InvalidParameter {
                reason: "max_attempts must be >= 1".into(),
            });
        }
        Ok(())
    }
}

/// Builds the dual graph induced by a set of points under the geographic
/// constraint with parameter `r`.
pub fn dual_from_points(points: Vec<Point>, r: f64, name: impl Into<String>) -> Result<DualGraph> {
    if r < 1.0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("geographic parameter r must be >= 1, got {r}"),
        });
    }
    let n = points.len();
    let mut g = Graph::empty(n);
    let mut g_prime = Graph::empty(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = points[i].distance(points[j]);
            let (u, v) = (NodeId::new(i), NodeId::new(j));
            if d <= 1.0 {
                g.add_edge(u, v)?;
                g_prime.add_edge(u, v)?;
            } else if d <= r {
                g_prime.add_edge(u, v)?;
            }
        }
    }
    DualGraph::new(g, g_prime)?
        .with_embedding(Embedding::new(points))
        .map(|d| d.with_name(name))
}

/// Samples a random geographic dual graph: `n` points placed uniformly in a
/// `side × side` square, re-sampled until the reliable layer is connected.
///
/// # Errors
///
/// * [`GraphError::InvalidParameter`] for invalid configuration values.
/// * [`GraphError::Disconnected`] if no connected deployment was found within
///   the attempt budget (decrease `side` or increase `n`).
///
/// # Example
///
/// ```
/// use dradio_graphs::topology::{random_geometric, GeometricConfig};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// let mut rng = ChaCha8Rng::seed_from_u64(11);
/// let dual = random_geometric(&GeometricConfig::new(60, 4.0, 2.0), &mut rng)?;
/// assert!(dual.satisfies_geographic_constraint(2.0)?);
/// # Ok::<(), dradio_graphs::GraphError>(())
/// ```
pub fn random_geometric<R: Rng + ?Sized>(
    config: &GeometricConfig,
    rng: &mut R,
) -> Result<DualGraph> {
    config.validate()?;
    for _ in 0..config.max_attempts {
        let points: Vec<Point> = (0..config.n)
            .map(|_| {
                Point::new(
                    rng.gen_range(0.0..config.side),
                    rng.gen_range(0.0..config.side),
                )
            })
            .collect();
        let dual = dual_from_points(
            points,
            config.r,
            format!(
                "geometric(n={}, side={:.1}, r={:.1})",
                config.n, config.side, config.r
            ),
        )?;
        if properties::is_connected(dual.g()) {
            return Ok(dual);
        }
    }
    Err(GraphError::Disconnected)
}

/// Builds a deterministic geographic dual graph on a `cols × rows` grid of
/// points with the given `spacing` between adjacent grid positions.
///
/// With `spacing ≤ 1` horizontally/vertically adjacent nodes are reliable
/// neighbors; diagonal or farther pairs within distance `r` are grey-zone
/// links. The family gives reproducible diameter sweeps for the geographic
/// experiments (no sampling, no connectivity retries).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for zero dimensions, non-positive
/// spacing, spacing greater than 1 (the grid would be disconnected in `G`),
/// or `r < 1`.
pub fn grid_geometric(cols: usize, rows: usize, spacing: f64, r: f64) -> Result<DualGraph> {
    if cols == 0 || rows == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "grid_geometric requires both dimensions >= 1".into(),
        });
    }
    if spacing <= 0.0 || spacing > 1.0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("spacing must be in (0, 1], got {spacing}"),
        });
    }
    let mut points = Vec::with_capacity(cols * rows);
    for row in 0..rows {
        for col in 0..cols {
            points.push(Point::new(col as f64 * spacing, row as f64 * spacing));
        }
    }
    dual_from_points(
        points,
        r,
        format!("grid-geometric({cols}x{rows}, s={spacing:.2}, r={r:.1})"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn config_validation() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(random_geometric(&GeometricConfig::new(0, 2.0, 1.5), &mut rng).is_err());
        assert!(random_geometric(&GeometricConfig::new(10, 2.0, 0.5), &mut rng).is_err());
        assert!(random_geometric(&GeometricConfig::new(10, -1.0, 1.5), &mut rng).is_err());
        assert!(random_geometric(
            &GeometricConfig::new(10, 2.0, 1.5).with_max_attempts(0),
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn random_geometric_satisfies_constraint() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let r = 1.8;
        let dual = random_geometric(&GeometricConfig::new(70, 4.0, r), &mut rng).unwrap();
        assert!(dual.is_valid());
        assert!(dual.satisfies_geographic_constraint(r).unwrap());
        assert!(properties::is_connected(dual.g()));
        assert!(dual.embedding().is_some());
    }

    #[test]
    fn random_geometric_is_deterministic_per_seed() {
        let cfg = GeometricConfig::new(40, 3.0, 1.5);
        let a = random_geometric(&cfg, &mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        let b = random_geometric(&cfg, &mut ChaCha8Rng::seed_from_u64(5)).unwrap();
        assert_eq!(a.g().edges(), b.g().edges());
        assert_eq!(a.g_prime().edges(), b.g_prime().edges());
    }

    #[test]
    fn sparse_deployment_reports_disconnected() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // 3 nodes in a 100x100 area will essentially never form a connected
        // unit-disk graph.
        let cfg = GeometricConfig::new(3, 100.0, 1.0).with_max_attempts(5);
        assert_eq!(
            random_geometric(&cfg, &mut rng).unwrap_err(),
            GraphError::Disconnected
        );
    }

    #[test]
    fn grid_geometric_structure() {
        let dual = grid_geometric(5, 4, 1.0, 1.5).unwrap();
        assert_eq!(dual.len(), 20);
        assert!(dual.is_valid());
        assert!(dual.satisfies_geographic_constraint(1.5).unwrap());
        // Diagonal neighbors are at distance sqrt(2) ~ 1.414 <= r, so they are
        // grey-zone (dynamic) links.
        assert!(!dual.dynamic_edges().is_empty());
        assert!(properties::is_connected(dual.g()));
    }

    #[test]
    fn grid_geometric_rejects_bad_parameters() {
        assert!(grid_geometric(0, 3, 1.0, 1.5).is_err());
        assert!(grid_geometric(3, 3, 0.0, 1.5).is_err());
        assert!(grid_geometric(3, 3, 1.2, 1.5).is_err());
        assert!(grid_geometric(3, 3, 1.0, 0.9).is_err());
    }

    #[test]
    fn tighter_r_removes_grey_zone_edges() {
        let wide = grid_geometric(4, 4, 1.0, 2.5).unwrap();
        let narrow = grid_geometric(4, 4, 1.0, 1.0).unwrap();
        assert!(wide.dynamic_edges().len() > narrow.dynamic_edges().len());
        // r = 1 means G' = G (no grey zone at all).
        assert!(narrow.is_static());
    }

    #[test]
    fn dual_from_points_respects_thresholds() {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(0.9, 0.0),
            Point::new(2.4, 0.0),
        ];
        let dual = dual_from_points(points, 1.6, "manual").unwrap();
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        assert!(dual.g().has_edge(a, b)); // distance 0.9 <= 1
        assert!(!dual.g().has_edge(b, c)); // distance 1.5 > 1 ...
        assert!(dual.g_prime().has_edge(b, c)); // ... but <= r: grey zone
        assert!(!dual.g_prime().has_edge(a, c)); // distance 2.4 > r
    }
}
