//! Grid and torus topologies.

use crate::dual::DualGraph;
use crate::error::GraphError;
use crate::graph::{auto_backend, CsrBuilder, Graph, GraphBackend};
use crate::node::NodeId;
use crate::Result;

/// A static 4-neighbor grid of `cols × rows` nodes.
///
/// Node `(c, r)` has index `r * cols + c`. The storage backend follows
/// [`auto_backend`]: small grids stay dense (bit-exact with every earlier
/// release), large ones stream straight into CSR rows without ever
/// materializing the n×n bit matrix — a 1000×1000 grid builds in ~50 MB
/// instead of the ~116 GiB its dense matrix would need.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if either dimension is zero.
///
/// # Example
///
/// ```
/// use dradio_graphs::{properties, topology};
/// let dual = topology::grid(4, 3)?;
/// assert_eq!(dual.len(), 12);
/// assert_eq!(properties::diameter(dual.g())?, 5);
/// # Ok::<(), dradio_graphs::GraphError>(())
/// ```
pub fn grid(cols: usize, rows: usize) -> Result<DualGraph> {
    if cols == 0 || rows == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "grid requires both dimensions >= 1".into(),
        });
    }
    let edges = ((cols - 1) * rows + cols * (rows - 1)) as u64;
    grid_with_backend(cols, rows, auto_backend(cols * rows, edges))
}

/// [`grid`] with the storage backend pinned instead of chosen by the
/// density heuristic. Both backends produce structurally equal graphs; the
/// CSR path streams each node's (already sorted) neighbor row directly.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if either dimension is zero.
pub fn grid_with_backend(cols: usize, rows: usize, backend: GraphBackend) -> Result<DualGraph> {
    if cols == 0 || rows == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "grid requires both dimensions >= 1".into(),
        });
    }
    let g = match backend {
        GraphBackend::Dense => {
            let mut g = Graph::empty(cols * rows);
            let idx = |c: usize, r: usize| NodeId::new(r * cols + c);
            for r in 0..rows {
                for c in 0..cols {
                    if c + 1 < cols {
                        g.add_edge(idx(c, r), idx(c + 1, r))?;
                    }
                    if r + 1 < rows {
                        g.add_edge(idx(c, r), idx(c, r + 1))?;
                    }
                }
            }
            g
        }
        GraphBackend::Csr => {
            let n = cols * rows;
            let edges = (cols - 1) * rows + cols * (rows - 1);
            let mut b = CsrBuilder::with_edge_capacity(n, edges);
            for r in 0..rows {
                for c in 0..cols {
                    let idx = r * cols + c;
                    // Ascending: up (idx - cols), left, right, down.
                    b.row(
                        [
                            (r > 0).then(|| NodeId::new(idx - cols)),
                            (c > 0).then(|| NodeId::new(idx - 1)),
                            (c + 1 < cols).then(|| NodeId::new(idx + 1)),
                            (r + 1 < rows).then(|| NodeId::new(idx + cols)),
                        ]
                        .into_iter()
                        .flatten(),
                    );
                }
            }
            b.build()?
        }
    };
    Ok(DualGraph::static_model(g).with_name(format!("grid({cols}x{rows})")))
}

/// A static 4-neighbor torus (grid with wraparound) of `cols × rows` nodes.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if either dimension is less
/// than 3 (smaller wraparounds create multi-edges).
pub fn torus(cols: usize, rows: usize) -> Result<DualGraph> {
    if cols < 3 || rows < 3 {
        return Err(GraphError::InvalidParameter {
            reason: "torus requires both dimensions >= 3".into(),
        });
    }
    let mut g = Graph::empty(cols * rows);
    let idx = |c: usize, r: usize| NodeId::new(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            g.add_edge(idx(c, r), idx((c + 1) % cols, r))?;
            g.add_edge(idx(c, r), idx(c, (r + 1) % rows))?;
        }
    }
    Ok(DualGraph::static_model(g).with_name(format!("torus({cols}x{rows})")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn grid_shape() {
        let d = grid(5, 4).unwrap();
        assert_eq!(d.len(), 20);
        // 5x4 grid: horizontal edges = 4*4 = 16, vertical = 5*3 = 15, total 31.
        assert_eq!(d.g().edge_count(), 31);
        assert_eq!(properties::diameter(d.g()).unwrap(), 4 + 3);
        assert!(grid(0, 4).is_err());
    }

    #[test]
    fn grid_degrees() {
        let d = grid(3, 3).unwrap();
        // Corner degree 2, edge degree 3, center degree 4.
        assert_eq!(d.g().degree(NodeId::new(0)), 2);
        assert_eq!(d.g().degree(NodeId::new(1)), 3);
        assert_eq!(d.g().degree(NodeId::new(4)), 4);
    }

    #[test]
    fn torus_is_regular() {
        let d = torus(4, 5).unwrap();
        for u in d.g().nodes() {
            assert_eq!(d.g().degree(u), 4);
        }
        assert!(properties::is_connected(d.g()));
        assert!(torus(2, 5).is_err());
    }

    #[test]
    fn single_row_grid_is_a_line() {
        let d = grid(7, 1).unwrap();
        assert_eq!(properties::diameter(d.g()).unwrap(), 6);
        assert_eq!(d.max_degree(), 2);
    }
}
