//! Lines, rings, stars, and lines of cliques (diameter-controlled families).

use crate::dual::DualGraph;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::node::NodeId;
use crate::Result;

/// A static path (line) on `n` nodes: diameter `n - 1`, max degree 2.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n == 0`.
///
/// # Example
///
/// ```
/// use dradio_graphs::{properties, topology};
/// let dual = topology::line(10)?;
/// assert_eq!(properties::diameter(dual.g())?, 9);
/// # Ok::<(), dradio_graphs::GraphError>(())
/// ```
pub fn line(n: usize) -> Result<DualGraph> {
    if n == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "line requires n >= 1".into(),
        });
    }
    let mut g = Graph::empty(n);
    for i in 1..n {
        g.add_edge(NodeId::new(i - 1), NodeId::new(i))?;
    }
    Ok(DualGraph::static_model(g).with_name(format!("line(n={n})")))
}

/// A static cycle (ring) on `n ≥ 3` nodes: diameter `⌊n/2⌋`, degree 2.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 3`.
pub fn ring(n: usize) -> Result<DualGraph> {
    if n < 3 {
        return Err(GraphError::InvalidParameter {
            reason: "ring requires n >= 3".into(),
        });
    }
    let mut g = Graph::empty(n);
    for i in 0..n {
        g.add_edge(NodeId::new(i), NodeId::new((i + 1) % n))?;
    }
    Ok(DualGraph::static_model(g).with_name(format!("ring(n={n})")))
}

/// A static star on `n ≥ 2` nodes: node 0 is the hub, diameter 2 (1 for
/// `n = 2`), max degree `n - 1`.
///
/// Stars are the canonical *single-hop* contention scenario used by the
/// decay-subroutine experiments (Lemma 4.2): many broadcasters, one receiver.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `n < 2`.
pub fn star(n: usize) -> Result<DualGraph> {
    if n < 2 {
        return Err(GraphError::InvalidParameter {
            reason: "star requires n >= 2".into(),
        });
    }
    let mut g = Graph::empty(n);
    for i in 1..n {
        g.add_edge(NodeId::new(0), NodeId::new(i))?;
    }
    Ok(DualGraph::static_model(g).with_name(format!("star(n={n})")))
}

/// A static "line of cliques": `cliques` cliques of `clique_size` nodes each,
/// consecutive cliques joined by a single bridge edge.
///
/// This family lets experiments control diameter (`≈ 2·cliques`) and local
/// contention (`clique_size`) independently — the regime where the
/// `O(D log n + log² n)` global broadcast bound is interesting.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if either parameter is zero.
///
/// # Example
///
/// ```
/// use dradio_graphs::{properties, topology};
/// let dual = topology::line_of_cliques(5, 4)?;
/// assert_eq!(dual.len(), 20);
/// assert!(properties::is_connected(dual.g()));
/// # Ok::<(), dradio_graphs::GraphError>(())
/// ```
pub fn line_of_cliques(cliques: usize, clique_size: usize) -> Result<DualGraph> {
    if cliques == 0 || clique_size == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "line_of_cliques requires both parameters >= 1".into(),
        });
    }
    let n = cliques * clique_size;
    let mut g = Graph::empty(n);
    for c in 0..cliques {
        let base = c * clique_size;
        for i in 0..clique_size {
            for j in (i + 1)..clique_size {
                g.add_edge(NodeId::new(base + i), NodeId::new(base + j))?;
            }
        }
        if c + 1 < cliques {
            // Bridge from the last node of this clique to the first node of
            // the next clique.
            g.add_edge(
                NodeId::new(base + clique_size - 1),
                NodeId::new(base + clique_size),
            )?;
        }
    }
    Ok(DualGraph::static_model(g)
        .with_name(format!("line-of-cliques(c={cliques}, s={clique_size})")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties;

    #[test]
    fn line_shape() {
        let d = line(6).unwrap();
        assert_eq!(d.len(), 6);
        assert_eq!(d.g().edge_count(), 5);
        assert_eq!(properties::diameter(d.g()).unwrap(), 5);
        assert_eq!(d.max_degree(), 2);
        assert!(line(0).is_err());
        assert!(line(1).is_ok());
    }

    #[test]
    fn ring_shape() {
        let d = ring(8).unwrap();
        assert_eq!(d.g().edge_count(), 8);
        assert_eq!(properties::diameter(d.g()).unwrap(), 4);
        assert!(ring(2).is_err());
    }

    #[test]
    fn star_shape() {
        let d = star(9).unwrap();
        assert_eq!(d.g().edge_count(), 8);
        assert_eq!(d.max_degree(), 8);
        assert_eq!(properties::diameter(d.g()).unwrap(), 2);
        assert!(star(1).is_err());
    }

    #[test]
    fn line_of_cliques_shape() {
        let d = line_of_cliques(4, 5).unwrap();
        assert_eq!(d.len(), 20);
        assert!(properties::is_connected(d.g()));
        let diam = properties::diameter(d.g()).unwrap();
        assert!(
            (4..=2 * 4 + 2).contains(&diam),
            "diameter {diam} out of expected range"
        );
        assert!(line_of_cliques(0, 3).is_err());
        assert!(line_of_cliques(3, 0).is_err());
    }

    #[test]
    fn line_of_cliques_degenerates_to_line() {
        let d = line_of_cliques(5, 1).unwrap();
        assert_eq!(d.g().edge_count(), 4);
        assert_eq!(properties::diameter(d.g()).unwrap(), 4);
    }

    #[test]
    fn all_are_static_models() {
        assert!(line(5).unwrap().is_static());
        assert!(ring(5).unwrap().is_static());
        assert!(star(5).unwrap().is_static());
        assert!(line_of_cliques(2, 3).unwrap().is_static());
    }
}
