//! Topology generators.
//!
//! Each generator returns a [`DualGraph`](crate::DualGraph) (or a richer
//! wrapper carrying construction metadata) with a descriptive name attached,
//! ready to be handed to the simulator.
//!
//! The generators cover:
//!
//! * the lower-bound constructions of the paper — [`dual_clique`] (Section 3)
//!   and [`bracelet`] (Section 4.2);
//! * geographic networks satisfying the constraint of Section 2 —
//!   [`random_geometric`] and [`grid_geometric`];
//! * classic families used as static baselines and diameter/degree sweeps —
//!   [`line()`], [`ring`], [`star`], [`grid`], [`balanced_tree`],
//!   [`line_of_cliques`], [`erdos_renyi_dual`].

mod bracelet;
mod clique;
mod geometric;
mod grid;
mod line;
mod random;
mod tree;

pub use bracelet::{bracelet, bracelet_with_clasp, Bracelet};
pub use clique::{clique, dual_clique, dual_clique_with_bridge, DualClique};
pub use geometric::{dual_from_points, grid_geometric, random_geometric, GeometricConfig};
pub use grid::{grid, grid_with_backend, torus};
pub use line::{line, line_of_cliques, ring, star};
pub use random::{erdos_renyi_dual, gnp, sparse_erdos_renyi_dual, sparse_gnp};
pub use tree::balanced_tree;
