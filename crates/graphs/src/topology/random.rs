//! Random (Erdős–Rényi) dual graphs.

use rand::Rng;

use crate::dual::DualGraph;
use crate::error::GraphError;
use crate::graph::{auto_backend, Graph, GraphBackend};
use crate::node::NodeId;
use crate::properties;
use crate::Result;

/// Samples an Erdős–Rényi graph `G(n, p)`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `p` is not in `[0, 1]`.
///
/// # Example
///
/// ```
/// use dradio_graphs::topology;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let g = topology::gnp(20, 0.3, &mut rng)?;
/// assert_eq!(g.len(), 20);
/// # Ok::<(), dradio_graphs::GraphError>(())
/// ```
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<Graph> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter {
            reason: format!("edge probability must be in [0, 1], got {p}"),
        });
    }
    let mut g = Graph::empty(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                g.add_edge(NodeId::new(i), NodeId::new(j))?;
            }
        }
    }
    Ok(g)
}

/// Samples a random dual graph: the reliable layer is `G(n, p_reliable)`
/// re-sampled until connected (at most 200 attempts), and every absent pair
/// is added to `G'` independently with probability `p_dynamic`.
///
/// This family models "unstructured" unreliability and is used as a
/// non-geographic workload in the oblivious global broadcast experiments.
///
/// # Errors
///
/// * [`GraphError::InvalidParameter`] if a probability is out of range or
///   `n == 0`.
/// * [`GraphError::Disconnected`] if no connected reliable layer was sampled
///   within the attempt budget (choose a larger `p_reliable`).
pub fn erdos_renyi_dual<R: Rng + ?Sized>(
    n: usize,
    p_reliable: f64,
    p_dynamic: f64,
    rng: &mut R,
) -> Result<DualGraph> {
    if n == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "n must be >= 1".into(),
        });
    }
    if !(0.0..=1.0).contains(&p_dynamic) {
        return Err(GraphError::InvalidParameter {
            reason: format!("dynamic edge probability must be in [0, 1], got {p_dynamic}"),
        });
    }
    let mut g = None;
    for _ in 0..200 {
        let candidate = gnp(n, p_reliable, rng)?;
        if properties::is_connected(&candidate) {
            g = Some(candidate);
            break;
        }
    }
    let g = g.ok_or(GraphError::Disconnected)?;
    let mut g_prime = g.clone();
    for i in 0..n {
        for j in (i + 1)..n {
            let (u, v) = (NodeId::new(i), NodeId::new(j));
            if !g_prime.has_edge(u, v) && rng.gen_bool(p_dynamic) {
                g_prime.add_edge(u, v)?;
            }
        }
    }
    DualGraph::new(g, g_prime).map(|d| {
        d.with_name(format!(
            "erdos-renyi(n={n}, p={p_reliable:.2}, q={p_dynamic:.2})"
        ))
    })
}

/// Samples `G(n, p)` in expected `O(n + m)` time via geometric skip
/// sampling: instead of flipping a coin for each of the `n(n-1)/2` pairs,
/// the gap to the next present edge is drawn directly as
/// `⌊ln(1-u) / ln(1-p)⌋` over the canonical pair enumeration.
///
/// This draws a *different RNG stream* than [`gnp`] (one `f64` per edge
/// rather than one Bernoulli per pair), so for a fixed seed the two
/// samplers produce different — equally distributed — graphs. Storage
/// follows [`auto_backend`] on the expected edge count, so sparse
/// million-node samples build straight into CSR rows.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `p` is not in `[0, 1]`.
pub fn sparse_gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<Graph> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter {
            reason: format!("edge probability must be in [0, 1], got {p}"),
        });
    }
    let expected = (p * (n.saturating_mul(n.saturating_sub(1)) / 2) as f64) as u64;
    let backend = auto_backend(n, expected);
    // p = 0 must short-circuit: ln(1-u)/ln(1) is -inf/0 = NaN, and a NaN
    // cast to usize saturates to 0, which would emit *every* pair.
    if n < 2 || p <= 0.0 {
        return empty_with_backend(n, backend);
    }
    let ln_q = (1.0 - p).ln(); // -inf when p = 1, making every skip 0.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let (mut i, mut j) = (0usize, 1usize);
    // Walk the canonical enumeration (0,1), (0,2), …, (n-2,n-1), jumping
    // `skip` absent pairs at a time. Returns false when the walk runs off
    // the final row.
    let advance = |i: &mut usize, j: &mut usize, mut steps: usize| loop {
        let row_left = n - *j;
        if steps < row_left {
            *j += steps;
            return true;
        }
        steps -= row_left;
        *i += 1;
        if *i >= n - 1 {
            return false;
        }
        *j = *i + 1;
    };
    let mut first = true;
    loop {
        let u: f64 = rng.gen();
        let skip = ((1.0 - u).ln() / ln_q) as usize;
        // The first present pair lies `skip` steps from (0,1) inclusive;
        // afterwards it lies `skip` steps past the previous edge.
        let steps = if first { skip } else { skip + 1 };
        first = false;
        if !advance(&mut i, &mut j, steps) {
            break;
        }
        edges.push((i, j));
    }
    match backend {
        GraphBackend::Csr => Graph::csr_from_edges(n, &edges),
        GraphBackend::Dense => {
            let mut g = Graph::empty(n);
            for &(a, b) in &edges {
                g.add_edge(NodeId::new(a), NodeId::new(b))?;
            }
            Ok(g)
        }
    }
}

fn empty_with_backend(n: usize, backend: GraphBackend) -> Result<Graph> {
    match backend {
        GraphBackend::Dense => Ok(Graph::empty(n)),
        GraphBackend::Csr => Graph::csr_from_edges(n, &[]),
    }
}

/// Samples a *static* dual graph (`G = G'`) over [`sparse_gnp`].
///
/// Unlike [`erdos_renyi_dual`] there is no connectivity retry loop — at
/// million-node scale a retry costs a full resample, and the intended
/// regime (`p` a few multiples of `ln n / n`) is connected with high
/// probability. Callers that need certainty check
/// [`properties::is_connected`] themselves.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `p` is out of range or
/// `n == 0`.
pub fn sparse_erdos_renyi_dual<R: Rng + ?Sized>(
    n: usize,
    p: f64,
    rng: &mut R,
) -> Result<DualGraph> {
    if n == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "n must be >= 1".into(),
        });
    }
    let g = sparse_gnp(n, p, rng)?;
    Ok(DualGraph::static_model(g).with_name(format!("sparse-erdos-renyi(n={n}, p={p:.4})")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn gnp_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let empty = gnp(10, 0.0, &mut rng).unwrap();
        assert_eq!(empty.edge_count(), 0);
        let full = gnp(10, 1.0, &mut rng).unwrap();
        assert_eq!(full.edge_count(), 45);
        assert!(gnp(10, 1.5, &mut rng).is_err());
        assert!(gnp(10, -0.1, &mut rng).is_err());
    }

    #[test]
    fn gnp_is_deterministic_for_fixed_seed() {
        let a = gnp(30, 0.2, &mut ChaCha8Rng::seed_from_u64(7)).unwrap();
        let b = gnp(30, 0.2, &mut ChaCha8Rng::seed_from_u64(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn erdos_renyi_dual_is_valid_and_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let dual = erdos_renyi_dual(40, 0.2, 0.1, &mut rng).unwrap();
        assert!(dual.is_valid());
        assert!(properties::is_connected(dual.g()));
        assert_eq!(dual.len(), 40);
    }

    #[test]
    fn erdos_renyi_dual_adds_dynamic_edges() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let dual = erdos_renyi_dual(30, 0.3, 0.5, &mut rng).unwrap();
        assert!(!dual.dynamic_edges().is_empty());
    }

    #[test]
    fn erdos_renyi_dual_rejects_bad_parameters() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(erdos_renyi_dual(0, 0.5, 0.5, &mut rng).is_err());
        assert!(erdos_renyi_dual(10, 0.5, 1.5, &mut rng).is_err());
        // Extremely sparse reliable layer on a large graph: likely to fail to
        // connect, which must surface as an error rather than a panic.
        assert!(matches!(
            erdos_renyi_dual(200, 0.0, 0.1, &mut rng),
            Err(GraphError::Disconnected) | Ok(_)
        ));
    }

    #[test]
    fn zero_dynamic_probability_gives_static_model() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let dual = erdos_renyi_dual(25, 0.4, 0.0, &mut rng).unwrap();
        assert!(dual.is_static());
    }

    #[test]
    fn sparse_gnp_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        // p = 0 must yield no edges (the NaN-skip hazard case).
        assert_eq!(sparse_gnp(10, 0.0, &mut rng).unwrap().edge_count(), 0);
        // p = 1 must yield every pair (ln_q = -inf, every skip 0).
        let full = sparse_gnp(10, 1.0, &mut rng).unwrap();
        assert_eq!(full.edge_count(), 45);
        assert_eq!(full, Graph::complete(10));
        assert!(sparse_gnp(10, 1.5, &mut rng).is_err());
        assert!(sparse_gnp(10, -0.1, &mut rng).is_err());
        assert_eq!(sparse_gnp(1, 0.5, &mut rng).unwrap().edge_count(), 0);
        assert_eq!(sparse_gnp(0, 0.5, &mut rng).unwrap().len(), 0);
    }

    #[test]
    fn sparse_gnp_is_deterministic_and_plausibly_distributed() {
        let a = sparse_gnp(5000, 0.002, &mut ChaCha8Rng::seed_from_u64(7)).unwrap();
        let b = sparse_gnp(5000, 0.002, &mut ChaCha8Rng::seed_from_u64(7)).unwrap();
        assert_eq!(a, b);
        // E[m] = 0.002 * 5000*4999/2 ≈ 25_000; a 3x window is
        // astronomically safe.
        assert!(a.edge_count() > 8_000 && a.edge_count() < 75_000);
        // Past DENSE_AUTO_MAX_NODES, sparse samples come back on CSR.
        assert_eq!(a.backend(), GraphBackend::Csr);
        // Small or dense parameters keep the dense backend.
        let small = sparse_gnp(50, 0.5, &mut ChaCha8Rng::seed_from_u64(1)).unwrap();
        assert_eq!(small.backend(), GraphBackend::Dense);
    }

    #[test]
    fn sparse_dual_is_static_and_named() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let dual = sparse_erdos_renyi_dual(300, 0.05, &mut rng).unwrap();
        assert!(dual.is_static());
        assert!(dual.is_valid());
        assert_eq!(dual.name(), "sparse-erdos-renyi(n=300, p=0.0500)");
        assert!(sparse_erdos_renyi_dual(0, 0.5, &mut rng).is_err());
    }
}
